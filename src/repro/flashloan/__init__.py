"""Flash-loan substrate with atomic revert semantics."""

from .pool import FlashLoanError, FlashLoanPool, FlashLoanProvider

__all__ = ["FlashLoanError", "FlashLoanPool", "FlashLoanProvider"]
