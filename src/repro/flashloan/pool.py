"""Flash-loan pools (Section 2.2.2, Section 4.4.4).

A flash loan lends any amount of a pool's liquidity for the duration of a
single transaction; if the principal plus fee is not returned by the end of
the callback, the entire transaction reverts and no state change persists.
The simulator enforces exactly that: the borrower's callback runs inside
:meth:`FlashLoanPool.flash_loan`, and an unpaid loan raises
:class:`~repro.chain.transaction.TransactionReverted`, which the chain layer
translates into a reverted receipt.

Two fee schedules are provided, matching the platforms the paper measures:
Aave-style (0.09 %) and dYdX-style (effectively free, 2 wei), which is why
"dYdX flash loans are more popular than Aave" in Table 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..chain.chain import Blockchain
from ..chain.transaction import TransactionReverted
from ..chain.types import Address, make_address
from ..tokens.token import Token


class FlashLoanError(Exception):
    """Raised for requests that can never execute (e.g. exceeding liquidity)."""


@dataclass
class FlashLoanPool:
    """A single-asset flash-loan pool.

    Attributes
    ----------
    platform:
        Name of the hosting platform (``"Aave V1"``, ``"Aave V2"``,
        ``"dYdX"``), recorded in the emitted ``FlashLoan`` events and used by
        the Table 4 analysis.
    token:
        The asset lent by the pool.
    fee_rate:
        Proportional fee charged on the borrowed amount.
    """

    platform: str
    token: Token
    fee_rate: float = 0.0009
    chain: Blockchain | None = None
    address: Address = field(default_factory=lambda: make_address("flash-pool"))

    def __post_init__(self) -> None:
        if self.fee_rate < 0:
            raise ValueError("fee rate must be non-negative")

    @property
    def liquidity(self) -> float:
        """Available liquidity of the pool."""
        return self.token.balance_of(self.address)

    def fund(self, provider: Address, amount: float) -> None:
        """Deposit liquidity into the pool."""
        self.token.transfer(provider, self.address, amount)

    def fee_for(self, amount: float) -> float:
        """Flash-loan fee for borrowing ``amount``."""
        return amount * self.fee_rate

    def flash_loan(
        self,
        borrower: Address,
        amount: float,
        callback: Callable[[float, float], None],
        purpose: str = "",
    ) -> float:
        """Lend ``amount`` to ``borrower`` for the duration of ``callback``.

        ``callback(amount, fee)`` receives the borrowed amount and the fee
        owed; by the time it returns, the borrower must hold at least
        ``amount + fee`` so the pool can pull the repayment.  Otherwise the
        transaction reverts (and the temporary transfer is rolled back).

        Returns the fee paid.
        """
        if amount <= 0:
            raise FlashLoanError("flash loan amount must be positive")
        if amount > self.liquidity:
            raise FlashLoanError(
                f"flash loan of {amount:.4f} {self.token.symbol} exceeds pool liquidity {self.liquidity:.4f}"
            )
        fee = self.fee_for(amount)
        self.token.transfer(self.address, borrower, amount)
        try:
            callback(amount, fee)
            repayment = amount + fee
            if self.token.balance_of(borrower) + 1e-9 < repayment:
                raise TransactionReverted(
                    f"flash loan of {amount:.4f} {self.token.symbol} cannot be repaid"
                )
            self.token.transfer(borrower, self.address, repayment)
        except TransactionReverted:
            # Roll back the principal transfer; any intermediate transfers the
            # callback performed are the callback's responsibility to avoid
            # (liquidator agents only commit state after profitability checks).
            borrower_balance = self.token.balance_of(borrower)
            self.token.transfer(borrower, self.address, min(amount, borrower_balance))
            raise
        if self.chain is not None:
            self.chain.emit_event(
                "FlashLoan",
                emitter=self.address,
                data={
                    "platform": self.platform,
                    "borrower": borrower.value,
                    "token": self.token.symbol,
                    "amount": amount,
                    "fee": fee,
                    "purpose": purpose,
                },
            )
        return fee


@dataclass
class FlashLoanProvider:
    """A collection of flash-loan pools across platforms and assets."""

    pools: dict[tuple[str, str], FlashLoanPool] = field(default_factory=dict)

    def register(self, pool: FlashLoanPool) -> FlashLoanPool:
        """Register a pool under (platform, token symbol)."""
        self.pools[(pool.platform, pool.token.symbol)] = pool
        return pool

    def pool(self, platform: str, symbol: str) -> FlashLoanPool:
        """Look up the pool for (platform, symbol)."""
        try:
            return self.pools[(platform, symbol.upper())]
        except KeyError as exc:
            raise FlashLoanError(f"no {platform} flash-loan pool for {symbol}") from exc

    def cheapest_pool(self, symbol: str) -> FlashLoanPool | None:
        """The lowest-fee pool lending ``symbol`` with non-zero liquidity.

        Liquidator agents use this to pick dYdX over Aave when both can fund
        the liquidation, reproducing Table 4's platform split.
        """
        candidates = [
            pool
            for (platform, pool_symbol), pool in self.pools.items()
            if pool_symbol == symbol.upper() and pool.liquidity > 0
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda pool: (pool.fee_rate, -pool.liquidity))
