"""Price feeds: the exogenous "market" price of every asset, per block.

A :class:`PriceFeed` is the ground-truth market price process that the
scenario generator produces and that oracles sample from.  It is defined on a
block grid with a configurable stride (``blocks_per_step``), because the
simulation advances in strides of blocks rather than single blocks — two
years of Ethereum history is ≈ 4.7 M blocks, far more resolution than the
paper's monthly/percent-level results require.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


class UnknownSymbol(KeyError):
    """Raised when querying a feed for a symbol it does not track."""


@dataclass
class PriceFeed:
    """Block-indexed USD price series for a set of assets.

    Attributes
    ----------
    start_block:
        Block number corresponding to step 0.
    blocks_per_step:
        Number of chain blocks covered by one step of the series.
    series:
        Mapping from symbol to a numpy array of USD prices, one per step.
        All arrays must have equal length.
    """

    start_block: int
    blocks_per_step: int
    series: dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        lengths = {len(values) for values in self.series.values()}
        if len(lengths) > 1:
            raise ValueError(f"price series have inconsistent lengths: {sorted(lengths)}")
        self.series = {symbol.upper(): np.asarray(values, dtype=float) for symbol, values in self.series.items()}

    # ------------------------------------------------------------------ #
    # Grid helpers
    # ------------------------------------------------------------------ #
    @property
    def n_steps(self) -> int:
        """Number of steps in the feed (0 if empty)."""
        if not self.series:
            return 0
        return len(next(iter(self.series.values())))

    @property
    def end_block(self) -> int:
        """Last block covered by the feed."""
        return self.start_block + max(self.n_steps - 1, 0) * self.blocks_per_step

    def symbols(self) -> list[str]:
        """Sorted list of tracked symbols."""
        return sorted(self.series)

    def step_for_block(self, block_number: int) -> int:
        """Map a block number onto the nearest covered step (clamped)."""
        if self.n_steps == 0:
            raise ValueError("empty price feed")
        step = (block_number - self.start_block) // self.blocks_per_step
        return int(np.clip(step, 0, self.n_steps - 1))

    def block_for_step(self, step: int) -> int:
        """Block number corresponding to ``step``."""
        return self.start_block + step * self.blocks_per_step

    # ------------------------------------------------------------------ #
    # Price queries
    # ------------------------------------------------------------------ #
    def has(self, symbol: str) -> bool:
        """Whether the feed tracks ``symbol``."""
        return symbol.upper() in self.series

    def price(self, symbol: str, block_number: int) -> float:
        """Market price of ``symbol`` (USD) at ``block_number``."""
        key = symbol.upper()
        if key not in self.series:
            raise UnknownSymbol(symbol)
        return float(self.series[key][self.step_for_block(block_number)])

    def price_at_step(self, symbol: str, step: int) -> float:
        """Market price of ``symbol`` (USD) at step ``step``."""
        key = symbol.upper()
        if key not in self.series:
            raise UnknownSymbol(symbol)
        return float(self.series[key][step])

    def prices_at(self, block_number: int) -> dict[str, float]:
        """All tracked prices at ``block_number`` as ``{symbol: usd_price}``."""
        step = self.step_for_block(block_number)
        return {symbol: float(values[step]) for symbol, values in self.series.items()}

    def window(self, symbol: str, from_block: int, to_block: int) -> np.ndarray:
        """Slice of the price series between two blocks (inclusive)."""
        start = self.step_for_block(from_block)
        stop = self.step_for_block(to_block)
        key = symbol.upper()
        if key not in self.series:
            raise UnknownSymbol(symbol)
        return self.series[key][start : stop + 1].copy()

    def returns(self, symbol: str) -> np.ndarray:
        """Per-step simple returns of ``symbol``."""
        key = symbol.upper()
        if key not in self.series:
            raise UnknownSymbol(symbol)
        values = self.series[key]
        if len(values) < 2:
            return np.zeros(0)
        return values[1:] / values[:-1] - 1.0

    def max_drawdown(self, symbol: str) -> float:
        """Largest peak-to-trough decline of ``symbol`` over the feed, in [0, 1]."""
        key = symbol.upper()
        if key not in self.series:
            raise UnknownSymbol(symbol)
        values = self.series[key]
        if len(values) == 0:
            return 0.0
        running_peak = np.maximum.accumulate(values)
        drawdowns = 1.0 - values / running_peak
        return float(drawdowns.max())
