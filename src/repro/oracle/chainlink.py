"""Chainlink-style off-chain price oracle.

Aave and Compound base their pricing on external oracles (Section 2.2.1,
3.3).  The essential behaviours the measurements depend on are:

* prices are *posted* on-chain, so the protocol only sees a delayed, discrete
  snapshot of the market price (updates happen on a deviation threshold or a
  heartbeat interval);
* posted prices can be *irregular* — the November 2020 Compound incident was
  caused by an anomalous DAI price reported by its oracle, which the paper
  identifies as the source of an 8.38 M USD profit spike (Figure 5);
* the full posted history is readable at any past block, which is how the
  paper normalises liquidation values "at the block when the liquidation is
  settled".
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from ..chain.chain import Blockchain
from ..chain.types import Address, make_address
from .feed import PriceFeed


@dataclass
class OracleConfig:
    """Posting policy of the oracle."""

    deviation_threshold: float = 0.005
    heartbeat_blocks: int = 1_200
    name: str = "chainlink"


class PriceOracle:
    """An on-chain posted price oracle fed from a :class:`PriceFeed`.

    The oracle keeps, per symbol, the full history of posted ``(block,
    price)`` pairs.  ``price(symbol)`` returns the latest posted price, and
    ``price_at(symbol, block)`` performs the archive-style historical lookup
    the analytics pipeline uses.
    """

    def __init__(
        self,
        chain: Blockchain,
        feed: PriceFeed,
        config: OracleConfig | None = None,
        address: Address | None = None,
    ) -> None:
        self.chain = chain
        self.feed = feed
        self.config = config or OracleConfig()
        self.address = address or make_address(self.config.name)
        self._history: dict[str, list[tuple[int, float]]] = {}
        self._overrides: dict[str, float] = {}
        self._last_update_block: dict[str, int] = {}
        #: The ``(symbol, posted_price)`` pairs of the most recent
        #: :meth:`update_from_feed` call.  The engine's observer bus reads
        #: this to publish ``PriceUpdated`` events without re-querying each
        #: symbol's price on the hot path.
        self.last_updates: list[tuple[str, float]] = []
        #: Monotonic post counter: bumps on every :meth:`post_price`.  A
        #: posted-price query (:meth:`price`) can only change when this
        #: version changes or — for symbols with no posted history yet,
        #: which fall back to the market feed — when the block advances, so
        #: ``(current_block, version)`` keys cached valuations exactly.
        self.version = 0

    # ------------------------------------------------------------------ #
    # Posting
    # ------------------------------------------------------------------ #
    def post_price(self, symbol: str, price: float, block_number: int | None = None) -> None:
        """Record a posted price for ``symbol`` at ``block_number``."""
        key = symbol.upper()
        block = self.chain.current_block if block_number is None else block_number
        history = self._history.setdefault(key, [])
        history.append((block, float(price)))
        self._last_update_block[key] = block
        self.version += 1
        self.chain.emit_event(
            "AnswerUpdated",
            emitter=self.address,
            data={"symbol": key, "price": float(price), "oracle": self.config.name},
        )

    def update_from_feed(self, block_number: int | None = None) -> list[str]:
        """Post fresh prices for every symbol whose policy triggers an update.

        Returns the list of symbols that were updated (the posted
        ``(symbol, price)`` pairs are kept on :attr:`last_updates`).
        Overridden symbols (see :meth:`set_override`) keep their override
        until cleared, modelling a stuck or manipulated reporter.
        """
        block = self.chain.current_block if block_number is None else block_number
        updated: list[str] = []
        updates: list[tuple[str, float]] = []
        for symbol in self.feed.symbols():
            market_price = self.feed.price(symbol, block)
            if symbol in self._overrides:
                posted = self._overrides[symbol]
            else:
                posted = market_price
            current = self._latest_posted(symbol)
            needs_update = current is None
            if not needs_update:
                last_block = self._last_update_block.get(symbol, -10**9)
                deviation = abs(posted - current) / current if current else float("inf")
                needs_update = (
                    deviation >= self.config.deviation_threshold
                    or block - last_block >= self.config.heartbeat_blocks
                )
            if needs_update:
                self.post_price(symbol, posted, block)
                updated.append(symbol)
                updates.append((symbol, float(posted)))
        self.last_updates = updates
        return updated

    def set_override(self, symbol: str, price: float) -> None:
        """Force the oracle to report ``price`` for ``symbol`` until cleared.

        Used by the scenario layer to reproduce the November 2020 Compound
        DAI-price irregularity and by the case-study replay, where the
        liquidator "first performs an oracle price update" (Section 5.2.2).
        """
        self._overrides[symbol.upper()] = float(price)

    def clear_override(self, symbol: str) -> None:
        """Remove a previously set override."""
        self._overrides.pop(symbol.upper(), None)

    @property
    def overrides(self) -> dict[str, float]:
        """Currently active overrides."""
        return dict(self._overrides)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def _latest_posted(self, symbol: str) -> float | None:
        history = self._history.get(symbol.upper())
        if not history:
            return None
        return history[-1][1]

    def price(self, symbol: str) -> float:
        """Latest posted price of ``symbol`` in USD.

        Falls back to the market feed when nothing has been posted yet, so
        that freshly constructed scenarios always have a price.
        """
        posted = self._latest_posted(symbol)
        if posted is not None:
            return posted
        return self.feed.price(symbol, self.chain.current_block)

    def prices(self) -> dict[str, float]:
        """Latest posted (or feed) price of every tracked symbol."""
        return {symbol: self.price(symbol) for symbol in self.feed.symbols()}

    def price_at(self, symbol: str, block_number: int) -> float:
        """Posted price of ``symbol`` as of ``block_number`` (archive lookup)."""
        key = symbol.upper()
        history = self._history.get(key)
        if not history:
            return self.feed.price(symbol, block_number)
        blocks = [entry[0] for entry in history]
        index = bisect.bisect_right(blocks, block_number) - 1
        if index < 0:
            return self.feed.price(symbol, block_number)
        return history[index][1]

    def value_usd(self, symbol: str, amount: float) -> float:
        """USD value of ``amount`` units of ``symbol`` at the latest price."""
        return amount * self.price(symbol)

    def history(self, symbol: str) -> list[tuple[int, float]]:
        """Full posted history of ``symbol`` as ``(block, price)`` pairs."""
        return list(self._history.get(symbol.upper(), []))
