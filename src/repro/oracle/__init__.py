"""Price oracles and synthetic market price feeds."""

from .chainlink import OracleConfig, PriceOracle
from .feed import PriceFeed, UnknownSymbol
from .paths import (
    AssetPathConfig,
    DEFAULT_STEPS_PER_YEAR,
    Shock,
    apply_shocks,
    build_series,
    gbm_path,
    stablecoin_path,
)

__all__ = [
    "AssetPathConfig",
    "DEFAULT_STEPS_PER_YEAR",
    "OracleConfig",
    "PriceFeed",
    "PriceOracle",
    "Shock",
    "UnknownSymbol",
    "apply_shocks",
    "build_series",
    "gbm_path",
    "stablecoin_path",
]
