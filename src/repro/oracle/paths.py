"""Synthetic price-path generation.

The paper measures real 2019–2021 market prices.  Without chain access we
generate calibrated synthetic paths: geometric Brownian motion with drift and
volatility per asset, overlaid with *scheduled shocks* reproducing the three
incidents the paper's results hinge on:

* 13 March 2020 — an abrupt −43 % ETH crash with network congestion
  (Section 4.3.1, Figure 5's MakerDAO outlier, Figure 7's parameter change),
* November 2020 — an irregular DAI price on Compound's oracle (Figure 5's
  Compound outlier),
* February 2021 — a broad, sharp drawdown (the second Compound spike).

Stablecoins follow a mean-reverting wobble around 1 USD whose dispersion is
calibrated so that cross-stablecoin differences stay within 5 % almost always
(Section 4.5.2 reports 99.97 % of blocks), with a single engineered excursion
to ≈ 11 % to reproduce the reported maximum.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class Shock:
    """A scheduled multiplicative price shock.

    Attributes
    ----------
    step:
        Step index at which the shock is applied.
    magnitude:
        Multiplicative factor applied to the price (0.57 ⇒ a −43 % crash).
    duration:
        Number of steps over which the shock is spread.  1 means an
        instantaneous jump.
    recovery:
        Fraction of the shock that is undone over ``recovery_steps`` after
        the shock completes (0 = permanent, 1 = fully recovered).
    recovery_steps:
        Length of the recovery ramp.
    """

    step: int
    magnitude: float
    duration: int = 1
    recovery: float = 0.0
    recovery_steps: int = 0


@dataclass
class AssetPathConfig:
    """GBM parameters for a single asset."""

    initial_price: float
    annual_drift: float = 0.0
    annual_volatility: float = 0.8
    shocks: list[Shock] = field(default_factory=list)
    is_stablecoin: bool = False
    peg: float = 1.0
    peg_volatility: float = 0.002
    peg_reversion: float = 0.05


#: Steps per year used to scale annualised drift/volatility.  The scenario
#: layer chooses ``blocks_per_step`` so that this matches its grid.
DEFAULT_STEPS_PER_YEAR = 2_190  # one step ≈ 4 hours


def gbm_path(
    config: AssetPathConfig,
    n_steps: int,
    rng: np.random.Generator,
    steps_per_year: int = DEFAULT_STEPS_PER_YEAR,
) -> np.ndarray:
    """Generate a geometric-Brownian-motion path with scheduled shocks."""
    if n_steps <= 0:
        return np.zeros(0)
    dt = 1.0 / steps_per_year
    drift = (config.annual_drift - 0.5 * config.annual_volatility**2) * dt
    diffusion = config.annual_volatility * np.sqrt(dt)
    increments = drift + diffusion * rng.standard_normal(n_steps - 1)
    log_path = np.concatenate([[0.0], np.cumsum(increments)])
    path = config.initial_price * np.exp(log_path)
    return apply_shocks(path, config.shocks)


def stablecoin_path(
    config: AssetPathConfig,
    n_steps: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Generate a mean-reverting path hovering around the peg."""
    if n_steps <= 0:
        return np.zeros(0)
    prices = np.empty(n_steps)
    prices[0] = config.initial_price
    for step in range(1, n_steps):
        deviation = config.peg - prices[step - 1]
        noise = rng.normal(0.0, config.peg_volatility)
        prices[step] = prices[step - 1] + config.peg_reversion * deviation + noise
    prices = np.clip(prices, 0.2 * config.peg, 5.0 * config.peg)
    return apply_shocks(prices, config.shocks)


def apply_shocks(path: np.ndarray, shocks: list[Shock]) -> np.ndarray:
    """Apply scheduled shocks (and their recoveries) to ``path`` in place-copy.

    Each shock multiplies the path from its step onwards by a ramp from 1 to
    ``magnitude`` over ``duration`` steps; an optional recovery ramp then
    multiplies back towards 1 by the configured fraction.
    """
    adjusted = path.copy()
    n_steps = len(adjusted)
    for shock in shocks:
        if shock.step >= n_steps:
            continue
        factor = np.ones(n_steps)
        ramp_end = min(shock.step + max(shock.duration, 1), n_steps)
        ramp = np.linspace(1.0, shock.magnitude, ramp_end - shock.step, endpoint=True)
        factor[shock.step : ramp_end] = ramp
        factor[ramp_end:] = shock.magnitude
        if shock.recovery > 0 and shock.recovery_steps > 0:
            target = shock.magnitude + (1.0 - shock.magnitude) * shock.recovery
            rec_end = min(ramp_end + shock.recovery_steps, n_steps)
            recovery_ramp = np.linspace(shock.magnitude, target, max(rec_end - ramp_end, 1), endpoint=True)
            factor[ramp_end:rec_end] = recovery_ramp
            factor[rec_end:] = target
        adjusted *= factor
    return adjusted


def build_series(
    configs: dict[str, AssetPathConfig],
    n_steps: int,
    seed: int,
    steps_per_year: int = DEFAULT_STEPS_PER_YEAR,
) -> dict[str, np.ndarray]:
    """Generate a dictionary of price paths, one independent stream per asset.

    Each asset draws from its own ``numpy`` generator spawned from ``seed``
    so that adding or removing assets never perturbs the others — a property
    the regression tests rely on.
    """
    root = np.random.SeedSequence(seed)
    children = root.spawn(len(configs))
    series: dict[str, np.ndarray] = {}
    for (symbol, config), child in zip(sorted(configs.items()), children):
        rng = np.random.default_rng(child)
        if config.is_stablecoin:
            series[symbol] = stablecoin_path(config, n_steps, rng)
        else:
            series[symbol] = gbm_path(config, n_steps, rng, steps_per_year=steps_per_year)
    return series
