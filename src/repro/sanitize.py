"""The runtime sanitizer: paranoid invariant checks behind one switch.

``REPRO_SANITIZE=1`` turns on a set of runtime assertions that the fast
paths are still bit-identical to their scalar reference semantics — the
dynamic complement of ``repro lint``'s static rules:

* :meth:`~repro.core.position_book.PositionBook.sync` rejects NaN/inf in
  the refreshed collateral/debt rows (a NaN would silently poison every
  downstream pinned reduction);
* the engine cross-checks the vectorized liquidatable-candidate scan
  against the scalar sweep every :func:`stride`-th step;
* :meth:`~repro.chain.mempool.Mempool.check_invariants` revalidates the
  twin-heap bookkeeping (pack/evict/FIFO views agree with the live size,
  sort keys match payloads) after every mined block;
* the protocol valuation cache asserts coherence on every hit — the cached
  :class:`~repro.core.position_book.BookValuation` must belong to the
  book's current revision with no dirty rows pending — and deep-verifies
  a rebuilt valuation bitwise every :func:`stride`-th hit.

All checks raise :class:`SanitizerError` (an ``AssertionError`` subclass,
so ``pytest.raises(AssertionError)`` also catches it).  The sanitizer
never mutates simulated state and draws no RNG, so sanitized runs are
bit-identical to bare runs — proven by the scenario matrix in
``tests/test_sanitize.py``.

Checks are sampled by *stride* (``REPRO_SANITIZE_STRIDE``, default 16)
where a full check per step would change the run's complexity class; set
the stride to 1 to check every step when hunting a specific corruption.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

__all__ = ["SanitizerError", "enabled", "scoped", "stride"]

_ENV_FLAG = "REPRO_SANITIZE"
_ENV_STRIDE = "REPRO_SANITIZE_STRIDE"
_DEFAULT_STRIDE = 16

#: Process-local override installed by :func:`scoped` (tests flip this
#: instead of mutating ``os.environ``): ``None`` defers to the environment.
_OVERRIDE: bool | None = None
_STRIDE_OVERRIDE: int | None = None


class SanitizerError(AssertionError):
    """A sanitizer invariant failed: fast-path state diverged from truth."""


def enabled() -> bool:
    """Whether sanitizer checks are on (override, else ``REPRO_SANITIZE``)."""
    if _OVERRIDE is not None:
        return _OVERRIDE
    return os.environ.get(_ENV_FLAG, "").strip() not in ("", "0", "false", "off")


def stride() -> int:
    """Sampling stride for the expensive cross-checks (>= 1)."""
    if _STRIDE_OVERRIDE is not None:
        return _STRIDE_OVERRIDE
    raw = os.environ.get(_ENV_STRIDE, "")
    try:
        value = int(raw)
    except ValueError:
        return _DEFAULT_STRIDE
    return max(value, 1) if raw else _DEFAULT_STRIDE


@contextmanager
def scoped(on: bool = True, check_stride: int | None = None) -> Iterator[None]:
    """Force the sanitizer on/off (and optionally pin the stride) locally.

    Tests use this instead of environment mutation so parallel test
    processes cannot observe each other's flags.
    """
    global _OVERRIDE, _STRIDE_OVERRIDE
    previous = (_OVERRIDE, _STRIDE_OVERRIDE)
    _OVERRIDE = on
    if check_stride is not None:
        _STRIDE_OVERRIDE = max(int(check_stride), 1)
    try:
        yield
    finally:
        _OVERRIDE, _STRIDE_OVERRIDE = previous
