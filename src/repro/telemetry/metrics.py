"""Zero-dependency metrics registry with Prometheus-style text exposition.

Three instrument kinds, mirroring the Prometheus data model:

* :class:`Counter` — monotonically increasing totals (events seen, cache
  hits, rows synced);
* :class:`Gauge` — point-in-time values that move both ways (current block,
  open positions);
* :class:`Histogram` — bucketed observations (per-stride wall-clock,
  per-block gas) with cumulative ``le`` buckets plus ``_sum``/``_count``
  series.

Instruments are created through a :class:`MetricsRegistry` and may carry
label dimensions::

    registry = MetricsRegistry()
    events = registry.counter("repro_events_total", "Events seen", ("kind",))
    events.labels(kind="BlockMined").inc()
    registry.exposition()   # Prometheus text format 0.0.4

The registry is deliberately free of locks and background machinery: the
simulator is single-threaded per run, and the one concurrent reader (the
``/metrics`` HTTP endpoint of ``repro watch --metrics-port``) only renders
floats — a torn read across two metrics is harmless for monitoring and
impossible within one (CPython dict/float operations are atomic enough
under the GIL).
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Default histogram buckets, in seconds — tuned for the sub-millisecond to
#: tens-of-seconds range the engine's phases span.
DEFAULT_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(names: tuple[str, ...], values: tuple[str, ...], extra: str = "") -> str:
    parts = [f'{name}="{_escape_label_value(value)}"' for name, value in zip(names, values)]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value != value:  # NaN
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Child:
    """One labelled series of an instrument family."""

    __slots__ = ("label_values",)

    def __init__(self, label_values: tuple[str, ...]) -> None:
        self.label_values = label_values


class _CounterChild(_Child):
    __slots__ = ("value",)

    def __init__(self, label_values: tuple[str, ...]) -> None:
        super().__init__(label_values)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters can only increase")
        self.value += amount


class _GaugeChild(_Child):
    __slots__ = ("value",)

    def __init__(self, label_values: tuple[str, ...]) -> None:
        super().__init__(label_values)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class _HistogramChild(_Child):
    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, label_values: tuple[str, ...], buckets: tuple[float, ...]) -> None:
        super().__init__(label_values)
        self.buckets = buckets
        self.counts = [0] * len(buckets)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        # ``counts`` holds per-bucket tallies; rendering cumulates them into
        # the Prometheus ``le`` form, so only the first bound that fits
        # counts the observation.
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                break


class _Family:
    """An instrument family: a name, a help string, and labelled children."""

    kind = "untyped"
    child_type: type = _Child

    def __init__(self, name: str, help: str, labelnames: tuple[str, ...]) -> None:
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self._children: dict[tuple[str, ...], _Child] = {}
        if not labelnames:
            # A label-less family is its own single series.
            self._default = self._make_child(())
            self._children[()] = self._default
        else:
            self._default = None

    def _make_child(self, label_values: tuple[str, ...]) -> _Child:
        return self.child_type(label_values)

    def labels(self, **labels: str) -> _Child:
        """The child series for this label combination (created on first use)."""
        try:
            values = tuple(str(labels[name]) for name in self.labelnames)
        except KeyError as exc:
            raise ValueError(f"{self.name} requires labels {self.labelnames}") from exc
        if len(labels) != len(self.labelnames):
            raise ValueError(f"{self.name} requires exactly labels {self.labelnames}")
        child = self._children.get(values)
        if child is None:
            child = self._children[values] = self._make_child(values)
        return child

    def _sorted_children(self) -> list[_Child]:
        return [self._children[key] for key in sorted(self._children)]

    # Label-less convenience: the family proxies its single child.
    def _only(self) -> _Child:
        if self._default is None:
            raise ValueError(f"{self.name} has labels {self.labelnames}; use .labels(...)")
        return self._default


class Counter(_Family):
    """A monotonically increasing total."""

    kind = "counter"
    child_type = _CounterChild

    def inc(self, amount: float = 1.0) -> None:
        self._only().inc(amount)

    @property
    def value(self) -> float:
        return self._only().value

    def render(self) -> Iterable[str]:
        for child in self._sorted_children():
            yield f"{self.name}{_format_labels(self.labelnames, child.label_values)} {_format_value(child.value)}"


class Gauge(_Family):
    """A point-in-time value that can move both ways."""

    kind = "gauge"
    child_type = _GaugeChild

    def set(self, value: float) -> None:
        self._only().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._only().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._only().dec(amount)

    @property
    def value(self) -> float:
        return self._only().value

    def render(self) -> Iterable[str]:
        for child in self._sorted_children():
            yield f"{self.name}{_format_labels(self.labelnames, child.label_values)} {_format_value(child.value)}"


class Histogram(_Family):
    """Bucketed observations with cumulative ``le`` buckets."""

    kind = "histogram"
    child_type = _HistogramChild

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...],
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        self.buckets = tuple(sorted(buckets))
        super().__init__(name, help, labelnames)

    def _make_child(self, label_values: tuple[str, ...]) -> _HistogramChild:
        return _HistogramChild(label_values, self.buckets)

    def observe(self, value: float) -> None:
        self._only().observe(value)

    @property
    def sum(self) -> float:
        return self._only().sum

    @property
    def count(self) -> int:
        return self._only().count

    def render(self) -> Iterable[str]:
        for child in self._sorted_children():
            cumulative = 0
            for bound, bucket_count in zip(child.buckets, child.counts):
                cumulative += bucket_count
                labels = _format_labels(
                    self.labelnames, child.label_values, f'le="{_format_value(bound)}"'
                )
                yield f"{self.name}_bucket{labels} {cumulative}"
            labels = _format_labels(self.labelnames, child.label_values, 'le="+Inf"')
            yield f"{self.name}_bucket{labels} {child.count}"
            plain = _format_labels(self.labelnames, child.label_values)
            yield f"{self.name}_sum{plain} {_format_value(child.sum)}"
            yield f"{self.name}_count{plain} {child.count}"


class MetricsRegistry:
    """Creates and holds instrument families; renders the exposition text."""

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}

    def __len__(self) -> int:
        return len(self._families)

    def _get_or_create(
        self, factory: type, name: str, help: str, labelnames: Iterable[str], **kwargs: Any
    ) -> _Family:
        labelnames = tuple(labelnames)
        family = self._families.get(name)
        if family is not None:
            if type(family) is not factory or family.labelnames != labelnames:
                raise ValueError(
                    f"metric {name!r} already registered as a {family.kind} "
                    f"with labels {family.labelnames}"
                )
            return family
        family = factory(name, help, labelnames, **kwargs)
        self._families[name] = family
        return family

    def counter(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> Counter:
        """Get or create a counter (idempotent per name)."""
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> Gauge:
        """Get or create a gauge (idempotent per name)."""
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get or create a histogram (idempotent per name)."""
        return self._get_or_create(Histogram, name, help, labelnames, buckets=buckets)

    def exposition(self) -> str:
        """The registry in Prometheus text exposition format 0.0.4.

        Families render in name order, each with its ``# HELP`` / ``# TYPE``
        header, so the output is deterministic given deterministic values —
        the property the golden test pins down.
        """
        lines: list[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            lines.extend(family.render())
        return "\n".join(lines) + "\n" if lines else ""

    def snapshot(self) -> dict[str, float]:
        """Flat ``{series: value}`` view of counters and gauges (JSON-ready).

        Histograms contribute their ``_sum`` and ``_count`` series.  Used by
        :meth:`repro.telemetry.runtime.Telemetry.summary` for the campaign
        manifests.
        """
        out: dict[str, float] = {}
        for name in sorted(self._families):
            family = self._families[name]
            for child in family._sorted_children():
                labels = _format_labels(family.labelnames, child.label_values)
                if isinstance(child, _HistogramChild):
                    out[f"{name}_sum{labels}"] = child.sum
                    out[f"{name}_count{labels}"] = float(child.count)
                else:
                    out[f"{name}{labels}"] = child.value
        return out
