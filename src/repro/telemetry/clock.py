"""The sanctioned monotonic clock for engine code.

TEL005 bans raw ``time.perf_counter()`` calls in engine code: phase
timings belong in telemetry spans, where one switch turns them off.  The
narrow legitimate exception is code whose *datum* is a wall duration — the
campaign executor reporting per-run worker seconds into the run record.
Such code reads :func:`perf_seconds` instead, which keeps the dependency
explicit, greppable, and mockable in one place (tests monkeypatch
``_clock`` to make duration fields deterministic).
"""

from __future__ import annotations

import time

__all__ = ["perf_seconds"]

# The underlying clock, swappable by tests.
_clock = time.perf_counter


def perf_seconds() -> float:
    """A monotonic timestamp in fractional seconds.

    Durations (differences of two reads) are meaningful; absolute values
    are not.  This is the only sanctioned raw-clock read in engine code —
    everything else goes through telemetry spans.
    """
    return _clock()
