"""Run-level telemetry: metrics registry, tracing spans, profiling hooks.

The observability layer of the reproduction, answering *where wall-clock
time and memory pressure actually go* while keeping instrumented runs
bit-identical to bare ones:

* :mod:`repro.telemetry.metrics` — a zero-dependency metrics registry
  (counters, gauges, histograms with label sets) and Prometheus-style text
  exposition;
* :mod:`repro.telemetry.spans` — nested wall-clock tracing spans with
  per-phase aggregation and Chrome trace-event JSON export;
* :mod:`repro.telemetry.runtime` — the on/off switch: :func:`enabled`
  installs a :class:`Telemetry` instance and the instrumented call sites
  (engine stride phases, chain packing, position-book sync, valuation
  cache, campaign workers) pick it up through the near-zero-cost
  :func:`span` / :func:`active` helpers;
* :mod:`repro.telemetry.probe` — :class:`TelemetryProbe`, bridging the
  typed observer-bus stream into metrics;
* :mod:`repro.telemetry.http` — :class:`MetricsServer`, the ``/metrics``
  exposition endpoint behind ``repro watch --metrics-port``.

Quickstart::

    from repro import scenarios
    from repro.telemetry import Telemetry, TelemetryProbe, enabled, render_phase_report

    with enabled() as telemetry:
        engine = scenarios.get("small").build(seed=7)
        engine.attach_probe(TelemetryProbe(telemetry.registry))
        engine.run()
    print(render_phase_report(telemetry.tracer.records))
    telemetry.tracer.write_chrome_trace("trace.json")

or, from the shell::

    repro trace small --chrome-trace trace.json
    repro watch small --metrics-port 9464     # then curl :9464/metrics
"""

from .http import MetricsServer
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .probe import TelemetryProbe
from .runtime import Telemetry, active, enabled, install, span, uninstall
from .spans import SpanRecord, Tracer, aggregate_spans, render_phase_report

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsServer",
    "SpanRecord",
    "Telemetry",
    "TelemetryProbe",
    "Tracer",
    "active",
    "aggregate_spans",
    "enabled",
    "install",
    "render_phase_report",
    "span",
    "uninstall",
]
