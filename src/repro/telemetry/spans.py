"""Tracing spans: nested wall-clock timings with Chrome trace export.

A :class:`Tracer` records *spans* — named wall-clock intervals that nest::

    with tracer.span("engine.step"):
        with tracer.span("engine.scan"):
            ...

Each completed span becomes a :class:`SpanRecord` carrying its name, start
offset, duration, nesting depth, parent id and the accumulated duration of
its direct children (so *self time* — time in the span but outside any child
— falls out by subtraction).  Two consumers read the records:

* :func:`aggregate_spans` / :func:`render_phase_report` — the per-phase
  timing breakdown behind ``repro trace``;
* :meth:`Tracer.chrome_trace` — Chrome trace-event JSON (the ``"X"``
  complete-event form), loadable in ``chrome://tracing`` / Perfetto.

The tracer is engineered for the engine's hot path: starting a span is one
``perf_counter_ns`` call, an object allocation and a list append; ending it
is one more clock read plus arithmetic.  When telemetry is disabled the
engine never reaches this module at all (see
:mod:`repro.telemetry.runtime`).
"""

from __future__ import annotations

import json
import os
import time
from types import TracebackType
from dataclasses import dataclass
from typing import Any, Mapping

__all__ = [
    "SpanRecord",
    "Tracer",
    "aggregate_spans",
    "render_phase_report",
]


@dataclass(slots=True)
class SpanRecord:
    """One completed span, in completion order."""

    name: str
    start_ns: int  # offset from the tracer's epoch
    duration_ns: int
    depth: int  # 0 for top-level spans
    span_id: int
    parent_id: int | None
    child_ns: int  # summed duration of direct children
    args: Mapping[str, Any] | None = None

    @property
    def self_ns(self) -> int:
        """Time spent in the span itself, outside any child span."""
        return self.duration_ns - self.child_ns


class _OpenSpan:
    """Context manager for one in-flight span (internal to :class:`Tracer`)."""

    __slots__ = ("tracer", "name", "args", "span_id", "start_ns", "child_ns")

    def __init__(self, tracer: "Tracer", name: str, args: Mapping[str, Any] | None) -> None:
        self.tracer = tracer
        self.name = name
        self.args = args
        self.child_ns = 0

    def __enter__(self) -> "_OpenSpan":
        tracer = self.tracer
        self.span_id = tracer._next_id
        tracer._next_id += 1
        tracer._stack.append(self)
        self.start_ns = time.perf_counter_ns()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        end_ns = time.perf_counter_ns()
        tracer = self.tracer
        stack = tracer._stack
        if not stack or stack[-1] is not self:
            raise RuntimeError(f"span {self.name!r} exited out of order")
        stack.pop()
        duration_ns = end_ns - self.start_ns
        parent = stack[-1] if stack else None
        if parent is not None:
            parent.child_ns += duration_ns
        tracer.records.append(
            SpanRecord(
                name=self.name,
                start_ns=self.start_ns - tracer.epoch_ns,
                duration_ns=duration_ns,
                depth=len(stack),
                span_id=self.span_id,
                parent_id=parent.span_id if parent is not None else None,
                child_ns=self.child_ns,
                args=self.args,
            )
        )


class Tracer:
    """Collects nested span timings for one run."""

    def __init__(self) -> None:
        self.epoch_ns = time.perf_counter_ns()
        self.records: list[SpanRecord] = []
        self._stack: list[_OpenSpan] = []
        self._next_id = 0
        self.pid = os.getpid()

    def __len__(self) -> int:
        return len(self.records)

    def span(self, name: str, args: Mapping[str, Any] | None = None) -> _OpenSpan:
        """A context manager timing one named, nestable interval."""
        return _OpenSpan(self, name, args)

    @property
    def depth(self) -> int:
        """Current nesting depth (0 outside any span)."""
        return len(self._stack)

    def chrome_trace(self) -> dict[str, Any]:
        """The records as a Chrome trace-event JSON object.

        One ``"ph": "X"`` (complete) event per span, timestamps in
        microseconds from the tracer's epoch; load the serialised form in
        ``chrome://tracing`` or https://ui.perfetto.dev.
        """
        events = [
            {
                "name": record.name,
                "ph": "X",
                "ts": record.start_ns / 1000.0,
                "dur": record.duration_ns / 1000.0,
                "pid": self.pid,
                "tid": 0,
                "cat": record.name.partition(".")[0],
                "args": dict(record.args) if record.args else {},
            }
            for record in self.records
        ]
        events.sort(key=lambda event: event["ts"])
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str) -> None:
        """Serialise :meth:`chrome_trace` to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(), handle)
            handle.write("\n")


def aggregate_spans(records: list[SpanRecord]) -> dict[str, dict[str, float]]:
    """Per-name aggregates: count, total/self seconds, mean/max milliseconds.

    Keys are span names; the dict is insertion-ordered by each name's first
    appearance, which follows the engine's phase order.
    """
    out: dict[str, dict[str, float]] = {}
    for record in records:
        entry = out.get(record.name)
        if entry is None:
            entry = out[record.name] = {
                "count": 0,
                "total_seconds": 0.0,
                "self_seconds": 0.0,
                "max_ms": 0.0,
            }
        entry["count"] += 1
        entry["total_seconds"] += record.duration_ns / 1e9
        entry["self_seconds"] += record.self_ns / 1e9
        entry["max_ms"] = max(entry["max_ms"], record.duration_ns / 1e6)
    for entry in out.values():
        entry["mean_ms"] = entry["total_seconds"] * 1e3 / entry["count"]
    return out


def render_phase_report(records: list[SpanRecord], *, wall_seconds: float | None = None) -> str:
    """The per-phase timing breakdown table of ``repro trace``.

    Phases sort by self time (where the wall-clock actually went), and the
    ``%`` column is self time over the total observed wall-clock, so the
    column sums to ~100 across non-overlapping phases.
    """
    aggregates = aggregate_spans(records)
    if not aggregates:
        return "no spans recorded\n"
    if wall_seconds is None:
        wall_seconds = sum(entry["self_seconds"] for entry in aggregates.values())
    width = max(len(name) for name in aggregates)
    lines = [
        f"{'phase':<{width}}  {'count':>7}  {'total s':>9}  {'self s':>9}  "
        f"{'mean ms':>9}  {'max ms':>9}  {'% self':>7}"
    ]
    ordered = sorted(aggregates.items(), key=lambda item: item[1]["self_seconds"], reverse=True)
    for name, entry in ordered:
        share = 100.0 * entry["self_seconds"] / wall_seconds if wall_seconds > 0 else 0.0
        lines.append(
            f"{name:<{width}}  {entry['count']:>7}  {entry['total_seconds']:>9.3f}  "
            f"{entry['self_seconds']:>9.3f}  {entry['mean_ms']:>9.3f}  "
            f"{entry['max_ms']:>9.3f}  {share:>6.1f}%"
        )
    return "\n".join(lines) + "\n"
