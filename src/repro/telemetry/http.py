"""A minimal metrics/JSON HTTP endpoint (stdlib-only).

:class:`MetricsServer` serves a :class:`~repro.telemetry.metrics.MetricsRegistry`
over HTTP from a daemon thread:

* ``GET /metrics`` — Prometheus text exposition (format 0.0.4);
* ``GET /health``  — ``{"status": "ok"}`` liveness JSON.

It backs ``repro watch --metrics-port`` — scrape the live run with any
Prometheus-compatible collector, or just ``curl`` it — and the ``repro
serve`` service extends it with JSON routes: ``json_routes`` maps a path
prefix (``"/jobs"``) to a ``subpath -> (status, payload)`` callable serving
``GET``, ``post_routes`` maps a path to a ``body -> (status, payload)``
callable serving ``POST`` (the service's job-submission API).  Unknown paths
get a JSON 404 body; every response declares an explicit charset.

Binding port 0 picks a free ephemeral port; the actual port is on
:attr:`MetricsServer.port` after :meth:`start`.
"""

from __future__ import annotations

import json
import threading
from types import TracebackType
from typing import Any, Callable, Mapping
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .metrics import MetricsRegistry

__all__ = ["MetricsServer"]

EXPOSITION_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
JSON_CONTENT_TYPE = "application/json; charset=utf-8"

#: ``GET`` route: receives the subpath after the registered prefix (no
#: leading slash, possibly empty) and returns ``(status, JSON payload)``.
JsonRoute = Callable[[str], "tuple[int, Any]"]
#: ``POST`` route: receives the decoded JSON body, returns ``(status, payload)``.
PostRoute = Callable[[Any], "tuple[int, Any]"]


class MetricsServer:
    """Serves a metrics registry (plus JSON routes) from a daemon thread."""

    def __init__(
        self,
        registry: MetricsRegistry,
        port: int = 0,
        host: str = "127.0.0.1",
        json_routes: Mapping[str, JsonRoute] | None = None,
        post_routes: Mapping[str, PostRoute] | None = None,
    ) -> None:
        self.registry = registry
        self.host = host
        self.requested_port = port
        self.json_routes = dict(json_routes or {})
        self.post_routes = dict(post_routes or {})
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`)."""
        if self._server is not None:
            return self._server.server_address[1]
        return self.requested_port

    def start(self) -> "MetricsServer":
        """Bind and start serving in a daemon thread; returns ``self``."""
        if self._server is not None:
            return self
        registry = self.registry
        json_routes = self.json_routes
        post_routes = self.post_routes

        class Handler(BaseHTTPRequestHandler):
            def _send(self, status: int, body: bytes, content_type: str) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def _send_json(self, status: int, payload: Any) -> None:
                body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
                self._send(status, body, JSON_CONTENT_TYPE)

            def _not_found(self, path: str) -> None:
                self._send_json(404, {"error": "not found", "path": path})

            def do_GET(self) -> None:  # noqa: N802 - http.server API
                path = self.path.split("?", 1)[0]
                if path.rstrip("/") in ("", "/metrics"):
                    body = registry.exposition().encode("utf-8")
                    self._send(200, body, EXPOSITION_CONTENT_TYPE)
                    return
                if path == "/health":
                    self._send_json(200, {"status": "ok"})
                    return
                prefix, _, subpath = path.lstrip("/").partition("/")
                route = json_routes.get(f"/{prefix}")
                if route is None:
                    self._not_found(path)
                    return
                try:
                    status, payload = route(subpath)
                except Exception as exc:  # noqa: BLE001 - served, not crashed
                    self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
                    return
                self._send_json(status, payload)

            def do_POST(self) -> None:  # noqa: N802 - http.server API
                path = self.path.split("?", 1)[0]
                route = post_routes.get(path.rstrip("/") or path)
                if route is None:
                    self._not_found(path)
                    return
                length = int(self.headers.get("Content-Length") or 0)
                raw = self.rfile.read(length) if length else b""
                try:
                    body = json.loads(raw.decode("utf-8")) if raw else {}
                except (UnicodeDecodeError, json.JSONDecodeError):
                    self._send_json(400, {"error": "request body is not valid JSON"})
                    return
                try:
                    status, payload = route(body)
                except Exception as exc:  # noqa: BLE001 - served, not crashed
                    self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
                    return
                self._send_json(status, payload)

            def log_message(self, *args: object) -> None:  # noqa: A003
                """Silence per-request stderr lines (the CLI owns stderr)."""

        self._server = ThreadingHTTPServer((self.host, self.requested_port), Handler)
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="repro-metrics", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and join its thread (idempotent)."""
        server, thread = self._server, self._thread
        self._server = self._thread = None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.stop()
