"""A minimal metrics exposition endpoint (stdlib-only).

:class:`MetricsServer` serves a :class:`~repro.telemetry.metrics.MetricsRegistry`
over HTTP from a daemon thread:

* ``GET /metrics`` — Prometheus text exposition (format 0.0.4);
* ``GET /health``  — ``{"status": "ok"}`` liveness JSON.

It backs ``repro watch --metrics-port`` — scrape the live run with any
Prometheus-compatible collector, or just ``curl`` it.  Binding port 0 picks
a free ephemeral port; the actual port is on :attr:`MetricsServer.port`
after :meth:`start`.
"""

from __future__ import annotations

import json
import threading
from types import TracebackType
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .metrics import MetricsRegistry

__all__ = ["MetricsServer"]

EXPOSITION_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MetricsServer:
    """Serves a metrics registry on ``host:port`` from a daemon thread."""

    def __init__(self, registry: MetricsRegistry, port: int = 0, host: str = "127.0.0.1") -> None:
        self.registry = registry
        self.host = host
        self.requested_port = port
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`)."""
        if self._server is not None:
            return self._server.server_address[1]
        return self.requested_port

    def start(self) -> "MetricsServer":
        """Bind and start serving in a daemon thread; returns ``self``."""
        if self._server is not None:
            return self
        registry = self.registry

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                if self.path.rstrip("/") in ("", "/metrics"):
                    body = registry.exposition().encode("utf-8")
                    self.send_response(200)
                    self.send_header("Content-Type", EXPOSITION_CONTENT_TYPE)
                elif self.path == "/health":
                    body = (json.dumps({"status": "ok"}) + "\n").encode("utf-8")
                    self.send_response(200)
                    self.send_header("Content-Type", "application/json")
                else:
                    body = b"not found\n"
                    self.send_response(404)
                    self.send_header("Content-Type", "text/plain")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: object) -> None:  # noqa: A003
                """Silence per-request stderr lines (the CLI owns stderr)."""

        self._server = ThreadingHTTPServer((self.host, self.requested_port), Handler)
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="repro-metrics", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and join its thread (idempotent)."""
        server, thread = self._server, self._thread
        self._server = self._thread = None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.stop()
