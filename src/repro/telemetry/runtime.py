"""The run-level telemetry context: one switch, near-zero cost when off.

A :class:`Telemetry` bundles one :class:`~repro.telemetry.metrics.MetricsRegistry`
and one :class:`~repro.telemetry.spans.Tracer`.  Installing it (via
:func:`install` / :func:`enabled`) makes it the process's *active* telemetry;
the instrumented call sites — the engine's stride phases, the chain's block
packing, the position book's sync, the protocol valuation cache, the campaign
workers — all consult the active instance through two cheap module-level
helpers:

* :func:`span` — returns the active tracer's span, or a shared no-op context
  manager when telemetry is off.  The disabled cost is one global read, one
  ``is None`` test and a constant return: ``benchmarks/test_telemetry_overhead.py``
  pins it in the tens of nanoseconds, far below timing noise on any stride.
* :func:`active` — the active :class:`Telemetry` (or ``None``), for call
  sites that bump counters and therefore want to skip even label lookup when
  telemetry is off.

Telemetry is strictly *observational*: it reads clocks and engine state but
never mutates the world, consumes RNG streams or reorders execution, so
telemetry-on runs are bit-identical to telemetry-off runs (the same
discipline — and the same test matrix shape — as the observer bus).
"""

from __future__ import annotations

from contextlib import contextmanager
from types import TracebackType
from typing import Any, Iterator, Mapping

from .metrics import Counter, MetricsRegistry
from .spans import Tracer, _OpenSpan, aggregate_spans

__all__ = [
    "Telemetry",
    "active",
    "enabled",
    "install",
    "span",
    "uninstall",
]


class _NoopSpan:
    """The shared do-nothing context manager returned while telemetry is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        return None


_NOOP_SPAN = _NoopSpan()

#: The process's active telemetry; ``None`` means off (the default).
_active: "Telemetry | None" = None


class Telemetry:
    """One run's telemetry: a metrics registry plus a tracer."""

    def __init__(self, name: str = "repro") -> None:
        self.name = name
        self.registry = MetricsRegistry()
        self.tracer = Tracer()

    def span(self, name: str, args: Mapping[str, Any] | None = None) -> _OpenSpan:
        """A tracing span on this instance's tracer."""
        return self.tracer.span(name, args)

    def counter(self, name: str, help: str = "", labelnames: tuple[str, ...] = ()) -> Counter:
        """Shortcut to :meth:`MetricsRegistry.counter`."""
        return self.registry.counter(name, help, labelnames)

    def summary(self) -> dict[str, Any]:
        """JSON-ready digest: per-phase span aggregates plus flat metrics.

        This is the shape the campaign workers persist into run manifests.
        """
        return {
            "spans": {
                name: {
                    "count": entry["count"],
                    "total_seconds": round(entry["total_seconds"], 6),
                    "self_seconds": round(entry["self_seconds"], 6),
                }
                for name, entry in aggregate_spans(self.tracer.records).items()
            },
            "metrics": self.registry.snapshot(),
        }


def active() -> Telemetry | None:
    """The installed telemetry, or ``None`` when telemetry is off."""
    return _active


def install(telemetry: Telemetry) -> Telemetry:
    """Make ``telemetry`` the process's active instance and return it."""
    global _active
    _active = telemetry
    return telemetry


def uninstall() -> None:
    """Turn telemetry off (idempotent)."""
    global _active
    _active = None


@contextmanager
def enabled(telemetry: Telemetry | None = None) -> Iterator[Telemetry]:
    """Scope with ``telemetry`` (a fresh instance by default) installed.

    The previously active instance — usually ``None`` — is restored on exit,
    so scopes nest correctly.
    """
    global _active
    previous = _active
    _active = telemetry if telemetry is not None else Telemetry()
    try:
        yield _active
    finally:
        _active = previous


def span(name: str, args: Mapping[str, Any] | None = None) -> _NoopSpan | _OpenSpan:
    """A span on the active tracer, or the shared no-op when telemetry is off.

    This is the helper the instrumented packages import; its disabled path
    must stay allocation-free.
    """
    telemetry = _active
    if telemetry is None:
        return _NOOP_SPAN
    return telemetry.tracer.span(name, args)
