"""Bridge the typed observer stream into the metrics registry.

:class:`TelemetryProbe` is an ordinary :class:`~repro.observers.bus.Probe`:
attach it to an engine and every :class:`~repro.observers.events.SimEvent`
becomes metric updates — event counts by kind, liquidation totals by
platform and mechanism, block/gas gauges and histograms.  Scraping the
registry (``repro watch --metrics-port``) then exposes the live run in the
same Prometheus form a production monitoring service would.

Like every probe it is passive: it only reads the events it is handed, so
probed runs stay bit-identical to bare runs.
"""

from __future__ import annotations

from ..observers.events import (
    AuctionDealt,
    BlockMined,
    IncidentFired,
    InterestAccrued,
    LiquidationSettled,
    PriceUpdated,
    RunCompleted,
    RunStarted,
    SimEvent,
    SnapshotTaken,
    StepStarted,
)
from .metrics import MetricsRegistry

__all__ = ["TelemetryProbe"]


class TelemetryProbe:
    """Feeds the event stream into counters, gauges and histograms."""

    #: Already counted by the uniform per-kind counter on the first line of
    #: ``on_event``; they update no dedicated gauge or histogram beyond it.
    IGNORED_EVENTS = (InterestAccrued, RunCompleted, RunStarted, SnapshotTaken)

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._events = registry.counter(
            "repro_events_total", "Simulation events published, by kind", ("kind",)
        )
        self._liquidations = registry.counter(
            "repro_liquidations_total",
            "Settled liquidations, by platform and mechanism",
            ("platform", "mechanism"),
        )
        self._repaid_usd = registry.counter(
            "repro_liquidation_repaid_usd_total", "USD repaid by liquidators"
        )
        self._seized_usd = registry.counter(
            "repro_liquidation_seized_usd_total", "USD of collateral seized"
        )
        self._profit_usd = registry.counter(
            "repro_liquidation_profit_usd_total", "USD of liquidation profit"
        )
        self._incidents = registry.counter(
            "repro_incidents_fired_total", "Scheduled scenario incidents fired"
        )
        self._price_updates = registry.counter(
            "repro_price_updates_total", "Oracle price posts", ("oracle",)
        )
        self._auctions = registry.counter(
            "repro_auctions_dealt_total", "MakerDAO auctions finalised", ("outcome",)
        )
        self._block = registry.gauge("repro_block_number", "Latest mined block number")
        self._step = registry.gauge("repro_step_index", "Engine step counter")
        self._gas_used = registry.histogram(
            "repro_block_gas_used",
            "Gas used per mined stride",
            buckets=(1e6, 5e6, 1e7, 5e7, 1e8, 5e8, 1e9, 5e9),
        )

    def on_event(self, event: SimEvent) -> None:
        self._events.labels(kind=event.kind).inc()
        if isinstance(event, StepStarted):
            self._step.set(event.step_index)
        elif isinstance(event, BlockMined):
            self._block.set(event.block_number)
            self._gas_used.observe(event.gas_used)
        elif isinstance(event, LiquidationSettled):
            record = event.record
            self._liquidations.labels(
                platform=record.platform, mechanism=record.mechanism
            ).inc()
            self._repaid_usd.inc(record.repaid_usd)
            self._seized_usd.inc(record.collateral_usd)
            self._profit_usd.inc(max(record.profit_usd, 0.0))
        elif isinstance(event, PriceUpdated):
            self._price_updates.labels(oracle=event.oracle).inc()
        elif isinstance(event, IncidentFired):
            self._incidents.inc()
        elif isinstance(event, AuctionDealt):
            outcome = "settled" if event.winner is not None else "expired"
            self._auctions.labels(outcome=outcome).inc()

    def finalize(self) -> None:
        """Nothing to seal; the registry is updated incrementally."""
