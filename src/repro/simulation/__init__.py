"""Scenario simulation: engine, configuration, calibrated study-window scenario."""

from .config import (
    FEBRUARY_2021_CRASH_BLOCK,
    IncidentConfig,
    MARCH_2020_CRASH_BLOCK,
    MAKERDAO_RECONFIG_BLOCK,
    NOVEMBER_2020_ORACLE_BLOCK,
    PopulationConfig,
    STUDY_END_BLOCK,
    STUDY_START_BLOCK,
    ScenarioConfig,
)
from .engine import LiquidationOpportunity, ScheduledEvent, SimulationEngine, SimulationResult
from .market import MarketError, MarketMaker
from .scenarios import build_price_feed, build_scenario, run_scenario

__all__ = [
    "FEBRUARY_2021_CRASH_BLOCK",
    "IncidentConfig",
    "LiquidationOpportunity",
    "MARCH_2020_CRASH_BLOCK",
    "MAKERDAO_RECONFIG_BLOCK",
    "MarketError",
    "MarketMaker",
    "NOVEMBER_2020_ORACLE_BLOCK",
    "PopulationConfig",
    "STUDY_END_BLOCK",
    "STUDY_START_BLOCK",
    "ScenarioConfig",
    "ScheduledEvent",
    "SimulationEngine",
    "SimulationResult",
    "build_price_feed",
    "build_scenario",
    "run_scenario",
]
