"""Scenario simulation: engine, configuration, calibrated study-window scenario.

The scenario construction helpers (``build_scenario``, ``run_scenario``,
``build_price_feed``) are resolved lazily: they are thin shims over the
composable :mod:`repro.scenarios` package, and loading them eagerly here
would create an import cycle with it.
"""

from .config import (
    FEBRUARY_2021_CRASH_BLOCK,
    IncidentConfig,
    MARCH_2020_CRASH_BLOCK,
    MAKERDAO_RECONFIG_BLOCK,
    NOVEMBER_2020_ORACLE_BLOCK,
    PopulationConfig,
    STUDY_END_BLOCK,
    STUDY_START_BLOCK,
    ScenarioConfig,
)
from .engine import LiquidationOpportunity, ScheduledEvent, SimulationEngine, SimulationResult
from .market import MarketError, MarketMaker

#: Names re-exported from the (lazily imported) scenario shim module.
_SCENARIO_EXPORTS = frozenset({"build_price_feed", "build_scenario", "run_scenario"})

__all__ = [
    "FEBRUARY_2021_CRASH_BLOCK",
    "IncidentConfig",
    "LiquidationOpportunity",
    "MARCH_2020_CRASH_BLOCK",
    "MAKERDAO_RECONFIG_BLOCK",
    "MarketError",
    "MarketMaker",
    "NOVEMBER_2020_ORACLE_BLOCK",
    "PopulationConfig",
    "STUDY_END_BLOCK",
    "STUDY_START_BLOCK",
    "ScenarioConfig",
    "ScheduledEvent",
    "SimulationEngine",
    "SimulationResult",
    "build_price_feed",
    "build_scenario",
    "run_scenario",
]


def __getattr__(name: str):
    if name == "scenarios" or name in _SCENARIO_EXPORTS:
        import importlib

        module = importlib.import_module(".scenarios", __name__)
        return module if name == "scenarios" else getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | _SCENARIO_EXPORTS | {"scenarios"})
