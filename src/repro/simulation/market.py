"""Out-of-protocol market settlement for simulation participants.

The paper values every liquidation by assuming "the purchased collateral is
immediately sold by the liquidator at the price given by the price oracle"
(Section 4.3.1).  :class:`MarketMaker` provides exactly that venue: a
deep-pocketed counterparty that converts any registered asset into any other
at the oracle price minus a configurable slippage haircut.  Liquidators use
it to flip seized collateral (or to source repayment capital inside a flash
loan), and keepers use it to realise auction proceeds.

When a constant-product AMM pool exists for a pair, callers may prefer the
AMM; the market maker is the fallback that keeps the simulation solvent for
long-tail assets without having to bootstrap dozens of pools.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..chain.types import Address, make_address
from ..oracle.chainlink import PriceOracle
from ..tokens.registry import TokenRegistry


class MarketError(Exception):
    """Raised on conversions that cannot be quoted or settled."""


@dataclass
class MarketMaker:
    """An oracle-priced OTC conversion venue with practically unlimited depth."""

    oracle: PriceOracle
    registry: TokenRegistry
    slippage: float = 0.001
    address: Address = field(default_factory=lambda: make_address("market-maker"))
    inventory_usd: float = 5e10

    def __post_init__(self) -> None:
        if not 0.0 <= self.slippage < 1.0:
            raise ValueError("slippage must lie in [0, 1)")
        self._seeded: set[str] = set()

    def _ensure_inventory(self, symbol: str) -> None:
        """Lazily mint a deep inventory of ``symbol`` to the market maker."""
        key = symbol.upper()
        if key in self._seeded:
            return
        token = self.registry.ensure(key)
        price = max(self.oracle.price(key), 1e-9)
        token.mint(self.address, self.inventory_usd / price)
        self._seeded.add(key)

    def quote(self, from_symbol: str, to_symbol: str, amount: float) -> float:
        """Amount of ``to_symbol`` received for selling ``amount`` of ``from_symbol``."""
        if amount < 0:
            raise MarketError("conversion amount must be non-negative")
        price_from = self.oracle.price(from_symbol)
        price_to = self.oracle.price(to_symbol)
        if price_to <= 0:
            raise MarketError(f"no positive price for {to_symbol}")
        return amount * price_from * (1.0 - self.slippage) / price_to

    def quote_input_for(self, from_symbol: str, to_symbol: str, amount_out: float) -> float:
        """Amount of ``from_symbol`` to sell in order to receive ``amount_out``."""
        if amount_out < 0:
            raise MarketError("conversion amount must be non-negative")
        price_from = self.oracle.price(from_symbol)
        price_to = self.oracle.price(to_symbol)
        if price_from <= 0:
            raise MarketError(f"no positive price for {from_symbol}")
        return amount_out * price_to / (price_from * (1.0 - self.slippage))

    def convert(self, trader: Address, from_symbol: str, to_symbol: str, amount: float) -> float:
        """Sell ``amount`` of ``from_symbol`` for ``to_symbol`` at the oracle price.

        Returns the amount of ``to_symbol`` delivered to the trader.
        """
        amount_out = self.quote(from_symbol, to_symbol, amount)
        self._ensure_inventory(to_symbol)
        self._ensure_inventory(from_symbol)
        from_token = self.registry.get(from_symbol)
        to_token = self.registry.get(to_symbol)
        from_token.transfer(trader, self.address, amount)
        to_token.transfer(self.address, trader, amount_out)
        return amount_out

    def buy_exact(self, trader: Address, from_symbol: str, to_symbol: str, amount_out: float) -> float:
        """Buy exactly ``amount_out`` of ``to_symbol``; returns the input spent."""
        amount_in = self.quote_input_for(from_symbol, to_symbol, amount_out)
        self._ensure_inventory(to_symbol)
        self._ensure_inventory(from_symbol)
        from_token = self.registry.get(from_symbol)
        to_token = self.registry.get(to_symbol)
        from_token.transfer(trader, self.address, amount_in)
        to_token.transfer(self.address, trader, amount_out)
        return amount_in
