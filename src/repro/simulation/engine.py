"""The block-stride simulation engine.

The engine wires together the substrates (chain, tokens, oracles, AMM, flash
loans), the four lending protocols and the agent population, and advances
them step by step.  One step corresponds to ``blocks_per_step`` real blocks:

1. scheduled incidents whose block has been reached fire (crashes trigger
   congestion, oracle overrides are applied, MakerDAO reconfigures auctions);
2. every price oracle refreshes from the market feed;
3. interest accrues and dYdX's insurance fund writes off bad debt
   (periodically);
4. background traffic is submitted so that blocks have a market-clearing gas
   price and congestion actually crowds out low bids;
5. agents act (borrowers manage positions, keepers bid, liquidators submit
   liquidation transactions);
6. the chain mines the stride, executing the best-paying transactions.

The resulting chain (events, receipts, snapshots) is what the analytics
package consumes — exactly the artefacts the paper's measurement pipeline
reads from its archive node.

Consumers no longer have to wait for the archive: the engine carries an
:class:`~repro.observers.bus.ObserverBus` publishing typed
:class:`~repro.observers.events.SimEvent` s at every step phase
(``StepStarted`` → ``IncidentFired``/``PriceUpdated``/``SnapshotTaken`` →
``AuctionDealt``/``LiquidationSettled`` → ``BlockMined``), so probes stream
liquidations, health-factor alerts and per-step aggregates while the world
advances.  With no probes attached the bus is inert — events are not even
constructed — and probe-attached runs are bit-identical to bare runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from .. import sanitize
from ..amm.router import AmmRouter
from ..chain.chain import Blockchain
from ..chain.transaction import TxKind
from ..chain.types import Address, make_address
from ..core.position import Position
from ..flashloan.pool import FlashLoanProvider
from ..observers import events as sim_events
from ..observers.bus import ObserverBus, Probe
from ..oracle.chainlink import PriceOracle
from ..oracle.feed import PriceFeed
from ..protocols.base import LendingProtocol
from ..protocols.dydx import DydxProtocol
from ..protocols.fixed_spread_protocol import FixedSpreadProtocol
from ..protocols.makerdao import MakerDAOProtocol
from ..telemetry.runtime import span
from ..tokens.registry import TokenRegistry
from .config import ScenarioConfig
from .market import MarketMaker


@dataclass
class LiquidationOpportunity:
    """A liquidatable position on a fixed spread protocol, as seen by bots."""

    protocol: FixedSpreadProtocol
    borrower: Address
    debt_symbol: str
    collateral_symbol: str
    repay_amount: float
    expected_profit_usd: float
    health_factor: float


@dataclass
class ScheduledEvent:
    """A one-shot scenario event fired at (or after) a given block."""

    block: int
    name: str
    action: Callable[["SimulationEngine"], None]
    fired: bool = False


@dataclass
class SimulationResult:
    """Handle to everything an analytics pass needs after a run.

    The normalised liquidation records and the per-run aggregates are
    exposed as :attr:`records` and :attr:`metrics`.  Both prefer the
    streaming probes when they were attached (zero extra work at read time)
    and fall back to the legacy post-hoc crawl of the archive otherwise, so
    every existing caller keeps working unchanged.
    """

    engine: "SimulationEngine"
    _records_cache: "list | None" = field(default=None, repr=False, compare=False)

    @property
    def records(self) -> list:
        """The run's normalised :class:`~repro.analytics.records.LiquidationRecord` s.

        Backed by the attached :class:`~repro.observers.probes.LiquidationRecorder`
        when one streamed the run; otherwise the legacy
        :func:`~repro.analytics.records.extract_liquidations` crawl runs once
        and is cached.  Both paths yield field-for-field identical lists.
        """
        if self._records_cache is None:
            # Imported lazily: the analytics package imports this module.
            from ..analytics.records import extract_liquidations
            from ..observers.probes import LiquidationRecorder

            recorder = self._complete_probe(LiquidationRecorder)
            if recorder is not None:
                self._records_cache = recorder.records
            else:
                self._records_cache = extract_liquidations(self)
        return self._records_cache

    def _complete_probe(self, probe_type: type):
        """The first attached probe of ``probe_type`` that saw the full run.

        A probe attached after the streaming cursor advanced (because an
        earlier probe was already consuming the stream) holds partial state
        and must not substitute for the post-hoc crawl.
        """
        for probe in self.engine.bus.probes:
            if isinstance(probe, probe_type) and self.engine.probe_is_complete(probe):
                return probe
        return None

    @property
    def metrics(self) -> dict:
        """Per-run aggregates (counts, USD totals, blocks, incidents…).

        Backed by the attached :class:`~repro.observers.probes.MetricsAccumulator`
        when one streamed the run; otherwise recomputed from the archive via
        :func:`~repro.observers.probes.run_metrics`.
        """
        from ..observers.probes import MetricsAccumulator, run_metrics

        accumulator = self._complete_probe(MetricsAccumulator)
        if accumulator is not None:
            return accumulator.metrics
        return run_metrics(self)

    @property
    def chain(self) -> Blockchain:
        """The simulated chain (events, blocks, receipts, snapshots)."""
        return self.engine.chain

    @property
    def protocols(self) -> list[LendingProtocol]:
        """The protocol instances in their final state."""
        return self.engine.protocols

    @property
    def oracle(self) -> PriceOracle:
        """The main (Chainlink-style) oracle."""
        return self.engine.oracle

    @property
    def config(self) -> ScenarioConfig:
        """The scenario configuration of the run."""
        return self.engine.config

    @property
    def final_block(self) -> int:
        """The last mined block number."""
        latest = self.chain.latest_block
        return latest.number if latest else self.chain.current_block

    def protocol(self, name: str) -> LendingProtocol:
        """Look up a protocol by its display name (e.g. ``"Compound"``)."""
        return self.engine.protocol(name)


class SimulationEngine:
    """Owns the full simulated world and advances it step by step."""

    def __init__(
        self,
        config: ScenarioConfig,
        chain: Blockchain,
        registry: TokenRegistry,
        feed: PriceFeed,
        oracle: PriceOracle,
        protocols: list[LendingProtocol],
        protocol_oracles: dict[str, PriceOracle] | None = None,
        flash_loans: FlashLoanProvider | None = None,
        amm: AmmRouter | None = None,
        market_maker: MarketMaker | None = None,
    ) -> None:
        self.config = config
        self.chain = chain
        self.registry = registry
        self.feed = feed
        self.oracle = oracle
        self.protocols = protocols
        self.protocol_oracles = protocol_oracles or {}
        self.flash_loans = flash_loans or FlashLoanProvider()
        self.amm = amm or AmmRouter()
        self.market_maker = market_maker or MarketMaker(oracle=oracle, registry=registry)
        self.agents: list = []
        self.scheduled_events: list[ScheduledEvent] = []
        #: ``"vectorized"`` (default) scans positions through each protocol's
        #: columnar :class:`~repro.core.position_book.PositionBook`;
        #: ``"scalar"`` keeps the legacy per-position sweep.  Both backends
        #: produce bit-identical runs (see ``tests/test_scan_equivalence.py``).
        self.scan_backend: str = "vectorized"
        self._aggregate_backend: str = "vectorized"
        #: The typed event stream.  Attach probes with :meth:`attach_probe`;
        #: with none attached every emission site is skipped entirely.
        self.bus = ObserverBus()
        self.step_index = 0
        self.rng = np.random.default_rng(config.seed + 104729)
        #: Streaming cursor into the chain's append-only event store: chain
        #: logs past this offset have not yet been translated into typed
        #: events.  Starting at zero means a probe attached before the first
        #: step also sees liquidations from any pre-run setup transactions,
        #: keeping the streamed records equal to the post-hoc crawl.
        self._event_cursor = 0
        self._record_normalizers: tuple | None = None
        self._complete_probes: list[Probe] = []
        self._traffic_address = make_address("background-traffic")
        self._fixed_spread_cache: list[LiquidationOpportunity] | None = None
        self._makerdao_cache: list[Address] | None = None
        self._protocols_by_name: dict[str, LendingProtocol] = {}

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #
    def add_agent(self, agent) -> None:
        """Register one agent."""
        self.agents.append(agent)

    def add_agents(self, agents: Iterable) -> None:
        """Register several agents."""
        self.agents.extend(agents)

    def schedule(self, block: int, name: str, action: Callable[["SimulationEngine"], None]) -> None:
        """Register a one-shot scenario event."""
        self.scheduled_events.append(ScheduledEvent(block=block, name=name, action=action))

    def attach_probe(self, probe: Probe) -> Probe:
        """Attach an observer probe to the event bus and return it.

        Probes receive every :class:`~repro.observers.events.SimEvent` from
        the next step phase on.  They must be passive (no world mutation, no
        engine-RNG consumption) so instrumented runs stay bit-identical.

        A probe attached before the first step (and before any earlier probe
        consumed chain logs) is *complete*: it observes the run's entire
        event stream, and :attr:`SimulationResult.records` /
        :attr:`SimulationResult.metrics` may be backed by it.  A probe
        attached later has missed events — it still receives the backlog of
        liquidation logs through the streaming cursor, but it is never used
        as a substitute for the post-hoc crawl.
        """
        if self._event_cursor == 0 and self.step_index == 0:
            self._complete_probes.append(probe)
        return self.bus.attach(probe)

    def probe_is_complete(self, probe: Probe) -> bool:
        """Whether ``probe`` has observed the run's entire event history."""
        return probe in self._complete_probes

    def protocol(self, name: str) -> LendingProtocol:
        """Look up a protocol by name (O(1) on cache hits).

        The name-keyed cache rebuilds on a miss or when the list length
        changes, so appends and removals are picked up automatically.  The
        one mutation it cannot detect is replacing a list element in place
        with a different object of the same name — call
        :meth:`invalidate_protocol_cache` after doing that.
        """
        cache = self._protocols_by_name
        if len(cache) != len(self.protocols) or name not in cache:
            cache = self._protocols_by_name = {protocol.name: protocol for protocol in self.protocols}
        try:
            return cache[name]
        except KeyError:
            raise KeyError(f"no protocol named {name!r}") from None

    def invalidate_protocol_cache(self) -> None:
        """Drop the name-keyed protocol cache (needed only after replacing
        an element of ``self.protocols`` in place)."""
        self._protocols_by_name = {}

    @property
    def makerdao(self) -> MakerDAOProtocol | None:
        """The MakerDAO instance, if the scenario includes one."""
        for protocol in self.protocols:
            if isinstance(protocol, MakerDAOProtocol):
                return protocol
        return None

    @property
    def dydx(self) -> DydxProtocol | None:
        """The dYdX instance, if the scenario includes one."""
        for protocol in self.protocols:
            if isinstance(protocol, DydxProtocol):
                return protocol
        return None

    def fixed_spread_protocols(self) -> list[FixedSpreadProtocol]:
        """Protocols using the atomic fixed spread mechanism."""
        return [protocol for protocol in self.protocols if isinstance(protocol, FixedSpreadProtocol)]

    @property
    def aggregate_backend(self) -> str:
        """How the protocols compute aggregate valuations (totals,
        snapshots, utilization, analytics sweeps): ``"vectorized"``
        (default) routes them through each protocol's columnar book,
        ``"scalar"`` keeps the legacy per-position walks.  Both backends
        produce bit-identical runs and reports
        (``tests/test_valuation_equivalence.py``).  Setting it propagates to
        every protocol, so analytics over the finished
        :class:`SimulationResult` follow the same backend.
        """
        return self._aggregate_backend

    @aggregate_backend.setter
    def aggregate_backend(self, backend: str) -> None:
        self._aggregate_backend = backend
        self._push_aggregate_backend()

    def _push_aggregate_backend(self) -> None:
        """Propagate the engine's backend choice to every protocol.

        Called on assignment and again at the start of every :meth:`run`:
        protocols appended or swapped into ``self.protocols`` after the
        setter ran would otherwise silently keep their own default while
        the engine property reports something else.
        """
        for protocol in self.protocols:
            protocol.aggregate_backend = self._aggregate_backend

    def is_active(self, protocol: LendingProtocol) -> bool:
        """Whether the chain has reached the protocol's inception block."""
        return self.chain.current_block >= protocol.inception_block

    # ------------------------------------------------------------------ #
    # Per-step opportunity scans (shared by all liquidator / keeper agents)
    # ------------------------------------------------------------------ #
    def _liquidatable_candidates(self, protocol: LendingProtocol, require_collateral: bool = False) -> list[Position]:
        """Liquidatable positions of ``protocol`` via the selected backend.

        The vectorized backend flags candidate rows with the columnar book
        and confirms each with the scalar health factor, so both backends
        return exactly the same positions in the same order.
        """
        if self.scan_backend == "vectorized":
            candidates = protocol.liquidatable_candidates(require_collateral=require_collateral)
            if sanitize.enabled() and self.step_index % sanitize.stride() == 0:
                self._cross_check_scan(protocol, require_collateral, candidates)
            return candidates
        if self.scan_backend != "scalar":
            raise ValueError(f"unknown scan backend {self.scan_backend!r}")
        return self._scalar_candidates(protocol, require_collateral)

    def _scalar_candidates(self, protocol: LendingProtocol, require_collateral: bool) -> list[Position]:
        """The reference backend: a scalar sweep of every indebted position."""
        prices = protocol.prices()
        thresholds = protocol.liquidation_thresholds()
        return [
            position
            for position in protocol.positions_with_debt()
            if (position.has_collateral or not require_collateral)
            and position.is_liquidatable(prices, thresholds)
        ]

    def _cross_check_scan(
        self,
        protocol: LendingProtocol,
        require_collateral: bool,
        candidates: list[Position],
    ) -> None:
        """Sanitizer: the vectorized scan must equal the scalar sweep exactly.

        The vectorized backend is only allowed to exist because its
        margin-prefilter + scalar-confirmation construction returns the same
        positions in the same order as the reference sweep.  This re-derives
        the scalar answer every sanitize-stride-th step and insists on
        identity — catching a desynchronised book (stale rows the dirty
        tracking missed) at the step it first diverges.
        """
        reference = self._scalar_candidates(protocol, require_collateral)
        if [id(p) for p in candidates] != [id(p) for p in reference]:
            fast = [str(position.owner) for position in candidates]
            slow = [str(position.owner) for position in reference]
            raise sanitize.SanitizerError(
                f"vectorized liquidation scan of {protocol.name} diverged from "
                f"the scalar sweep at step {self.step_index} (block "
                f"{self.chain.current_block}): vectorized={fast} scalar={slow}; "
                "the position book no longer mirrors the position dictionaries"
            )

    def fixed_spread_opportunities(self) -> list[LiquidationOpportunity]:
        """Liquidatable positions on the fixed spread protocols, this step."""
        if self._fixed_spread_cache is not None:
            return self._fixed_spread_cache
        opportunities: list[LiquidationOpportunity] = []
        for protocol in self.fixed_spread_protocols():
            if not self.is_active(protocol):
                continue
            # One batched quote pass: a single prices/thresholds fetch is
            # shared across every flagged candidate (prices cannot move
            # within a step), instead of three oracle sweeps per candidate.
            with span("engine.scan"):
                candidates = self._liquidatable_candidates(protocol)
            with span("engine.quote"):
                for position, quote in protocol.quote_opportunities(candidates):
                    opportunities.append(
                        LiquidationOpportunity(
                            protocol=protocol,
                            borrower=position.owner,
                            debt_symbol=quote.debt_symbol,
                            collateral_symbol=quote.collateral_symbol,
                            repay_amount=quote.repay_amount,
                            expected_profit_usd=quote.profit_usd,
                            health_factor=quote.health_factor_before,
                        )
                    )
        self._fixed_spread_cache = opportunities
        return opportunities

    def makerdao_opportunities(self) -> list[Address]:
        """Unsafe MakerDAO vaults that can be bitten this step."""
        if self._makerdao_cache is not None:
            return self._makerdao_cache
        makerdao = self.makerdao
        if makerdao is None or not self.is_active(makerdao):
            self._makerdao_cache = []
            return self._makerdao_cache
        with span("engine.scan"):
            vaults = [
                position.owner
                for position in self._liquidatable_candidates(makerdao, require_collateral=True)
            ]
        self._makerdao_cache = vaults
        return vaults

    # ------------------------------------------------------------------ #
    # Stepping
    # ------------------------------------------------------------------ #
    def step(self):
        """Advance the world by one block stride and return the mined block.

        Every phase runs under a telemetry span (``engine.incidents`` …
        ``engine.mine``); with telemetry off each ``span()`` call returns a
        shared no-op, so the instrumentation is unmeasurable on bare runs.
        """
        with span("engine.step"):
            bus = self.bus if self.bus.active else None
            if bus:
                bus.emit(
                    sim_events.StepStarted(
                        step_index=self.step_index, block_number=self.chain.current_block
                    )
                )
            with span("engine.incidents"):
                self._fire_scheduled_events()
            with span("engine.oracles"):
                self._update_oracles()
            with span("engine.maintenance"):
                self._periodic_maintenance()
            self._fixed_spread_cache = None
            self._makerdao_cache = None
            with span("engine.traffic"):
                self._submit_background_traffic()
            with span("engine.agents"):
                for agent in self.agents:
                    agent.act(self)
            with span("engine.mine"):
                block = self.chain.mine_block()
            if bus:
                with span("engine.probes"):
                    self._stream_chain_events(bus)
                    bus.emit(
                        sim_events.BlockMined(
                            step_index=self.step_index,
                            block_number=block.number,
                            n_receipts=len(block.receipts),
                            gas_used=block.gas_used,
                            base_gas_price_wei=block.base_gas_price,
                        )
                    )
            self.step_index += 1
            return block

    def run(self, n_steps: int | None = None) -> SimulationResult:
        """Run until the configured end block (or for ``n_steps`` strides)."""
        remaining = n_steps if n_steps is not None else self.config.n_steps
        self._push_aggregate_backend()  # cover protocols swapped in since the setter ran
        bus = self.bus if self.bus.active else None
        if bus:
            bus.emit(
                sim_events.RunStarted(
                    step_index=self.step_index,
                    block_number=self.chain.current_block,
                    n_steps=remaining,
                    end_block=self.config.end_block,
                )
            )
        for _ in range(remaining):
            if self.chain.current_block > self.config.end_block:
                break
            self.step()
        bus = self.bus if self.bus.active else None  # probes may attach mid-run
        # Final archive capture — unless the pending block is already
        # snapshotted (periodic snapshotting hit it, or a previous run()
        # call ended here), in which case re-capturing is pure waste.
        snapshot_blocks = self.chain.snapshot_blocks
        if not snapshot_blocks or snapshot_blocks[-1] != self.chain.current_block:
            with span("engine.snapshot"):
                self.chain.take_snapshot()
            if bus:
                bus.emit(
                    sim_events.SnapshotTaken(
                        step_index=self.step_index, block_number=self.chain.current_block
                    )
                )
        if bus:
            bus.emit(
                sim_events.RunCompleted(
                    step_index=self.step_index,
                    block_number=self.chain.current_block,
                    final_block=self.chain.latest_block.number
                    if self.chain.latest_block
                    else self.chain.current_block,
                )
            )
            bus.finalize()
        return SimulationResult(engine=self)

    # ------------------------------------------------------------------ #
    # Step phases
    # ------------------------------------------------------------------ #
    def _fire_scheduled_events(self) -> None:
        # Fire in block order over a snapshot, then re-scan: an action may
        # legitimately schedule further events (possibly already due, or due
        # at a block before ``start_block``), so the list can grow while
        # firing.  Marking ``fired`` before calling the action keeps a
        # re-entrant scan from firing the same event twice.
        while True:
            due = [
                event
                for event in self.scheduled_events
                if not event.fired and self.chain.current_block >= event.block
            ]
            if not due:
                return
            due.sort(key=lambda event: event.block)
            for event in due:
                if event.fired:
                    continue
                event.fired = True
                event.action(self)
                if self.bus.active:
                    self.bus.emit(
                        sim_events.IncidentFired(
                            step_index=self.step_index,
                            block_number=self.chain.current_block,
                            name=event.name,
                            scheduled_block=event.block,
                        )
                    )

    def _update_oracles(self) -> None:
        bus = self.bus if self.bus.active else None
        self.oracle.update_from_feed()
        if bus:
            self._emit_price_updates(bus, self.oracle)
        for oracle in self.protocol_oracles.values():
            if oracle is not self.oracle:
                oracle.update_from_feed()
                if bus:
                    self._emit_price_updates(bus, oracle)

    def _emit_price_updates(self, bus: ObserverBus, oracle: PriceOracle) -> None:
        # Hot path: dozens of updates per stride.  The oracle keeps the
        # posted pairs on ``last_updates``, and positional construction
        # (fields: step_index, block_number, oracle, symbol, price) avoids
        # per-symbol price re-queries — both are what keep the active bus
        # inside its <5 % overhead budget.
        step_index = self.step_index
        block = self.chain.current_block
        name = oracle.config.name
        emit = bus.emit
        for symbol, price in oracle.last_updates:
            emit(sim_events.PriceUpdated(step_index, block, name, symbol, price))

    def _periodic_maintenance(self) -> None:
        if self.step_index % self.config.interest_accrual_every_steps == 0:
            accrued = []
            for protocol in self.protocols:
                if self.is_active(protocol):
                    protocol.accrue_interest()
                    accrued.append(protocol.name)
            if accrued and self.bus.active:
                self.bus.emit(
                    sim_events.InterestAccrued(
                        step_index=self.step_index,
                        block_number=self.chain.current_block,
                        protocols=tuple(accrued),
                    )
                )
        dydx = self.dydx
        if dydx is not None and self.step_index % self.config.insurance_writeoff_every_steps == 0:
            if self.is_active(dydx):
                dydx.write_off_bad_debt()
        if self.config.snapshot_every_steps and self.step_index % self.config.snapshot_every_steps == 0:
            with span("engine.snapshot"):
                self.chain.take_snapshot()
            if self.bus.active:
                self.bus.emit(
                    sim_events.SnapshotTaken(
                        step_index=self.step_index, block_number=self.chain.current_block
                    )
                )

    def _stream_chain_events(self, bus: ObserverBus) -> None:
        """Translate freshly appended chain logs into typed events.

        Runs after the stride is mined: every liquidation-bearing log past
        the streaming cursor becomes an :class:`AuctionDealt` and/or a
        :class:`LiquidationSettled` carrying the same normalised record the
        post-hoc crawl would produce.  With no probe attached the cursor
        simply lags; the first active drain then catches up, so probes
        attached mid-run still see the full liquidation history.
        """
        normalizers = self._record_normalizers
        if normalizers is None:
            # Imported lazily (the analytics package imports this module)
            # and cached: the drain runs on every observed stride.
            from ..analytics.common import FIXED_SPREAD_LIQUIDATION_EVENTS
            from ..analytics.records import auction_record, fixed_spread_record

            normalizers = self._record_normalizers = (
                frozenset(FIXED_SPREAD_LIQUIDATION_EVENTS),
                fixed_spread_record,
                auction_record,
            )
        fixed_spread_names, fixed_spread_record, auction_record = normalizers

        store = self.chain.events
        logs = store.since(self._event_cursor)
        self._event_cursor = len(store)
        for log in logs:
            if log.name in fixed_spread_names:
                bus.emit(
                    sim_events.LiquidationSettled(
                        step_index=self.step_index,
                        block_number=log.block_number,
                        record=fixed_spread_record(self.chain, log),
                    )
                )
            elif log.name == "Deal":
                data = log.data
                bus.emit(
                    sim_events.AuctionDealt(
                        step_index=self.step_index,
                        block_number=log.block_number,
                        auction_id=data.get("auction_id"),
                        borrower=data.get("borrower"),
                        winner=data.get("winner"),
                        collateral_symbol=data.get("collateral_symbol"),
                        debt_repaid=data.get("debt_repaid", 0.0),
                        collateral_won=data.get("collateral_won", 0.0),
                    )
                )
                record = auction_record(self.chain, self.oracle, log)
                if record is not None:
                    bus.emit(
                        sim_events.LiquidationSettled(
                            step_index=self.step_index,
                            block_number=log.block_number,
                            record=record,
                        )
                    )

    def _submit_background_traffic(self) -> None:
        """Fill blocks with ordinary traffic around the market gas price.

        During congestion episodes the demand exceeds capacity, so only bids
        above the (congested) market level land — this is what prices out
        keeper bots computing gas from stale, uncongested estimates.
        """
        market = self.chain.gas_market
        stride_budget = self.chain.config.block_gas_limit * max(self.chain.config.blocks_per_step, 1)
        fill = (
            self.config.background_fill_congested
            if market.is_congested
            else self.config.background_fill_normal
        )
        n_chunks = 40
        gas_each = max(int(stride_budget * fill / n_chunks), 21_000)
        base = market.base_gas_price_wei
        # One vectorized draw per step; the stream is identical to the former
        # per-chunk scalar draws, so seeded runs are unchanged.
        multipliers = self.rng.lognormal(0.0, 0.35, size=n_chunks)
        for multiplier in multipliers:
            gas_price = max(int(base * float(multiplier)), 1)
            self.chain.submit_call(
                sender=self._traffic_address,
                action=None,
                gas_price=gas_price,
                gas_limit=gas_each,
                kind=TxKind.OTHER,
                metadata={"background": True},
            )
