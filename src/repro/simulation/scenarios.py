"""Scenario construction: the calibrated two-year study window.

:func:`build_scenario` assembles the full simulated world of the paper's
measurement window (April 2019 – April 2021): the chain, the asset universe
and its synthetic price history, the Chainlink-style oracle plus Compound's
own oracle, the four lending protocols, flash-loan pools, AMM pools, the OTC
market maker, and the agent population.  The three incidents the paper's
results revolve around are scheduled at their (approximate) historical block
heights:

* **13 March 2020** — ETH drops 43 % in a step and the network congests;
  keeper bots price their bids off stale gas estimates and are crowded out,
  so auctions settle at deep discounts (Figure 5's MakerDAO outlier) and
  MakerDAO subsequently lengthens its bid duration (Figure 7).
* **November 2020** — Compound's oracle reports an irregular DAI price,
  liquidating a wave of otherwise healthy DAI borrowers (Figure 5's
  Compound outlier).
* **February 2021** — a broad, sharp drawdown with renewed congestion.
"""

from __future__ import annotations

import numpy as np

from ..agents.arbitrageur import ArbitrageurAgent
from ..agents.base import spawn_rngs
from ..agents.borrower import BorrowerAgent, BorrowerProfile
from ..agents.keeper import AuctionKeeperAgent, KeeperProfile
from ..agents.lender import LenderAgent
from ..agents.liquidator import LiquidatorAgent, LiquidatorProfile
from ..amm.pool import ConstantProductPool
from ..amm.router import AmmRouter
from ..chain.chain import Blockchain, ChainConfig
from ..chain.gas import GasMarket, GasMarketConfig
from ..chain.types import make_address
from ..core.auction import AuctionConfig
from ..flashloan.pool import FlashLoanPool, FlashLoanProvider
from ..oracle.chainlink import OracleConfig, PriceOracle
from ..oracle.feed import PriceFeed
from ..oracle.paths import AssetPathConfig, Shock, build_series
from ..protocols.aave import make_aave_v1, make_aave_v2
from ..protocols.base import LendingProtocol
from ..protocols.compound import make_compound
from ..protocols.dydx import make_dydx
from ..protocols.makerdao import make_makerdao
from ..tokens.registry import default_registry, inception_prices
from .config import ScenarioConfig
from .engine import SimulationEngine, SimulationResult
from .market import MarketMaker

#: Annualised (drift, volatility) of the non-stable assets in the default
#: scenario, loosely calibrated to the 2019-2021 bull market punctuated by
#: crashes.
ASSET_DYNAMICS: dict[str, tuple[float, float]] = {
    "ETH": (1.15, 0.85),
    "WBTC": (0.95, 0.75),
    "LINK": (1.3, 1.1),
    "UNI": (1.1, 1.2),
    "COMP": (0.6, 1.1),
    "MKR": (0.8, 1.0),
    "AAVE": (1.2, 1.2),
    "YFI": (0.9, 1.3),
    "SNX": (1.0, 1.2),
    "KNC": (0.7, 1.1),
    "MANA": (1.2, 1.3),
    "REP": (0.2, 1.0),
    "ENJ": (1.1, 1.3),
    "REN": (0.9, 1.3),
    "CRV": (0.4, 1.3),
    "BAL": (0.5, 1.2),
    "BAT": (0.5, 1.0),
    "ZRX": (0.5, 1.0),
    "TUSD": (0.0, 0.0),
}


def _feed_step_for_block(config: ScenarioConfig, block: int) -> int:
    """Map a block height onto the price feed's (finer) step grid."""
    return max((block - config.start_block) // config.feed_blocks_per_step, 0)


def _engine_step_for_block(config: ScenarioConfig, block: int) -> int:
    """Map a block height onto the engine's (coarser) step grid."""
    return max((block - config.start_block) // config.blocks_per_step, 0)


def build_price_feed(config: ScenarioConfig) -> PriceFeed:
    """Generate the synthetic market price history for the scenario window.

    The feed is generated on a finer block grid than the engine stride
    (``feed_blocks_per_step``) so that block-level measurements — the
    post-liquidation price windows of Appendix A, the stablecoin differences
    of Section 4.5.2 — have sub-stride resolution.
    """
    n_steps = (config.end_block - config.start_block) // config.feed_blocks_per_step + 3
    steps_per_year = max(int(365 * 24 * 3600 / (13 * config.feed_blocks_per_step)), 1)
    incidents = config.incidents
    march_step = _feed_step_for_block(config, incidents.march_2020_block)
    feb_step = _feed_step_for_block(config, incidents.february_2021_block)
    crash_shocks = {
        "march": Shock(
            step=march_step,
            magnitude=1.0 - incidents.march_2020_eth_drop,
            duration=1,
            recovery=0.65,
            recovery_steps=max(n_steps // 25, 5),
        ),
        "february": Shock(
            step=feb_step,
            magnitude=1.0 - incidents.february_2021_drop,
            duration=2,
            recovery=0.5,
            recovery_steps=max(n_steps // 40, 5),
        ),
    }
    prices = inception_prices()
    configs: dict[str, AssetPathConfig] = {}
    for symbol, (drift, volatility) in ASSET_DYNAMICS.items():
        shocks = []
        if march_step < n_steps:
            shocks.append(crash_shocks["march"])
        if feb_step < n_steps:
            shocks.append(crash_shocks["february"])
        configs[symbol] = AssetPathConfig(
            initial_price=prices.get(symbol, 1.0),
            annual_drift=drift,
            annual_volatility=volatility,
            shocks=shocks,
        )
    for symbol in ("DAI", "USDC", "USDT", "TUSD"):
        configs[symbol] = AssetPathConfig(
            initial_price=1.0,
            is_stablecoin=True,
            peg_volatility=0.0015,
            peg_reversion=0.08,
        )
    series = build_series(configs, n_steps, seed=config.seed, steps_per_year=steps_per_year)
    return PriceFeed(start_block=config.start_block, blocks_per_step=config.feed_blocks_per_step, series=series)


def pre_incident_auction_config(blocks_per_step: int) -> AuctionConfig:
    """MakerDAO's pre-March-2020 auction parameters, scaled to the stride.

    The paper-era values (6-hour auction length, ≈ 10-minute bid duration)
    are kept whenever the stride can resolve them; coarser strides stretch
    them so that auctions still span multiple simulation steps.
    """
    return AuctionConfig(
        auction_length_blocks=max(1_660, 3 * blocks_per_step),
        bid_duration_blocks=max(140, int(0.9 * blocks_per_step)),
    )


def post_incident_auction_config(blocks_per_step: int) -> AuctionConfig:
    """MakerDAO's post-March-2020 auction parameters (longer bid duration)."""
    return AuctionConfig(
        auction_length_blocks=max(1_660, 5 * blocks_per_step),
        bid_duration_blocks=max(1_660, 2 * blocks_per_step),
    )


def _build_protocols(
    chain: Blockchain,
    oracle: PriceOracle,
    compound_oracle: PriceOracle,
    registry,
    config: ScenarioConfig,
) -> list[LendingProtocol]:
    """Instantiate the four studied protocols with their paper parameters."""
    aave_v1 = make_aave_v1(chain, oracle, registry)
    aave_v2 = make_aave_v2(chain, oracle, registry)
    compound = make_compound(chain, compound_oracle, registry)
    dydx = make_dydx(chain, oracle, registry)
    makerdao = make_makerdao(chain, oracle, registry)
    makerdao.reconfigure_auctions(pre_incident_auction_config(config.blocks_per_step))
    return [aave_v1, aave_v2, compound, dydx, makerdao]


def _build_flash_loans(chain: Blockchain, registry) -> FlashLoanProvider:
    """Flash-loan pools on Aave V1/V2 and dYdX (Table 4's venues)."""
    provider = FlashLoanProvider()
    funder = make_address("flash-loan-lp")
    pools = [
        ("dYdX", "DAI", 0.0, 400_000_000.0),
        ("dYdX", "USDC", 0.0, 400_000_000.0),
        ("dYdX", "ETH", 0.0, 800_000.0),
        ("Aave V1", "DAI", 0.0009, 120_000_000.0),
        ("Aave V1", "USDC", 0.0009, 120_000_000.0),
        ("Aave V2", "DAI", 0.0009, 200_000_000.0),
        ("Aave V2", "USDC", 0.0009, 200_000_000.0),
        ("Aave V2", "ETH", 0.0009, 300_000.0),
    ]
    for platform, symbol, fee, amount in pools:
        token = registry.ensure(symbol)
        pool = FlashLoanPool(platform=platform, token=token, fee_rate=fee, chain=chain)
        token.mint(funder, amount)
        pool.fund(funder, amount)
        provider.register(pool)
    return provider


def _build_amm(chain: Blockchain, registry, feed: PriceFeed, start_block: int) -> AmmRouter:
    """Constant-product pools for the main collateral/debt pairs."""
    router = AmmRouter()
    lp = make_address("amm-lp")
    pairs = [("ETH", "DAI", 60_000_000.0), ("ETH", "USDC", 60_000_000.0), ("WBTC", "DAI", 30_000_000.0)]
    for symbol_a, symbol_b, usd_depth in pairs:
        token_a = registry.ensure(symbol_a)
        token_b = registry.ensure(symbol_b)
        price_a = feed.price(symbol_a, start_block)
        price_b = feed.price(symbol_b, start_block)
        amount_a = usd_depth / 2.0 / price_a
        amount_b = usd_depth / 2.0 / price_b
        token_a.mint(lp, amount_a)
        token_b.mint(lp, amount_b)
        pool = ConstantProductPool(token_a=token_a, token_b=token_b, chain=chain)
        pool.add_liquidity(lp, amount_a, amount_b)
        router.register(pool)
    return router


def _borrower_profiles(
    config: ScenarioConfig,
    protocol: LendingProtocol,
    rng: np.random.Generator,
) -> list[BorrowerProfile]:
    """Sample the borrower population for one protocol."""
    population = config.population
    profiles: list[BorrowerProfile] = []
    is_aave_v2 = protocol.name == "Aave V2"
    is_makerdao = protocol.name == "MakerDAO"
    is_dydx = protocol.name == "dYdX"
    multi_fraction = (
        population.multi_collateral_fraction_aave_v2 if is_aave_v2 else population.multi_collateral_fraction_other
    )
    collateral_universe = [
        symbol
        for symbol, market in protocol.markets.items()
        if market.collateral_enabled and symbol not in ("DAI", "USDC", "USDT", "TUSD")
    ]
    stable_universe = [
        symbol for symbol, market in protocol.markets.items() if market.collateral_enabled and symbol in ("USDC", "USDT", "TUSD")
    ]
    total_steps = config.n_steps
    inception_step = _engine_step_for_block(config, protocol.inception_block)

    def entry_step() -> int:
        span = max(total_steps - inception_step - 2, 1)
        return inception_step + int(rng.beta(1.2, 1.6) * span)

    for index in range(population.borrowers_per_platform):
        short_position = rng.random() < population.short_borrower_fraction and stable_universe and not is_makerdao
        attentive = rng.random() > population.inattentive_fraction
        size = float(rng.lognormal(np.log(60_000), 1.4))
        if short_position:
            collateral = (str(rng.choice(stable_universe)),)
            debt_symbol = "ETH"
        else:
            main = "ETH" if rng.random() < 0.6 or not collateral_universe else str(rng.choice(collateral_universe))
            if rng.random() < multi_fraction and len(collateral_universe) >= 2:
                extras = [str(symbol) for symbol in rng.choice(collateral_universe, size=2, replace=False)]
                collateral = tuple(dict.fromkeys([main, *extras]))
            else:
                collateral = (main,)
            if is_makerdao:
                debt_symbol = "DAI"
            elif is_dydx:
                debt_symbol = str(rng.choice(["DAI", "USDC"]))
            else:
                debt_symbol = str(rng.choice(["DAI", "USDC", "USDT"])) if "USDT" in protocol.markets else str(
                    rng.choice(["DAI", "USDC"])
                )
        profiles.append(
            BorrowerProfile(
                collateral_symbols=collateral,
                debt_symbol=debt_symbol,
                collateral_usd=size,
                target_health_factor=float(rng.uniform(1.03, 1.6)),
                attentive=attentive,
                topup_trigger=float(rng.uniform(1.03, 1.12)),
                entry_step=entry_step(),
            )
        )
    for index in range(population.dust_borrowers_per_platform):
        # Dust positions whose excess collateral cannot cover a closing fee:
        # the source of Table 2's Type II bad debt.
        profiles.append(
            BorrowerProfile(
                collateral_symbols=("ETH",) if not is_makerdao else ("ETH",),
                debt_symbol="DAI" if is_makerdao or rng.random() < 0.5 else "USDC",
                collateral_usd=float(rng.uniform(20.0, 600.0)),
                target_health_factor=float(rng.uniform(1.05, 1.4)),
                attentive=False,
                entry_step=entry_step(),
            )
        )
    return profiles


def build_scenario(config: ScenarioConfig | None = None) -> SimulationEngine:
    """Construct a ready-to-run :class:`SimulationEngine` for ``config``."""
    config = config or ScenarioConfig()
    rng = np.random.default_rng(config.seed)
    registry = default_registry()
    feed = build_price_feed(config)
    gas_market = GasMarket(
        config=GasMarketConfig(initial_gwei=8.0),
        rng=np.random.default_rng(config.seed + 11),
    )
    chain = Blockchain(
        config=ChainConfig(
            inception_block=config.start_block,
            inception_timestamp=config.start_timestamp,
            blocks_per_step=config.blocks_per_step,
        ),
        gas_market=gas_market,
    )
    oracle = PriceOracle(chain, feed, OracleConfig(name="chainlink"))
    compound_oracle = PriceOracle(chain, feed, OracleConfig(name="compound-open-oracle"))
    oracle.update_from_feed()
    compound_oracle.update_from_feed()
    protocols = _build_protocols(chain, oracle, compound_oracle, registry, config)
    flash_loans = _build_flash_loans(chain, registry)
    amm = _build_amm(chain, registry, feed, config.start_block)
    market_maker = MarketMaker(oracle=oracle, registry=registry)
    engine = SimulationEngine(
        config=config,
        chain=chain,
        registry=registry,
        feed=feed,
        oracle=oracle,
        protocols=protocols,
        protocol_oracles={"Compound": compound_oracle, "chainlink": oracle},
        flash_loans=flash_loans,
        amm=amm,
        market_maker=market_maker,
    )
    _schedule_incidents(engine)
    _populate_agents(engine, rng)
    return engine


def _schedule_incidents(engine: SimulationEngine) -> None:
    """Register the three incidents plus MakerDAO's auction reconfiguration."""
    config = engine.config
    incidents = config.incidents

    def march_crash(eng: SimulationEngine) -> None:
        steps = max(incidents.march_2020_congestion_blocks // config.blocks_per_step, 1)
        eng.chain.gas_market.trigger_congestion(steps)

    def february_crash(eng: SimulationEngine) -> None:
        steps = max(incidents.february_2021_congestion_blocks // config.blocks_per_step, 1)
        eng.chain.gas_market.trigger_congestion(steps)

    def compound_oracle_irregularity(eng: SimulationEngine) -> None:
        compound_oracle = eng.protocol_oracles.get("Compound")
        if compound_oracle is not None:
            compound_oracle.set_override("DAI", incidents.november_2020_dai_price)

    def compound_oracle_recovery(eng: SimulationEngine) -> None:
        compound_oracle = eng.protocol_oracles.get("Compound")
        if compound_oracle is not None:
            compound_oracle.clear_override("DAI")

    def makerdao_reconfig(eng: SimulationEngine) -> None:
        makerdao = eng.makerdao
        if makerdao is not None:
            makerdao.reconfigure_auctions(post_incident_auction_config(config.blocks_per_step))

    engine.schedule(incidents.march_2020_block, "march-2020-crash", march_crash)
    engine.schedule(incidents.february_2021_block, "february-2021-crash", february_crash)
    engine.schedule(incidents.november_2020_block, "compound-dai-oracle-irregularity", compound_oracle_irregularity)
    engine.schedule(
        incidents.november_2020_block + incidents.november_2020_duration_blocks,
        "compound-dai-oracle-recovery",
        compound_oracle_recovery,
    )
    engine.schedule(incidents.makerdao_reconfig_block, "makerdao-auction-reconfiguration", makerdao_reconfig)


def _populate_agents(engine: SimulationEngine, rng: np.random.Generator) -> None:
    """Create lenders, borrowers, liquidators, keepers and the arbitrageur."""
    config = engine.config
    population = config.population
    agent_rngs = iter(spawn_rngs(config.seed + 1, 50_000))

    # Lenders seed pool liquidity so borrowers have something to borrow.
    for protocol in engine.fixed_spread_protocols():
        for index in range(population.lenders_per_platform):
            supplies = {"DAI": 150_000_000.0, "USDC": 150_000_000.0, "ETH": 80_000_000.0}
            supplies = {symbol: usd for symbol, usd in supplies.items() if symbol in protocol.markets}
            engine.add_agent(
                LenderAgent(f"lender-{protocol.name}-{index}", next(agent_rngs), protocol, supplies)
            )

    # Borrowers.
    for protocol in engine.protocols:
        profiles = _borrower_profiles(config, protocol, rng)
        for index, profile in enumerate(profiles):
            engine.add_agent(
                BorrowerAgent(f"borrower-{protocol.name}-{index}", next(agent_rngs), protocol, profile)
            )

    # Fixed spread liquidation bots.
    for index in range(population.liquidators):
        profile = LiquidatorProfile(
            detection_probability=float(rng.uniform(0.15, 0.5)),
            gas_multiplier_mean=config.liquidator_gas_multiplier_mean * float(rng.uniform(0.8, 1.3)),
            gas_multiplier_sigma=config.liquidator_gas_multiplier_sigma,
            flash_loan_probability=config.liquidator_flash_loan_probability * float(rng.uniform(0.4, 2.0)),
            min_profit_margin=float(rng.uniform(1.1, 1.8)),
            holding_symbol="USDC" if rng.random() < 0.7 else "DAI",
            initial_capital_usd=float(rng.lognormal(np.log(3_000_000), 1.0)),
            offline_during_congestion=rng.random() < 0.3,
        )
        engine.add_agent(LiquidatorAgent(f"liquidator-{index}", next(agent_rngs), profile))

    # MakerDAO auction keepers.  A small minority pays market-rate gas even
    # during congestion and therefore keeps winning auctions at low-ball bids
    # while the rest of the bots are priced out (the March 2020 dynamic).
    makerdao = engine.makerdao
    if makerdao is not None:
        for index in range(population.keepers):
            capable = index < max(population.keepers // 4, 1)
            profile = KeeperProfile(
                detection_probability=float(rng.uniform(0.3, 0.7)),
                profit_margin=float(rng.uniform(0.03, 0.12)),
                first_bid_fraction=float(rng.uniform(0.35, 0.7)),
                offline_during_congestion=not capable,
                uses_market_gas=capable,
            )
            engine.add_agent(AuctionKeeperAgent(f"keeper-{index}", next(agent_rngs), makerdao, profile))

    engine.add_agent(ArbitrageurAgent("arbitrageur", next(agent_rngs)))


def run_scenario(config: ScenarioConfig | None = None) -> SimulationResult:
    """Build and run a scenario end-to-end, returning the result handle."""
    engine = build_scenario(config)
    return engine.run()
