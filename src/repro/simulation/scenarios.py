"""Legacy scenario entry points (thin shims over :mod:`repro.scenarios`).

The calibrated study-window scenario now lives in the composable
:mod:`repro.scenarios` package — :class:`~repro.scenarios.ScenarioBuilder`
plus first-class incidents and a named scenario registry.  This module keeps
the original entry points working unchanged:

* :func:`build_scenario` / :func:`run_scenario` — build/run the default
  world for a :class:`ScenarioConfig`;
* :func:`build_price_feed` — the synthetic price history on its own;
* ``ASSET_DYNAMICS`` and the MakerDAO auction parameter helpers.

New code should use the builder and registry directly::

    from repro import scenarios
    result = scenarios.ScenarioBuilder(config).build().run()
    result = scenarios.get("march-2020-only").run(seed=7)
"""

from __future__ import annotations

from ..scenarios.builder import ASSET_DYNAMICS, ScenarioBuilder
from ..scenarios.incidents import post_incident_auction_config, pre_incident_auction_config
from ..oracle.feed import PriceFeed
from .config import ScenarioConfig
from .engine import SimulationEngine, SimulationResult

__all__ = [
    "ASSET_DYNAMICS",
    "build_price_feed",
    "build_scenario",
    "post_incident_auction_config",
    "pre_incident_auction_config",
    "run_scenario",
]


def build_price_feed(config: ScenarioConfig) -> PriceFeed:
    """Generate the synthetic market price history for the scenario window."""
    return ScenarioBuilder(config).build_feed()


def build_scenario(config: ScenarioConfig | None = None) -> SimulationEngine:
    """Construct a ready-to-run :class:`SimulationEngine` for ``config``."""
    return ScenarioBuilder(config or ScenarioConfig()).build()


def run_scenario(config: ScenarioConfig | None = None) -> SimulationResult:
    """Build and run a scenario end-to-end, returning the result handle."""
    return build_scenario(config).run()
