"""Scenario configuration.

A :class:`ScenarioConfig` fully determines a simulation run: the block window
(the paper studies April 2019 – April 2021, blocks ≈ 7.5 M – 12,344,944), the
stride at which the chain advances, the agent population sizes, and the
scheduled incidents (crashes, congestion, oracle irregularities).  Two
presets are provided:

* :meth:`ScenarioConfig.small` — a three-month window with a small agent
  population, used by integration tests and the quickstart example;
* :meth:`ScenarioConfig.paper` — the full two-year window used by the
  benchmark harness to regenerate the paper's tables and figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

#: Final block of the study window: "block 12344944, the last block in the
#: month of April, 2021" (Section 4.2).
STUDY_END_BLOCK = 12_344_944

#: First block of the study window (slightly before dYdX's inception block
#: 7,575,711, the earliest of the four platforms).
STUDY_START_BLOCK = 7_500_000

#: Unix timestamp of the study start (≈ 25 April 2019), chosen so that 13-second
#: blocks land the end block in late April 2021.
STUDY_START_TIMESTAMP = 1_556_150_000

#: Approximate block heights of the three incidents the paper highlights.
MARCH_2020_CRASH_BLOCK = 9_865_000
NOVEMBER_2020_ORACLE_BLOCK = 11_330_000
FEBRUARY_2021_CRASH_BLOCK = 11_940_000

#: Block at which MakerDAO changed its auction parameters after the March
#: 2020 incident (visible as the step in Figure 7's configured lines).
MAKERDAO_RECONFIG_BLOCK = 9_950_000


@dataclass(frozen=True)
class PopulationConfig:
    """Sizes of the agent populations."""

    borrowers_per_platform: int = 120
    dust_borrowers_per_platform: int = 40
    lenders_per_platform: int = 4
    liquidators: int = 24
    keepers: int = 8
    short_borrower_fraction: float = 0.25
    inattentive_fraction: float = 0.55
    multi_collateral_fraction_aave_v2: float = 0.7
    multi_collateral_fraction_other: float = 0.15


@dataclass(frozen=True)
class IncidentConfig:
    """Scheduled incidents of the default scenario."""

    march_2020_block: int = MARCH_2020_CRASH_BLOCK
    march_2020_eth_drop: float = 0.43
    march_2020_congestion_blocks: int = 14_000  # ≈ 2 days of congestion
    november_2020_block: int = NOVEMBER_2020_ORACLE_BLOCK
    november_2020_dai_price: float = 1.30
    november_2020_duration_blocks: int = 7_000
    february_2021_block: int = FEBRUARY_2021_CRASH_BLOCK
    february_2021_drop: float = 0.28
    february_2021_congestion_blocks: int = 9_000
    makerdao_reconfig_block: int = MAKERDAO_RECONFIG_BLOCK


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything needed to build and run one scenario."""

    seed: int = 7
    start_block: int = STUDY_START_BLOCK
    end_block: int = STUDY_END_BLOCK
    start_timestamp: int = STUDY_START_TIMESTAMP
    blocks_per_step: int = 1_200
    feed_blocks_per_step: int = 150
    population: PopulationConfig = field(default_factory=PopulationConfig)
    incidents: IncidentConfig = field(default_factory=IncidentConfig)
    interest_accrual_every_steps: int = 20
    insurance_writeoff_every_steps: int = 50
    snapshot_every_steps: int = 30
    liquidator_gas_multiplier_mean: float = 1.35
    liquidator_gas_multiplier_sigma: float = 0.5
    liquidator_flash_loan_probability: float = 0.25
    background_fill_normal: float = 0.55
    background_fill_congested: float = 1.35

    @property
    def n_steps(self) -> int:
        """Number of simulation steps covering the block window."""
        return max((self.end_block - self.start_block) // self.blocks_per_step + 1, 1)

    def with_overrides(self, **kwargs) -> "ScenarioConfig":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)

    def describe(self) -> dict:
        """A small JSON-ready summary (campaign manifests embed this)."""
        return {
            "seed": self.seed,
            "start_block": self.start_block,
            "end_block": self.end_block,
            "blocks_per_step": self.blocks_per_step,
            "feed_blocks_per_step": self.feed_blocks_per_step,
            "n_steps": self.n_steps,
            "borrowers_per_platform": self.population.borrowers_per_platform,
            "dust_borrowers_per_platform": self.population.dust_borrowers_per_platform,
            "liquidators": self.population.liquidators,
            "keepers": self.population.keepers,
        }

    # ------------------------------------------------------------------ #
    # Presets
    # ------------------------------------------------------------------ #
    @classmethod
    def small(cls, seed: int = 7) -> "ScenarioConfig":
        """A fast, three-month scenario for tests and the quickstart example.

        The window is compressed around the March 2020 crash so that the run
        still contains liquidations, auctions and a congestion episode.
        """
        start = 9_700_000
        end = 10_250_000
        return cls(
            seed=seed,
            start_block=start,
            end_block=end,
            start_timestamp=STUDY_START_TIMESTAMP + (start - STUDY_START_BLOCK) * 13,
            blocks_per_step=800,
            population=PopulationConfig(
                borrowers_per_platform=35,
                dust_borrowers_per_platform=12,
                lenders_per_platform=2,
                liquidators=10,
                keepers=5,
            ),
        )

    @classmethod
    def paper(cls, seed: int = 7) -> "ScenarioConfig":
        """The full two-year study window used by the benchmark harness."""
        return cls(seed=seed)

    @classmethod
    def medium(cls, seed: int = 7) -> "ScenarioConfig":
        """A reduced-population two-year run: full window, lighter agent load."""
        return cls(
            seed=seed,
            blocks_per_step=2_400,
            population=PopulationConfig(
                borrowers_per_platform=60,
                dust_borrowers_per_platform=20,
                lenders_per_platform=3,
                liquidators=16,
                keepers=6,
            ),
        )
