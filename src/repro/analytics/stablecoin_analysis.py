"""Stablecoin stability measurement (Section 4.5.2).

The paper measures, block by block over one year, the pairwise price
differences among DAI, USDC and USDT as reported by Chainlink, and finds the
differences stay within 5 % for 99.97 % of blocks (maximum 11.1 %).  Here the
same measurement runs against the simulated oracle's posted history (falling
back to the market feed where no post exists).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

import numpy as np

from ..simulation.engine import SimulationResult

#: The stablecoins compared in Section 4.5.2.
DEFAULT_STABLECOINS = ("DAI", "USDC", "USDT")


@dataclass(frozen=True)
class StablecoinStabilityReport:
    """Aggregate stablecoin price-difference statistics."""

    symbols: tuple[str, ...]
    blocks_measured: int
    within_threshold_share: float
    threshold: float
    max_difference: float
    max_difference_pair: tuple[str, str]
    max_difference_block: int

    @property
    def is_strategy_stable(self) -> bool:
        """Whether the stablecoin-collateral/stablecoin-debt strategy held.

        The paper's criterion: differences within the threshold for the
        overwhelming majority of blocks.
        """
        return self.within_threshold_share > 0.99


def stablecoin_stability(
    result: SimulationResult,
    symbols: Sequence[str] = DEFAULT_STABLECOINS,
    threshold: float = 0.05,
    from_block: int | None = None,
    to_block: int | None = None,
    max_samples: int = 5_000,
) -> StablecoinStabilityReport:
    """Measure pairwise stablecoin price differences over a block range."""
    feed = result.engine.feed
    oracle = result.oracle
    start = from_block if from_block is not None else feed.start_block
    end = to_block if to_block is not None else result.final_block
    if end < start:
        start, end = end, start
    n_samples = min(max_samples, max((end - start) // feed.blocks_per_step + 1, 2))
    sample_blocks = np.linspace(start, end, n_samples).astype(int)
    symbols = tuple(symbol.upper() for symbol in symbols)
    within = 0
    max_difference = 0.0
    max_pair = (symbols[0], symbols[1]) if len(symbols) >= 2 else (symbols[0], symbols[0])
    max_block = int(sample_blocks[0])
    for block in sample_blocks:
        prices = {symbol: oracle.price_at(symbol, int(block)) for symbol in symbols}
        block_max = 0.0
        block_pair = max_pair
        for first, second in combinations(symbols, 2):
            low, high = sorted((prices[first], prices[second]))
            if low <= 0:
                continue
            difference = high / low - 1.0
            if difference > block_max:
                block_max = difference
                block_pair = (first, second)
        if block_max <= threshold:
            within += 1
        if block_max > max_difference:
            max_difference = block_max
            max_pair = block_pair
            max_block = int(block)
    return StablecoinStabilityReport(
        symbols=symbols,
        blocks_measured=len(sample_blocks),
        within_threshold_share=within / len(sample_blocks),
        threshold=threshold,
        max_difference=max_difference,
        max_difference_pair=max_pair,
        max_difference_block=max_block,
    )
