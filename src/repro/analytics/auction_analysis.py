"""MakerDAO auction analysis (Section 4.3.3, Figure 7).

Measures, over every finalized auction with at least one bid: the duration
(initiation → finalization, in hours), the tend/dent termination split, the
number of bids and bidders, the delay of the first bid and the intervals
between bids — plus the configured auction length / bid duration over time
(the step visible in Figure 7 after the March 2020 incident).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..chain.types import blocks_to_hours
from ..simulation.engine import SimulationResult


@dataclass(frozen=True)
class AuctionObservation:
    """One finalized auction, as measured from the ``Deal`` event."""

    auction_id: int
    block_number: int
    duration_hours: float
    n_bids: int
    n_tend_bids: int
    n_dent_bids: int
    n_bidders: int
    terminated_in_tend: bool
    first_bid_delay_minutes: float | None
    bid_interval_minutes: tuple[float, ...]
    had_winner: bool


@dataclass(frozen=True)
class AuctionConfigChange:
    """A configured-parameter change point (Figure 7's dashed lines)."""

    block_number: int
    auction_length_hours: float
    bid_duration_hours: float


@dataclass(frozen=True)
class AuctionReport:
    """Aggregate auction statistics (Section 4.3.3)."""

    observations: tuple[AuctionObservation, ...]
    config_changes: tuple[AuctionConfigChange, ...]

    @property
    def settled_auctions(self) -> int:
        """Number of finalized auctions that actually had a winner."""
        return sum(1 for observation in self.observations if observation.had_winner)

    @property
    def tend_terminations(self) -> int:
        """Auctions that never reached the dent phase."""
        return sum(1 for observation in self.observations if observation.had_winner and observation.terminated_in_tend)

    @property
    def dent_terminations(self) -> int:
        """Auctions that terminated in the dent phase."""
        return sum(
            1 for observation in self.observations if observation.had_winner and not observation.terminated_in_tend
        )

    def _winner_values(self, getter) -> list[float]:
        return [getter(observation) for observation in self.observations if observation.had_winner]

    @property
    def mean_bids_per_auction(self) -> float:
        """Average number of bids placed per settled auction (paper: 2.63)."""
        values = self._winner_values(lambda observation: observation.n_bids)
        return float(np.mean(values)) if values else 0.0

    @property
    def mean_bidders_per_auction(self) -> float:
        """Average number of distinct bidders per settled auction (paper: 1.99)."""
        values = self._winner_values(lambda observation: observation.n_bidders)
        return float(np.mean(values)) if values else 0.0

    @property
    def mean_duration_hours(self) -> float:
        """Average auction duration in hours (paper: 2.06 ± 6.43)."""
        values = self._winner_values(lambda observation: observation.duration_hours)
        return float(np.mean(values)) if values else 0.0

    @property
    def std_duration_hours(self) -> float:
        """Standard deviation of the auction duration in hours."""
        values = self._winner_values(lambda observation: observation.duration_hours)
        return float(np.std(values)) if values else 0.0

    @property
    def max_duration_hours(self) -> float:
        """The longest observed auction (paper: 346.67 hours)."""
        values = self._winner_values(lambda observation: observation.duration_hours)
        return float(np.max(values)) if values else 0.0

    @property
    def mean_first_bid_delay_minutes(self) -> float:
        """Average delay of the first bid after initiation (paper: 4.12 min)."""
        values = [
            observation.first_bid_delay_minutes
            for observation in self.observations
            if observation.had_winner and observation.first_bid_delay_minutes is not None
        ]
        return float(np.mean(values)) if values else 0.0

    @property
    def mean_bid_interval_minutes(self) -> float:
        """Average interval between consecutive bids (paper: 38.97 min)."""
        values = [
            interval
            for observation in self.observations
            if observation.had_winner
            for interval in observation.bid_interval_minutes
        ]
        return float(np.mean(values)) if values else 0.0

    @property
    def auctions_with_multiple_bids(self) -> int:
        """Auctions terminating with more than one bid placed (paper: 4,537)."""
        return sum(1 for observation in self.observations if observation.had_winner and observation.n_bids > 1)


def auction_report(result: SimulationResult) -> AuctionReport:
    """Build the Figure 7 / Section 4.3.3 dataset from ``Deal`` events."""
    chain = result.chain
    stride_minutes = chain.config.seconds_per_block / 60.0
    observations: list[AuctionObservation] = []
    for event in chain.events.by_name("Deal"):
        data = event.data
        first_delay = data.get("first_bid_delay_blocks")
        intervals = data.get("bid_interval_blocks") or []
        observations.append(
            AuctionObservation(
                auction_id=data.get("auction_id", -1),
                block_number=event.block_number,
                duration_hours=blocks_to_hours(data.get("duration_blocks", 0)),
                n_bids=data.get("n_bids", 0),
                n_tend_bids=data.get("n_tend_bids", 0),
                n_dent_bids=data.get("n_dent_bids", 0),
                n_bidders=data.get("n_bidders", 0),
                terminated_in_tend=bool(data.get("terminated_in_tend", True)),
                first_bid_delay_minutes=None if first_delay is None else first_delay * stride_minutes,
                bid_interval_minutes=tuple(interval * stride_minutes for interval in intervals),
                had_winner=bool(data.get("winner")),
            )
        )
    changes = [
        AuctionConfigChange(
            block_number=event.block_number,
            auction_length_hours=blocks_to_hours(event.data["auction_length_blocks"]),
            bid_duration_hours=blocks_to_hours(event.data["bid_duration_blocks"]),
        )
        for event in chain.events.by_name("AuctionParamsChanged")
    ]
    return AuctionReport(observations=tuple(observations), config_changes=tuple(changes))
