"""Liquidator profit & participation analysis (Section 4.3.1, Table 1).

Computes, per platform: the number of liquidations, the number of distinct
liquidator addresses and the liquidators' average profit — plus the overall
totals, the most active / most profitable liquidators and the count of
unprofitable (auction) liquidations the paper highlights.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable

from .common import PLATFORM_ORDER, pinned_sum
from .records import LiquidationRecord


@dataclass(frozen=True)
class PlatformProfitRow:
    """One row of Table 1."""

    platform: str
    liquidations: int
    liquidators: int
    total_profit_usd: float

    @property
    def average_profit_per_liquidator_usd(self) -> float:
        """Table 1's "Average Profit" column (profit per liquidator address)."""
        if self.liquidators == 0:
            return 0.0
        return self.total_profit_usd / self.liquidators


@dataclass(frozen=True)
class LiquidatorSummary:
    """Aggregate statistics of a single liquidator address."""

    address: str
    liquidations: int
    total_profit_usd: float


@dataclass(frozen=True)
class ProfitReport:
    """The full Section 4.3.1 profit analysis."""

    rows: tuple[PlatformProfitRow, ...]
    total_liquidations: int
    total_liquidators: int
    total_profit_usd: float
    total_collateral_liquidated_usd: float
    most_active: LiquidatorSummary | None
    most_profitable: LiquidatorSummary | None
    unprofitable_liquidations: int
    unprofitable_loss_usd: float

    def row(self, platform: str) -> PlatformProfitRow | None:
        """Look up a platform's row."""
        for row in self.rows:
            if row.platform == platform:
                return row
        return None

    @property
    def average_profit_per_liquidator_usd(self) -> float:
        """Overall average profit per liquidator address (Table 1's total row)."""
        if self.total_liquidators == 0:
            return 0.0
        return self.total_profit_usd / self.total_liquidators


def profit_report(records: Iterable[LiquidationRecord]) -> ProfitReport:
    """Build the Table 1 / Section 4.3.1 statistics from liquidation records."""
    records = list(records)
    by_platform: dict[str, list[LiquidationRecord]] = defaultdict(list)
    by_liquidator: dict[str, list[LiquidationRecord]] = defaultdict(list)
    for record in records:
        by_platform[record.platform].append(record)
        by_liquidator[record.liquidator].append(record)

    rows = []
    ordered = [platform for platform in PLATFORM_ORDER if platform in by_platform]
    ordered += [platform for platform in sorted(by_platform) if platform not in PLATFORM_ORDER]
    for platform in ordered:
        platform_records = by_platform[platform]
        liquidators = {record.liquidator for record in platform_records}
        rows.append(
            PlatformProfitRow(
                platform=platform,
                liquidations=len(platform_records),
                liquidators=len(liquidators),
                total_profit_usd=pinned_sum(record.profit_usd for record in platform_records),
            )
        )

    summaries = [
        LiquidatorSummary(
            address=address,
            liquidations=len(liquidator_records),
            total_profit_usd=pinned_sum(record.profit_usd for record in liquidator_records),
        )
        for address, liquidator_records in by_liquidator.items()
    ]
    most_active = max(summaries, key=lambda summary: summary.liquidations, default=None)
    most_profitable = max(summaries, key=lambda summary: summary.total_profit_usd, default=None)
    unprofitable = [record for record in records if record.profit_usd < 0]
    return ProfitReport(
        rows=tuple(rows),
        total_liquidations=len(records),
        total_liquidators=len(by_liquidator),
        total_profit_usd=pinned_sum(record.profit_usd for record in records),
        total_collateral_liquidated_usd=pinned_sum(record.collateral_usd for record in records),
        most_active=most_active,
        most_profitable=most_profitable,
        unprofitable_liquidations=len(unprofitable),
        unprofitable_loss_usd=pinned_sum(record.profit_usd for record in unprofitable),
    )
