"""Liquidation record extraction — the analytics pipeline's ground truth.

The paper "gather[s] data by crawling blockchain events … and reading
blockchain states" (Section 4.1).  :func:`extract_liquidations` performs the
same crawl against the simulated chain: it filters the liquidation event
signatures of the four protocols, normalises each into a
:class:`LiquidationRecord` valued at the oracle price of the settlement
block, and exposes the resulting list to every downstream analysis.

The per-event normalisers (:func:`fixed_spread_record`,
:func:`auction_record`, :func:`record_from_event`) are shared with the
streaming path: the engine's observer bus translates freshly mined chain
logs through the same functions, so the records a
:class:`~repro.observers.probes.LiquidationRecorder` streams during the run
are field-for-field identical to this post-hoc crawl (proven by test).
Both paths produce records in emission order — ``(block, log index)`` —
which the final stable sort by block number preserves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from ..chain.chain import Blockchain
from ..chain.events import EventLog
from ..oracle.chainlink import PriceOracle
from .common import FIXED_SPREAD_LIQUIDATION_EVENTS, month_of_block

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports observers)
    from ..simulation.engine import SimulationResult


@dataclass(frozen=True)
class LiquidationRecord:
    """One normalised liquidation event.

    ``profit_usd`` follows the paper's definition: the liquidator's bonus
    assuming the purchased collateral is sold immediately at the settlement
    block's oracle price.  For auctions, it is the difference between the
    collateral won and the debt repaid (and can be negative — the paper's
    641 unprofitable MakerDAO liquidations).
    """

    platform: str
    mechanism: str
    block_number: int
    month: str
    liquidator: str
    borrower: str
    debt_symbol: str
    collateral_symbol: str
    repaid_usd: float
    collateral_usd: float
    profit_usd: float
    used_flash_loan: bool = False
    auction_id: int | None = None

    @property
    def is_profitable(self) -> bool:
        """Whether the liquidation yielded a non-negative bonus."""
        return self.profit_usd >= 0.0


def fixed_spread_record(chain: Blockchain, event: EventLog) -> LiquidationRecord:
    """Normalise one fixed-spread liquidation event log."""
    data = event.data
    return LiquidationRecord(
        platform=data["platform"],
        mechanism="fixed-spread",
        block_number=event.block_number,
        month=month_of_block(chain, event.block_number),
        liquidator=data["liquidator"],
        borrower=data["borrower"],
        debt_symbol=data["debt_symbol"],
        collateral_symbol=data["collateral_symbol"],
        repaid_usd=data["repay_usd"],
        collateral_usd=data["collateral_usd"],
        profit_usd=data["profit_usd"],
        used_flash_loan=bool(data.get("used_flash_loan", False)),
    )


def auction_record(chain: Blockchain, oracle: PriceOracle, event: EventLog) -> LiquidationRecord | None:
    """Normalise one MakerDAO ``Deal`` event log.

    The valuation reads the oracle *at the settlement block*; because posted
    price history is append-only with increasing block numbers, the result is
    the same whether the event is normalised as it settles (streaming) or
    after the run (post-hoc crawl).
    """
    data = event.data
    if not data.get("winner"):
        # Auctions that expired without a single bid return the collateral to
        # the vault; the paper does not count them as liquidations.
        return None
    collateral_symbol = data["collateral_symbol"]
    collateral_price = oracle.price_at(collateral_symbol, event.block_number)
    dai_price = oracle.price_at("DAI", event.block_number)
    collateral_usd = data["collateral_won"] * collateral_price
    repaid_usd = data["debt_repaid"] * dai_price
    return LiquidationRecord(
        platform=data["platform"],
        mechanism="auction",
        block_number=event.block_number,
        month=month_of_block(chain, event.block_number),
        liquidator=data["winner"],
        borrower=data["borrower"],
        debt_symbol="DAI",
        collateral_symbol=collateral_symbol,
        repaid_usd=repaid_usd,
        collateral_usd=collateral_usd,
        profit_usd=collateral_usd - repaid_usd,
        auction_id=data.get("auction_id"),
    )


def record_from_event(
    chain: Blockchain, oracle: PriceOracle, event: EventLog
) -> LiquidationRecord | None:
    """Normalise any chain log into a liquidation record, if it is one.

    Returns ``None`` for non-liquidation signatures and for winnerless
    auction deals.  This is the single normalisation point shared by the
    post-hoc crawl and the engine's streaming translation.
    """
    if event.name in FIXED_SPREAD_LIQUIDATION_EVENTS:
        return fixed_spread_record(chain, event)
    if event.name == "Deal":
        return auction_record(chain, oracle, event)
    return None


def extract_liquidations(result: "SimulationResult") -> list[LiquidationRecord]:
    """Crawl the chain's event logs and normalise every settled liquidation.

    One pass in emission order — ``(block number, log index)`` — so the
    resulting list is exactly what a :class:`LiquidationRecorder` probe
    streamed during the run.
    """
    chain = result.chain
    oracle = result.oracle
    records: list[LiquidationRecord] = []
    for event in chain.events:
        record = record_from_event(chain, oracle, event)
        if record is not None:
            records.append(record)
    records.sort(key=lambda record: record.block_number)
    return records


def filter_market(
    records: Iterable[LiquidationRecord],
    debt_symbol: str = "DAI",
    collateral_symbol: str = "ETH",
) -> list[LiquidationRecord]:
    """Restrict records to one debt/collateral market (Figure 9, Table 8)."""
    debt_symbol = debt_symbol.upper()
    collateral_symbol = collateral_symbol.upper()
    return [
        record
        for record in records
        if record.debt_symbol == debt_symbol and record.collateral_symbol == collateral_symbol
    ]


def records_by_platform(records: Iterable[LiquidationRecord]) -> dict[str, list[LiquidationRecord]]:
    """Group records by platform name."""
    grouped: dict[str, list[LiquidationRecord]] = {}
    for record in records:
        grouped.setdefault(record.platform, []).append(record)
    return grouped
