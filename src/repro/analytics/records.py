"""Liquidation record extraction — the analytics pipeline's ground truth.

The paper "gather[s] data by crawling blockchain events … and reading
blockchain states" (Section 4.1).  :func:`extract_liquidations` performs the
same crawl against the simulated chain: it filters the liquidation event
signatures of the four protocols, normalises each into a
:class:`LiquidationRecord` valued at the oracle price of the settlement
block, and exposes the resulting list to every downstream analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..chain.chain import Blockchain
from ..chain.events import EventLog
from ..oracle.chainlink import PriceOracle
from ..simulation.engine import SimulationResult
from .common import FIXED_SPREAD_LIQUIDATION_EVENTS, month_of_block


@dataclass(frozen=True)
class LiquidationRecord:
    """One normalised liquidation event.

    ``profit_usd`` follows the paper's definition: the liquidator's bonus
    assuming the purchased collateral is sold immediately at the settlement
    block's oracle price.  For auctions, it is the difference between the
    collateral won and the debt repaid (and can be negative — the paper's
    641 unprofitable MakerDAO liquidations).
    """

    platform: str
    mechanism: str
    block_number: int
    month: str
    liquidator: str
    borrower: str
    debt_symbol: str
    collateral_symbol: str
    repaid_usd: float
    collateral_usd: float
    profit_usd: float
    used_flash_loan: bool = False
    auction_id: int | None = None

    @property
    def is_profitable(self) -> bool:
        """Whether the liquidation yielded a non-negative bonus."""
        return self.profit_usd >= 0.0


def _fixed_spread_record(chain: Blockchain, event: EventLog) -> LiquidationRecord:
    data = event.data
    return LiquidationRecord(
        platform=data["platform"],
        mechanism="fixed-spread",
        block_number=event.block_number,
        month=month_of_block(chain, event.block_number),
        liquidator=data["liquidator"],
        borrower=data["borrower"],
        debt_symbol=data["debt_symbol"],
        collateral_symbol=data["collateral_symbol"],
        repaid_usd=data["repay_usd"],
        collateral_usd=data["collateral_usd"],
        profit_usd=data["profit_usd"],
        used_flash_loan=bool(data.get("used_flash_loan", False)),
    )


def _auction_record(chain: Blockchain, oracle: PriceOracle, event: EventLog) -> LiquidationRecord | None:
    data = event.data
    if not data.get("winner"):
        # Auctions that expired without a single bid return the collateral to
        # the vault; the paper does not count them as liquidations.
        return None
    collateral_symbol = data["collateral_symbol"]
    collateral_price = oracle.price_at(collateral_symbol, event.block_number)
    dai_price = oracle.price_at("DAI", event.block_number)
    collateral_usd = data["collateral_won"] * collateral_price
    repaid_usd = data["debt_repaid"] * dai_price
    return LiquidationRecord(
        platform=data["platform"],
        mechanism="auction",
        block_number=event.block_number,
        month=month_of_block(chain, event.block_number),
        liquidator=data["winner"],
        borrower=data["borrower"],
        debt_symbol="DAI",
        collateral_symbol=collateral_symbol,
        repaid_usd=repaid_usd,
        collateral_usd=collateral_usd,
        profit_usd=collateral_usd - repaid_usd,
        auction_id=data.get("auction_id"),
    )


def extract_liquidations(result: SimulationResult) -> list[LiquidationRecord]:
    """Crawl the chain's event logs and normalise every settled liquidation."""
    chain = result.chain
    oracle = result.oracle
    records: list[LiquidationRecord] = []
    for name in FIXED_SPREAD_LIQUIDATION_EVENTS:
        for event in chain.events.by_name(name):
            records.append(_fixed_spread_record(chain, event))
    for event in chain.events.by_name("Deal"):
        record = _auction_record(chain, oracle, event)
        if record is not None:
            records.append(record)
    records.sort(key=lambda record: record.block_number)
    return records


def filter_market(
    records: Iterable[LiquidationRecord],
    debt_symbol: str = "DAI",
    collateral_symbol: str = "ETH",
) -> list[LiquidationRecord]:
    """Restrict records to one debt/collateral market (Figure 9, Table 8)."""
    debt_symbol = debt_symbol.upper()
    collateral_symbol = collateral_symbol.upper()
    return [
        record
        for record in records
        if record.debt_symbol == debt_symbol and record.collateral_symbol == collateral_symbol
    ]


def records_by_platform(records: Iterable[LiquidationRecord]) -> dict[str, list[LiquidationRecord]]:
    """Group records by platform name."""
    grouped: dict[str, list[LiquidationRecord]] = {}
    for record in records:
        grouped.setdefault(record.platform, []).append(record)
    return grouped
