"""Liquidation sensitivity measurement (Section 4.5.1, Figure 8).

Runs Algorithm 1 (:mod:`repro.core.sensitivity`) on each platform's snapshot
state: for every collateral currency the platform lists, sweep price declines
from 0 % to 100 % and record the collateral value that would become
liquidatable.  The paper finds every platform is most sensitive to ETH and
that Aave V2 — whose users favour multi-asset collateral — is flatter than
Compound despite similar TVL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.sensitivity import (
    SensitivityPoint,
    most_sensitive_symbol,
    sensitivity_curve,
    sensitivity_surface,
)
from ..protocols.base import LendingProtocol
from ..simulation.engine import SimulationResult

#: Platforms shown in Figure 8 (Aave V1 is excluded: its liquidity had
#: migrated to V2 by the snapshot block — footnote 6 of the paper).
DEFAULT_PLATFORMS = ("Aave V2", "Compound", "dYdX", "MakerDAO")


@dataclass(frozen=True)
class PlatformSensitivity:
    """One panel of Figure 8."""

    platform: str
    curves: dict[str, list[SensitivityPoint]]

    @property
    def most_sensitive_symbol(self) -> str | None:
        """The collateral currency whose decline liquidates the most value."""
        return most_sensitive_symbol(self.curves)

    def curve(self, symbol: str) -> list[SensitivityPoint]:
        """The sensitivity curve of one collateral currency."""
        return self.curves.get(symbol.upper(), [])

    def liquidatable_at(self, symbol: str, decline: float) -> float:
        """Interpolated liquidatable collateral at an arbitrary decline level."""
        curve = self.curve(symbol)
        if not curve:
            return 0.0
        declines = [point.decline for point in curve]
        values = [point.liquidatable_collateral_usd for point in curve]
        return float(np.interp(decline, declines, values))

    @property
    def max_liquidatable_usd(self) -> float:
        """The largest liquidatable value across all currencies and declines."""
        return max(
            (point.liquidatable_collateral_usd for curve in self.curves.values() for point in curve),
            default=0.0,
        )


def platform_sensitivity(
    protocol: LendingProtocol,
    declines: Sequence[float] | None = None,
    symbols: Sequence[str] | None = None,
) -> PlatformSensitivity:
    """Run Algorithm 1 over one platform's current state.

    With book aggregates on (the default), the per-currency sweeps only
    walk the positions that actually hold the declining collateral: the
    holder set is selected from the shared
    :class:`~repro.core.position_book.BookValuation`'s exact per-asset value
    column (the same ``amount × price`` products Algorithm 1's skip test
    computes), so the prefilter is bit-exact — the scalar inner loop then
    runs unchanged over the subset, producing an identical Figure 8.
    """
    if symbols is None:
        symbols = [
            symbol
            for symbol, market in protocol.markets.items()
            if market.collateral_enabled and market.liquidation_threshold > 0
        ]
    if declines is None:
        declines = np.linspace(0.0, 1.0, 21)
    if protocol.uses_book_aggregates():
        valuation = protocol.valuation()
        prices = valuation.prices
        thresholds = valuation.thresholds
        curves: dict[str, list] = {}
        for symbol in symbols:
            column = valuation.collateral_value_column(symbol.upper())
            if column is None:
                holders = []
            else:
                holders = valuation.positions(np.flatnonzero(valuation.has_debt & (column > 0.0)))
            curves[symbol.upper()] = sensitivity_curve(holders, symbol, prices, thresholds, declines)
        return PlatformSensitivity(platform=protocol.name, curves=curves)
    prices = protocol.prices()
    thresholds = protocol.liquidation_thresholds()
    positions = protocol.positions_with_debt()
    curves = sensitivity_surface(positions, symbols, prices, thresholds, declines)
    return PlatformSensitivity(platform=protocol.name, curves=curves)


def sensitivity_figure(
    result: SimulationResult,
    platforms: Sequence[str] = DEFAULT_PLATFORMS,
    declines: Sequence[float] | None = None,
) -> dict[str, PlatformSensitivity]:
    """Figure 8: sensitivity panels for the four studied platforms."""
    figure: dict[str, PlatformSensitivity] = {}
    for name in platforms:
        try:
            protocol = result.protocol(name)
        except KeyError:
            continue
        figure[name] = platform_sensitivity(protocol, declines)
    return figure
