"""Gas-price competition analysis (Section 4.3.2, Figure 6).

Figure 6 plots the gas price paid by every fixed spread liquidation
transaction against the 1-day (6000-block) moving average of the block-median
gas price, and reports that 73.97 % of liquidations pay an above-average fee.
The simulator's equivalent uses the mined blocks' median gas prices and the
receipts of transactions tagged :class:`~repro.chain.transaction.TxKind.LIQUIDATION`.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from ..chain.gas import moving_average
from .common import pinned_sum
from ..chain.transaction import TxKind, TxStatus
from ..chain.types import GWEI
from ..simulation.engine import SimulationResult


@dataclass(frozen=True)
class GasPoint:
    """One liquidation transaction's gas bid versus the market average."""

    block_number: int
    platform: str
    gas_price_gwei: float
    average_gas_price_gwei: float

    @property
    def above_average(self) -> bool:
        """Whether the liquidation outbid the moving-average market price."""
        return self.gas_price_gwei > self.average_gas_price_gwei


@dataclass(frozen=True)
class GasReport:
    """The Figure 6 dataset plus its headline statistic."""

    points: tuple[GasPoint, ...]
    average_blocks: tuple[int, ...]
    average_gas_price_gwei: tuple[float, ...]

    @property
    def share_above_average(self) -> float:
        """Fraction of liquidations paying an above-average gas price."""
        if not self.points:
            return 0.0
        return sum(1 for point in self.points if point.above_average) / len(self.points)

    @property
    def max_gas_price_gwei(self) -> float:
        """The largest liquidation gas bid observed (the congestion spikes)."""
        return max((point.gas_price_gwei for point in self.points), default=0.0)


def gas_report(result: SimulationResult, window_blocks: int = 6_000) -> GasReport:
    """Build the Figure 6 dataset from mined blocks and liquidation receipts."""
    blocks = result.chain.blocks
    if not blocks:
        return GasReport(points=(), average_blocks=(), average_gas_price_gwei=())
    block_numbers = [block.number for block in blocks]
    medians = [block.median_gas_price / GWEI for block in blocks]
    stride = max(result.chain.config.blocks_per_step, 1)
    window = max(window_blocks // stride, 1)
    averages = moving_average(medians, window)

    def average_at(block_number: int) -> float:
        index = bisect.bisect_right(block_numbers, block_number) - 1
        index = max(index, 0)
        return averages[index]

    points: list[GasPoint] = []
    for block in blocks:
        for receipt in block.receipts:
            if receipt.kind is not TxKind.LIQUIDATION:
                continue
            if receipt.status is not TxStatus.SUCCESS:
                continue
            points.append(
                GasPoint(
                    block_number=receipt.block_number,
                    platform=str(receipt.metadata.get("platform", "unknown")),
                    gas_price_gwei=receipt.gas_price_gwei,
                    average_gas_price_gwei=average_at(receipt.block_number),
                )
            )
    return GasReport(
        points=tuple(points),
        average_blocks=tuple(block_numbers),
        average_gas_price_gwei=tuple(averages),
    )


def liquidation_fee_statistics(result: SimulationResult) -> dict[str, float]:
    """Total and average ETH fees paid by successful liquidation transactions."""
    fees = [
        receipt.fee_eth
        for receipt in result.chain.receipts_by_hash.values()
        if receipt.kind is TxKind.LIQUIDATION and receipt.status is TxStatus.SUCCESS
    ]
    if not fees:
        return {"count": 0, "total_fee_eth": 0.0, "average_fee_eth": 0.0}
    total_fee_eth = pinned_sum(fees)
    return {
        "count": float(len(fees)),
        "total_fee_eth": total_fee_eth,
        "average_fee_eth": total_fee_eth / len(fees),
    }
