"""Time-series aggregations: Figures 4 and 5, Table 8.

* Figure 4 — accumulative collateral sold through liquidation, per platform,
  as a function of block height.
* Figure 5 — monthly accumulated liquidator profit per platform (with the
  March 2020 MakerDAO outlier and the November 2020 Compound outlier).
* Table 8 — number of monthly liquidations restricted to the DAI-debt /
  ETH-collateral market (the input of Figure 9's comparison).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Sequence

from .common import pinned_sum, sort_months
from .records import LiquidationRecord, filter_market


@dataclass(frozen=True)
class AccumulativeSeries:
    """A per-platform cumulative series over block heights (Figure 4)."""

    platform: str
    blocks: tuple[int, ...]
    cumulative_collateral_usd: tuple[float, ...]

    @property
    def final_value_usd(self) -> float:
        """The cumulative liquidated collateral at the end of the window."""
        return self.cumulative_collateral_usd[-1] if self.cumulative_collateral_usd else 0.0


def accumulative_collateral_series(records: Iterable[LiquidationRecord]) -> dict[str, AccumulativeSeries]:
    """Figure 4: cumulative liquidated collateral per platform."""
    by_platform: dict[str, list[LiquidationRecord]] = defaultdict(list)
    for record in records:
        by_platform[record.platform].append(record)
    series: dict[str, AccumulativeSeries] = {}
    for platform, platform_records in by_platform.items():
        platform_records.sort(key=lambda record: record.block_number)
        blocks: list[int] = []
        cumulative: list[float] = []
        running = 0.0
        for record in platform_records:
            running += record.collateral_usd
            blocks.append(record.block_number)
            cumulative.append(running)
        series[platform] = AccumulativeSeries(
            platform=platform,
            blocks=tuple(blocks),
            cumulative_collateral_usd=tuple(cumulative),
        )
    return series


def total_liquidated_collateral_usd(records: Iterable[LiquidationRecord]) -> float:
    """The paper's headline 807.46 M USD figure: total collateral sold."""
    return pinned_sum(record.collateral_usd for record in records)


def monthly_profit_by_platform(records: Iterable[LiquidationRecord]) -> dict[str, dict[str, float]]:
    """Figure 5: ``{platform: {"YYYY-MM": profit_usd}}``."""
    profits: dict[str, dict[str, float]] = defaultdict(lambda: defaultdict(float))
    for record in records:
        profits[record.platform][record.month] += record.profit_usd
    return {platform: dict(months) for platform, months in profits.items()}


def monthly_liquidation_counts(
    records: Iterable[LiquidationRecord],
    debt_symbol: str | None = None,
    collateral_symbol: str | None = None,
) -> dict[str, dict[str, int]]:
    """Monthly liquidation counts per platform, optionally market-restricted.

    With ``debt_symbol="DAI"`` and ``collateral_symbol="ETH"`` this is
    Table 8.
    """
    records = list(records)
    if debt_symbol is not None and collateral_symbol is not None:
        records = filter_market(records, debt_symbol, collateral_symbol)
    counts: dict[str, dict[str, int]] = defaultdict(lambda: defaultdict(int))
    for record in records:
        counts[record.platform][record.month] += 1
    return {platform: dict(months) for platform, months in counts.items()}


def peak_month(monthly: dict[str, float]) -> tuple[str, float] | None:
    """The month with the highest value in a ``{month: value}`` mapping."""
    if not monthly:
        return None
    month = max(monthly, key=monthly.get)
    return month, monthly[month]


def months_covered(records: Iterable[LiquidationRecord]) -> list[str]:
    """Chronologically sorted list of months with at least one liquidation."""
    return sort_months({record.month for record in records})


def monthly_table(
    counts: dict[str, dict[str, int]],
    platforms: Sequence[str] | None = None,
) -> list[dict[str, object]]:
    """Flatten monthly counts into Table 8-style rows (one dict per month)."""
    if platforms is None:
        platforms = sorted(counts)
    months = sort_months({month for platform_counts in counts.values() for month in platform_counts})
    rows: list[dict[str, object]] = []
    for month in months:
        row: dict[str, object] = {"month": month}
        for platform in platforms:
            row[platform] = counts.get(platform, {}).get(month, 0)
        rows.append(row)
    return rows
