"""Measurement pipeline: the reproduction of the paper's "custom client"."""

from .auction_analysis import AuctionConfigChange, AuctionObservation, AuctionReport, auction_report
from .bad_debt_analysis import DEFAULT_FEES_USD as BAD_DEBT_FEES_USD
from .bad_debt_analysis import PlatformBadDebt, bad_debt_table, platform_bad_debt
from .common import (
    FIXED_SPREAD_LIQUIDATION_EVENTS,
    PLATFORM_ORDER,
    month_of_block,
    month_of_timestamp,
    sort_months,
    usd,
)
from .flashloan_analysis import FlashLoanReport, FlashLoanUsageRow, flash_loan_report
from .gas_analysis import GasPoint, GasReport, gas_report, liquidation_fee_statistics
from .monthly import (
    AccumulativeSeries,
    accumulative_collateral_series,
    monthly_liquidation_counts,
    monthly_profit_by_platform,
    monthly_table,
    months_covered,
    peak_month,
    total_liquidated_collateral_usd,
)
from .price_movement import (
    MovementObservation,
    PriceMovement,
    PriceMovementReport,
    classify_path,
    price_movement_report,
)
from .profit_volume import ProfitVolumeReport, monthly_collateral_volume, profit_volume_report
from .profits import LiquidatorSummary, PlatformProfitRow, ProfitReport, profit_report
from .records import (
    LiquidationRecord,
    auction_record,
    extract_liquidations,
    filter_market,
    fixed_spread_record,
    record_from_event,
    records_by_platform,
)
from .reporting import format_section, format_table
from .sensitivity_analysis import PlatformSensitivity, platform_sensitivity, sensitivity_figure
from .stablecoin_analysis import StablecoinStabilityReport, stablecoin_stability
from .unprofitable_analysis import UnprofitableCell, platform_unprofitable, unprofitable_table

__all__ = [
    "AccumulativeSeries",
    "AuctionConfigChange",
    "AuctionObservation",
    "AuctionReport",
    "BAD_DEBT_FEES_USD",
    "FIXED_SPREAD_LIQUIDATION_EVENTS",
    "FlashLoanReport",
    "FlashLoanUsageRow",
    "GasPoint",
    "GasReport",
    "LiquidationRecord",
    "LiquidatorSummary",
    "MovementObservation",
    "PLATFORM_ORDER",
    "PlatformBadDebt",
    "PlatformProfitRow",
    "PlatformSensitivity",
    "PriceMovement",
    "PriceMovementReport",
    "ProfitReport",
    "ProfitVolumeReport",
    "StablecoinStabilityReport",
    "UnprofitableCell",
    "accumulative_collateral_series",
    "auction_record",
    "auction_report",
    "bad_debt_table",
    "classify_path",
    "extract_liquidations",
    "filter_market",
    "fixed_spread_record",
    "flash_loan_report",
    "format_section",
    "format_table",
    "gas_report",
    "liquidation_fee_statistics",
    "month_of_block",
    "month_of_timestamp",
    "monthly_collateral_volume",
    "monthly_liquidation_counts",
    "monthly_profit_by_platform",
    "monthly_table",
    "months_covered",
    "peak_month",
    "platform_bad_debt",
    "platform_sensitivity",
    "platform_unprofitable",
    "price_movement_report",
    "profit_report",
    "profit_volume_report",
    "record_from_event",
    "records_by_platform",
    "sensitivity_figure",
    "sort_months",
    "stablecoin_stability",
    "total_liquidated_collateral_usd",
    "unprofitable_table",
    "usd",
]
