"""Unprofitable liquidation opportunities (Section 4.4.3, Table 3).

For each fixed spread platform snapshot, counts the liquidatable positions
whose best attainable fixed-spread bonus cannot cover an assumed transaction
fee (10 or 100 USD).  Unlike :mod:`repro.core.unprofitable`, which takes one
parameter set, this layer asks the protocol for the parameters of each
position's best collateral market, because Aave's spread differs per market.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.unprofitable import best_liquidation_profit
from ..protocols.fixed_spread_protocol import FixedSpreadProtocol
from ..simulation.engine import SimulationResult

#: The transaction fees (USD) evaluated by Table 3.
DEFAULT_FEES_USD = (10.0, 100.0)


@dataclass(frozen=True)
class UnprofitableCell:
    """One (platform, fee) cell of Table 3."""

    platform: str
    transaction_fee_usd: float
    liquidatable_positions: int
    unprofitable_count: int
    unprofitable_collateral_usd: float

    @property
    def unprofitable_share(self) -> float:
        """Fraction of liquidatable positions that are unprofitable to close."""
        if self.liquidatable_positions == 0:
            return 0.0
        return self.unprofitable_count / self.liquidatable_positions


def platform_unprofitable(
    protocol: FixedSpreadProtocol,
    transaction_fee_usd: float,
) -> UnprofitableCell:
    """Evaluate unprofitable opportunities on one platform snapshot.

    With book aggregates on (the default), the candidate set comes from the
    block's shared :class:`~repro.core.position_book.BookValuation` margin
    prefilter instead of a full position walk; every flagged row is still
    confirmed with the scalar health factor, so the cell is bit-identical
    to the legacy sweep.
    """
    if protocol.uses_book_aggregates():
        valuation = protocol.valuation()
        prices = valuation.prices
        thresholds = valuation.thresholds
        candidates = valuation.positions(valuation.candidate_rows())
    else:
        prices = protocol.prices()
        thresholds = protocol.liquidation_thresholds()
        candidates = protocol.positions_with_debt()
    liquidatable = 0
    unprofitable = 0
    unprofitable_collateral = 0.0
    for position in candidates:
        if not position.is_liquidatable(prices, thresholds):
            continue
        collateral_values = position.collateral_values(prices)
        if not collateral_values:
            continue
        liquidatable += 1
        collateral_symbol = max(collateral_values, key=collateral_values.get)
        params = protocol.params_for(collateral_symbol)
        profit = best_liquidation_profit(position, params, prices)
        if profit <= transaction_fee_usd:
            unprofitable += 1
            unprofitable_collateral += position.total_collateral_usd(prices)
    return UnprofitableCell(
        platform=protocol.name,
        transaction_fee_usd=transaction_fee_usd,
        liquidatable_positions=liquidatable,
        unprofitable_count=unprofitable,
        unprofitable_collateral_usd=unprofitable_collateral,
    )


def unprofitable_table(
    result: SimulationResult,
    platforms: Sequence[str] = ("Aave V2", "Compound", "dYdX"),
    fees_usd: Sequence[float] = DEFAULT_FEES_USD,
) -> dict[str, dict[float, UnprofitableCell]]:
    """Table 3: unprofitable liquidation opportunities per platform and fee."""
    table: dict[str, dict[float, UnprofitableCell]] = {}
    for name in platforms:
        try:
            protocol = result.protocol(name)
        except KeyError:
            continue
        if not isinstance(protocol, FixedSpreadProtocol):
            continue
        table[name] = {fee: platform_unprofitable(protocol, fee) for fee in fees_usd}
    return table
