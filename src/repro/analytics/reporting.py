"""Plain-text table rendering used by the experiment harnesses.

Every experiment can print the rows/series it reproduces in a shape that is
easy to eyeball against the paper's tables; these helpers keep the formatting
consistent without pulling in any plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a fixed-width text table."""
    rows = [[_to_text(cell) for cell in row] for row in rows]
    headers = [str(header) for header in headers]
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(widths[index]) for index, header in enumerate(headers)),
        "  ".join("-" * widths[index] for index in range(len(headers))),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    return "\n".join(lines)


def _to_text(cell: object) -> str:
    if isinstance(cell, float):
        magnitude = abs(cell)
        if magnitude != 0 and (magnitude >= 1e6 or magnitude < 1e-3):
            return f"{cell:.3e}"
        return f"{cell:,.2f}"
    return str(cell)


def format_section(title: str, body: str) -> str:
    """Render a titled section (used when an experiment prints several tables)."""
    underline = "=" * len(title)
    return f"{title}\n{underline}\n{body}\n"
