"""Post-liquidation collateral price movements (Appendix A, Table 7).

For each liquidation, the paper records the block-by-block oracle price of
the collateral (relative to the debt currency) for 1,440 blocks (≈ 6 hours)
after settlement and classifies the movement into seven patterns; auction
liquidators are exposed to a loss only when the price stays below the
liquidation price (≈ 19 % of liquidations).
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..chain.types import POST_LIQUIDATION_WINDOW
from ..simulation.engine import SimulationResult
from .records import LiquidationRecord


class PriceMovement(enum.Enum):
    """The seven post-liquidation movement patterns of Table 7."""

    HORIZONTAL = "Horizontal"
    RISE = "Rise"
    FALL = "Fall"
    RISE_FALL = "Rise-Fall"
    FALL_RISE = "Fall-Rise"
    RISE_FLUCTUATION = "Rise-Fluctuation"
    FALL_FLUCTUATION = "Fall-Fluctuation"


@dataclass(frozen=True)
class MovementObservation:
    """One liquidation's post-settlement price path classification."""

    record: LiquidationRecord
    movement: PriceMovement
    max_rise: float
    max_fall: float


@dataclass(frozen=True)
class PriceMovementReport:
    """Table 7: counts and rise/fall magnitudes per movement pattern."""

    observations: tuple[MovementObservation, ...]

    def counts(self) -> dict[PriceMovement, int]:
        """Number of liquidations per movement pattern."""
        result: dict[PriceMovement, int] = defaultdict(int)
        for observation in self.observations:
            result[observation.movement] += 1
        return dict(result)

    def mean_max_rise(self, movement: PriceMovement) -> float:
        """Average maximum rise above the liquidation price for a pattern."""
        values = [obs.max_rise for obs in self.observations if obs.movement is movement]
        return float(np.mean(values)) if values else 0.0

    def mean_max_fall(self, movement: PriceMovement) -> float:
        """Average maximum fall below the liquidation price for a pattern."""
        values = [obs.max_fall for obs in self.observations if obs.movement is movement]
        return float(np.mean(values)) if values else 0.0

    @property
    def share_below_at_window_end(self) -> float:
        """Fraction of liquidations whose price ends the window below par.

        The paper reports 19.07 % — the upper bound on auctions that would
        have booked a loss had they been run instead of a fixed spread sale.
        """
        if not self.observations:
            return 0.0
        below = sum(
            1
            for observation in self.observations
            if observation.movement in (PriceMovement.FALL, PriceMovement.RISE_FALL)
        )
        return below / len(self.observations)


def classify_path(relative_prices: np.ndarray, tolerance: float = 1e-6) -> tuple[PriceMovement, float, float]:
    """Classify a post-liquidation relative price path.

    ``relative_prices`` is the collateral/debt price path divided by its value
    at the liquidation block, so 1.0 is the liquidation price.  Returns the
    pattern plus the maximum rise and fall relative to the liquidation price.
    """
    if len(relative_prices) == 0:
        return PriceMovement.HORIZONTAL, 0.0, 0.0
    deviations = relative_prices - 1.0
    max_rise = float(max(deviations.max(), 0.0))
    max_fall = float(max(-deviations.min(), 0.0))
    above = deviations > tolerance
    below = deviations < -tolerance
    if not above.any() and not below.any():
        return PriceMovement.HORIZONTAL, max_rise, max_fall
    # Build the sequence of sign changes (ignoring the flat segments).
    signs: list[int] = []
    for deviation in deviations:
        if deviation > tolerance:
            sign = 1
        elif deviation < -tolerance:
            sign = -1
        else:
            continue
        if not signs or signs[-1] != sign:
            signs.append(sign)
    if len(signs) == 1:
        return (PriceMovement.RISE if signs[0] > 0 else PriceMovement.FALL), max_rise, max_fall
    if len(signs) == 2:
        return (PriceMovement.RISE_FALL if signs[0] > 0 else PriceMovement.FALL_RISE), max_rise, max_fall
    return (
        PriceMovement.RISE_FLUCTUATION if signs[0] > 0 else PriceMovement.FALL_FLUCTUATION
    ), max_rise, max_fall


def price_movement_report(
    result: SimulationResult,
    records: Iterable[LiquidationRecord],
    window_blocks: int = POST_LIQUIDATION_WINDOW,
) -> PriceMovementReport:
    """Classify every liquidation's post-settlement collateral price path."""
    feed = result.engine.feed
    observations: list[MovementObservation] = []
    for record in records:
        if not feed.has(record.collateral_symbol) or not feed.has(record.debt_symbol):
            continue
        start_block = record.block_number
        end_block = min(start_block + window_blocks, feed.end_block)
        collateral = feed.window(record.collateral_symbol, start_block, end_block)
        debt = feed.window(record.debt_symbol, start_block, end_block)
        if len(collateral) == 0 or len(debt) == 0:
            continue
        relative = collateral / np.maximum(debt, 1e-12)
        if relative[0] <= 0:
            continue
        relative = relative / relative[0]
        movement, max_rise, max_fall = classify_path(relative[1:])
        observations.append(
            MovementObservation(record=record, movement=movement, max_rise=max_rise, max_fall=max_fall)
        )
    return PriceMovementReport(observations=tuple(observations))
