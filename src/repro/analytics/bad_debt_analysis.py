"""Bad debt measurement across platforms (Section 4.4.2, Table 2).

Applies the Type I / Type II classification of :mod:`repro.core.bad_debt` to
each platform's open positions at the snapshot block, for the paper's two
assumed closing costs (10 USD and 100 USD).  dYdX's insurance fund writes off
under-collateralized positions, which is why its Type I column stays empty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.bad_debt import BadDebtReport, bad_debt_report, bad_debt_report_from_values
from ..protocols.base import LendingProtocol
from ..simulation.engine import SimulationResult

#: The closing costs (USD) evaluated by Table 2 for Type II bad debt.
DEFAULT_FEES_USD = (10.0, 100.0)


@dataclass(frozen=True)
class PlatformBadDebt:
    """Table 2's row for one platform: Type I plus Type II per fee level."""

    platform: str
    type_i_count: int
    type_i_collateral_usd: float
    type_ii_by_fee: dict[float, BadDebtReport]
    total_positions: int

    @property
    def type_i_share(self) -> float:
        """Fraction of open positions that are Type I bad debt."""
        if self.total_positions == 0:
            return 0.0
        return self.type_i_count / self.total_positions

    def locked_liquidity_usd(self, fee_usd: float) -> float:
        """Collateral locked in bad debt of either type at the given fee."""
        report = self.type_ii_by_fee.get(fee_usd)
        type_ii = report.type_ii_collateral_usd if report else 0.0
        return self.type_i_collateral_usd + type_ii


def platform_bad_debt(
    protocol: LendingProtocol,
    fees_usd: Sequence[float] = DEFAULT_FEES_USD,
) -> PlatformBadDebt:
    """Classify one protocol's open positions at its current prices.

    With book aggregates on (the default), the per-position values come
    from the block's shared :class:`~repro.core.position_book.BookValuation`
    — one vectorized pass valued once and reused across the fee levels,
    instead of one full position walk per fee.  The pinned per-row values
    are bit-identical to the scalar formulas, so both paths produce the
    same Table 2.
    """
    if protocol.uses_book_aggregates():
        valuation = protocol.valuation()
        rows = np.flatnonzero(valuation.has_debt).tolist()
        valued = [valuation.pinned_row_values(row) for row in rows]
        by_fee = {fee: bad_debt_report_from_values(valued, fee) for fee in fees_usd}
        reference = by_fee[fees_usd[0]] if fees_usd else bad_debt_report_from_values(valued, 0.0)
        return PlatformBadDebt(
            platform=protocol.name,
            type_i_count=reference.type_i_count,
            type_i_collateral_usd=reference.type_i_collateral_usd,
            type_ii_by_fee=by_fee,
            total_positions=reference.total_positions,
        )
    prices = protocol.prices()
    positions = protocol.positions_with_debt()
    by_fee: dict[float, BadDebtReport] = {}
    for fee in fees_usd:
        by_fee[fee] = bad_debt_report(positions, prices, fee)
    reference = by_fee[fees_usd[0]] if fees_usd else bad_debt_report(positions, prices, 0.0)
    return PlatformBadDebt(
        platform=protocol.name,
        type_i_count=reference.type_i_count,
        type_i_collateral_usd=reference.type_i_collateral_usd,
        type_ii_by_fee=by_fee,
        total_positions=reference.total_positions,
    )


def bad_debt_table(
    result: SimulationResult,
    platforms: Sequence[str] = ("Aave V2", "Compound", "dYdX"),
    fees_usd: Sequence[float] = DEFAULT_FEES_USD,
) -> dict[str, PlatformBadDebt]:
    """Table 2: the bad-debt snapshot for the fixed spread platforms."""
    table: dict[str, PlatformBadDebt] = {}
    for name in platforms:
        try:
            protocol = result.protocol(name)
        except KeyError:
            continue
        table[name] = platform_bad_debt(protocol, fees_usd)
    return table
