"""Flash-loan usage in liquidations (Section 4.4.4, Table 4).

Filters the ``FlashLoan`` events whose purpose is a liquidation and groups
them by (liquidation platform, flash-loan platform), reporting the count and
the accumulative amount borrowed — the structure of Table 4, which shows dYdX
flash loans dominating thanks to their negligible fee.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from ..simulation.engine import SimulationResult
from .common import pinned_sum


@dataclass(frozen=True)
class FlashLoanUsageRow:
    """One (liquidation platform, flash-loan platform) row of Table 4."""

    liquidation_platform: str
    flash_loan_platform: str
    flash_loans: int
    accumulative_amount_usd: float


@dataclass(frozen=True)
class FlashLoanReport:
    """The full Table 4 dataset."""

    rows: tuple[FlashLoanUsageRow, ...]

    @property
    def total_flash_loans(self) -> int:
        """Total number of liquidation flash loans (paper: 623)."""
        return sum(row.flash_loans for row in self.rows)

    @property
    def total_amount_usd(self) -> float:
        """Total amount borrowed through liquidation flash loans (paper: 483.83 M USD)."""
        return pinned_sum(row.accumulative_amount_usd for row in self.rows)

    def by_flash_platform(self) -> dict[str, float]:
        """Accumulative borrowed amount per flash-loan venue."""
        totals: dict[str, float] = defaultdict(float)
        for row in self.rows:
            totals[row.flash_loan_platform] += row.accumulative_amount_usd
        return dict(totals)


def flash_loan_report(result: SimulationResult) -> FlashLoanReport:
    """Build Table 4 from the chain's ``FlashLoan`` events."""
    oracle = result.oracle
    counts: dict[tuple[str, str], int] = defaultdict(int)
    amounts: dict[tuple[str, str], float] = defaultdict(float)
    for event in result.chain.events.by_name("FlashLoan"):
        purpose = str(event.data.get("purpose", ""))
        if not purpose.startswith("liquidation"):
            continue
        _, _, liquidation_platform = purpose.partition(":")
        liquidation_platform = liquidation_platform or "unknown"
        flash_platform = str(event.data.get("platform", "unknown"))
        key = (liquidation_platform, flash_platform)
        price = oracle.price_at(event.data["token"], event.block_number)
        counts[key] += 1
        amounts[key] += event.data["amount"] * price
    rows = [
        FlashLoanUsageRow(
            liquidation_platform=liquidation_platform,
            flash_loan_platform=flash_platform,
            flash_loans=counts[(liquidation_platform, flash_platform)],
            accumulative_amount_usd=amounts[(liquidation_platform, flash_platform)],
        )
        for liquidation_platform, flash_platform in sorted(counts)
    ]
    return FlashLoanReport(rows=tuple(rows))
