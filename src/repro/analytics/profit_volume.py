"""Profit-volume comparison of liquidation mechanisms (Section 5.1, Figure 9).

The monthly profit-volume ratio divides the month's accumulated liquidation
profit by the month's average collateral volume, restricted to the DAI-debt /
ETH-collateral market so that asset-mix differences do not bias the
comparison.  Collateral volume comes from the chain's archive snapshots (the
paper reads the equivalent state from its archive node).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from ..core.comparison import (
    ProfitVolumePoint,
    average_ratio_by_platform,
    median_ratio_by_platform,
    monthly_profit_volume_ratios,
    rank_platforms,
)
from ..simulation.engine import SimulationResult
from .common import month_of_block
from .monthly import monthly_profit_by_platform
from .records import LiquidationRecord, filter_market


@dataclass(frozen=True)
class ProfitVolumeReport:
    """Figure 9's dataset plus its per-platform summary."""

    points: tuple[ProfitVolumePoint, ...]
    average_ratios: dict[str, float]
    median_ratios: dict[str, float]
    ranking: tuple[str, ...]

    def platform_points(self, platform: str) -> list[ProfitVolumePoint]:
        """The monthly series of one platform."""
        return [point for point in self.points if point.platform == platform]


def monthly_collateral_volume(
    result: SimulationResult,
    debt_symbol: str = "DAI",
    collateral_symbol: str = "ETH",
) -> dict[str, dict[str, float]]:
    """Average monthly collateral volume per platform for one market.

    For every archive snapshot, sums the ``collateral_symbol`` collateral of
    positions owing ``debt_symbol``, then averages the snapshots that fall in
    the same month: ``{platform: {"YYYY-MM": average_usd}}``.
    """
    debt_symbol = debt_symbol.upper()
    collateral_symbol = collateral_symbol.upper()
    chain = result.chain
    sums: dict[str, dict[str, float]] = defaultdict(lambda: defaultdict(float))
    counts: dict[str, dict[str, int]] = defaultdict(lambda: defaultdict(int))
    for block_number in chain.snapshot_blocks:
        snapshot = chain.snapshot_at(block_number)
        month = month_of_block(chain, block_number)
        for platform, platform_snapshot in snapshot.items():
            positions = platform_snapshot.get("positions", [])
            prices = platform_snapshot.get("prices", {})
            volume = 0.0
            for position in positions:
                if debt_symbol not in position.get("debt", {}):
                    continue
                collateral_amount = position.get("collateral", {}).get(collateral_symbol, 0.0)
                volume += collateral_amount * prices.get(collateral_symbol, 0.0)
            sums[platform][month] += volume
            counts[platform][month] += 1
    averages: dict[str, dict[str, float]] = {}
    for platform, months in sums.items():
        averages[platform] = {
            month: months[month] / counts[platform][month] for month in months if counts[platform][month]
        }
    return averages


def profit_volume_report(
    result: SimulationResult,
    records: list[LiquidationRecord],
    debt_symbol: str = "DAI",
    collateral_symbol: str = "ETH",
) -> ProfitVolumeReport:
    """Figure 9: monthly profit-volume ratios of the DAI/ETH market."""
    market_records = filter_market(records, debt_symbol, collateral_symbol)
    profits = monthly_profit_by_platform(market_records)
    volumes = monthly_collateral_volume(result, debt_symbol, collateral_symbol)
    points = monthly_profit_volume_ratios(profits, volumes)
    averages = average_ratio_by_platform(points)
    medians = median_ratio_by_platform(points)
    ranking = tuple(rank_platforms(points))
    return ProfitVolumeReport(
        points=tuple(points),
        average_ratios=averages,
        median_ratios=medians,
        ranking=ranking,
    )
