"""Shared helpers for the analytics ("custom client") layer."""

from __future__ import annotations

from datetime import datetime, timezone
from typing import Iterable

#: The four fixed-spread liquidation event signatures plus MakerDAO's Deal.
FIXED_SPREAD_LIQUIDATION_EVENTS = ("LiquidationCall", "LiquidateBorrow", "LogLiquidate")

#: Platform display names in the order the paper's tables use.
PLATFORM_ORDER = ("Aave V1", "Aave V2", "Compound", "dYdX", "MakerDAO")


def month_of_timestamp(timestamp: int) -> str:
    """Format a unix timestamp as the ``YYYY-MM`` strings used by Figures 5/9."""
    return datetime.fromtimestamp(timestamp, tz=timezone.utc).strftime("%Y-%m")


def month_of_block(chain, block_number: int) -> str:
    """The ``YYYY-MM`` month in which ``block_number`` falls."""
    return month_of_timestamp(chain.timestamp_of_block(block_number))


def sort_months(months) -> list[str]:
    """Sort ``YYYY-MM`` strings chronologically."""
    return sorted(months)


def pinned_sum(values: Iterable[float]) -> float:
    """Left-to-right float summation with a pinned 0.0 start.

    Float addition is not associative, so *how* a total is reduced is part
    of every seed-pinned report's bit-identity contract.  This helper pins
    the order to an explicit left-to-right walk over the iterable — the
    same order the scalar reference implementations use — so refactors
    cannot silently re-associate a total (``np.sum`` reduces pairwise,
    ``math.fsum`` re-associates exactly; both produce different last ulps).
    SUM002 routes all float value sums in analytics/ and experiments/ here.
    """
    total = 0.0
    for value in values:
        total += value
    return total


def usd(value: float) -> str:
    """Compact USD formatting used by the table renderers."""
    magnitude = abs(value)
    if magnitude >= 1e9:
        return f"{value / 1e9:.2f}B USD"
    if magnitude >= 1e6:
        return f"{value / 1e6:.2f}M USD"
    if magnitude >= 1e3:
        return f"{value / 1e3:.2f}K USD"
    return f"{value:.2f} USD"
