"""Shared helpers for the analytics ("custom client") layer."""

from __future__ import annotations

from datetime import datetime, timezone

#: The four fixed-spread liquidation event signatures plus MakerDAO's Deal.
FIXED_SPREAD_LIQUIDATION_EVENTS = ("LiquidationCall", "LiquidateBorrow", "LogLiquidate")

#: Platform display names in the order the paper's tables use.
PLATFORM_ORDER = ("Aave V1", "Aave V2", "Compound", "dYdX", "MakerDAO")


def month_of_timestamp(timestamp: int) -> str:
    """Format a unix timestamp as the ``YYYY-MM`` strings used by Figures 5/9."""
    return datetime.fromtimestamp(timestamp, tz=timezone.utc).strftime("%Y-%m")


def month_of_block(chain, block_number: int) -> str:
    """The ``YYYY-MM`` month in which ``block_number`` falls."""
    return month_of_timestamp(chain.timestamp_of_block(block_number))


def sort_months(months) -> list[str]:
    """Sort ``YYYY-MM`` strings chronologically."""
    return sorted(months)


def usd(value: float) -> str:
    """Compact USD formatting used by the table renderers."""
    magnitude = abs(value)
    if magnitude >= 1e9:
        return f"{value / 1e9:.2f}B USD"
    if magnitude >= 1e6:
        return f"{value / 1e6:.2f}M USD"
    if magnitude >= 1e3:
        return f"{value / 1e3:.2f}K USD"
    return f"{value:.2f} USD"
