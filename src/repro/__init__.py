"""repro — a reproduction of "An Empirical Study of DeFi Liquidations" (IMC 2021).

The package is organised in layers:

* :mod:`repro.core` — the paper's financial model: health factors, fixed
  spread and auction liquidation mechanics, the optimal liquidation strategy,
  sensitivity (Algorithm 1), bad debt, and the mechanism comparison metric.
* Substrates — :mod:`repro.chain`, :mod:`repro.tokens`, :mod:`repro.oracle`,
  :mod:`repro.amm`, :mod:`repro.flashloan`: the Ethereum-like environment the
  paper measures, rebuilt as a deterministic simulator.
* :mod:`repro.protocols` — Aave V1/V2, Compound, dYdX and MakerDAO.
* :mod:`repro.agents` and :mod:`repro.simulation` — the agent population and
  the block-stride engine.
* :mod:`repro.scenarios` — the composable scenario API: the fluent
  :class:`~repro.scenarios.ScenarioBuilder`, first-class incidents, and the
  named scenario registry behind the ``python -m repro`` CLI.
* :mod:`repro.observers` — the streaming observer API: typed
  :class:`~repro.observers.events.SimEvent` s published by the engine's
  bus, consumed live by probes (liquidation recording, health-factor
  watching, per-step metrics, JSONL sinks).
* :mod:`repro.analytics` — the measurement pipeline (the paper's "custom
  client").
* :mod:`repro.experiments` — one harness per table and figure of the paper.

Quickstart::

    from repro import scenarios
    from repro.analytics import profit_report

    result = scenarios.get("small").run(seed=7)
    print(profit_report(result.records))

or, without writing any code::

    python -m repro run --scenario march-2020-only --report table1
    python -m repro watch march-2020-only --hf-below 1.1
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
