"""The named scenario registry.

Scenarios are registered by name with :func:`register_scenario` and looked
up with :func:`get`; each definition is a factory ``seed -> ScenarioBuilder``
so callers can re-seed a scenario without re-declaring it::

    @register_scenario("flash-crash", description="one brutal crash")
    def _flash_crash(seed=None):
        return ScenarioBuilder(ScenarioConfig.small(seed or 7)).with_incidents(
            PriceCrash(name="flash-crash", block=9_900_000, drop=0.5)
        )

    engine = scenarios.get("flash-crash").build(seed=3)

The ``python -m repro`` CLI drives the registry directly; the built-in
library (:mod:`repro.scenarios.library`) registers the paper presets plus a
set of stress scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..simulation.engine import SimulationEngine, SimulationResult
from .builder import ScenarioBuilder

#: Factory signature: an optional seed to a ready-to-customise builder.
ScenarioFactory = Callable[[int | None], ScenarioBuilder]


class UnknownScenarioError(KeyError):
    """Raised when a scenario name is not in the registry."""

    def __init__(self, name: str, known: tuple[str, ...]) -> None:
        super().__init__(f"unknown scenario {name!r}; known scenarios: {', '.join(known) or '(none)'}")
        self.name = name
        self.known = known


@dataclass(frozen=True)
class ScenarioDefinition:
    """A named, documented scenario factory."""

    name: str
    description: str
    factory: ScenarioFactory
    tags: tuple[str, ...] = field(default_factory=tuple)

    def builder(self, seed: int | None = None) -> ScenarioBuilder:
        """Instantiate the scenario's builder (customise before building)."""
        return self.factory(seed)

    def build(self, seed: int | None = None) -> SimulationEngine:
        """Build a ready-to-run engine for this scenario."""
        return self.builder(seed).build()

    def run(self, seed: int | None = None) -> SimulationResult:
        """Build and run this scenario end-to-end."""
        return self.builder(seed).run()


_REGISTRY: dict[str, ScenarioDefinition] = {}


def register_scenario(
    name: str,
    *,
    description: str = "",
    tags: tuple[str, ...] = (),
) -> Callable[[ScenarioFactory], ScenarioFactory]:
    """Decorator registering ``factory`` under ``name``.

    The factory keeps working as a plain function; registering the same name
    twice is an error (use :func:`unregister` first to replace one).
    """

    def decorator(factory: ScenarioFactory) -> ScenarioFactory:
        if name in _REGISTRY:
            raise ValueError(f"scenario {name!r} is already registered")
        summary = description or (factory.__doc__ or "").strip().split("\n")[0]
        _REGISTRY[name] = ScenarioDefinition(name=name, description=summary, factory=factory, tags=tuple(tags))
        return factory

    return decorator


def unregister(name: str) -> None:
    """Remove a scenario from the registry (no-op if absent)."""
    _REGISTRY.pop(name, None)


def get(name: str) -> ScenarioDefinition:
    """Look up a scenario by name, raising :class:`UnknownScenarioError`."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownScenarioError(name, names()) from None


def names() -> tuple[str, ...]:
    """Registered scenario names, sorted."""
    return tuple(sorted(_REGISTRY))


def all_scenarios() -> dict[str, ScenarioDefinition]:
    """A snapshot of the full registry."""
    return dict(_REGISTRY)
