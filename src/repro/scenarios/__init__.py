"""Composable scenario construction.

This package layers the scenario API the rest of the codebase builds on:

* :mod:`repro.scenarios.builder` — the fluent :class:`ScenarioBuilder` with
  independently overridable component factories (feed, chain, oracles,
  protocols, flash loans, AMM, agents);
* :mod:`repro.scenarios.incidents` — first-class :class:`Incident` objects
  (:class:`PriceCrash`, :class:`OracleOverride`, :class:`CongestionEpisode`,
  :class:`AuctionReconfig`) that scenarios declare as data;
* :mod:`repro.scenarios.registry` — the named scenario registry
  (:func:`register_scenario`, :func:`get`, :func:`names`);
* :mod:`repro.scenarios.library` — the built-in scenarios, from the paper
  presets to stress worlds like ``stablecoin-depeg`` and ``oracle-attack``.

Quickstart::

    from repro import scenarios

    result = scenarios.get("march-2020-only").run(seed=7)

The legacy ``repro.simulation.scenarios`` entry points (``build_scenario``,
``run_scenario``, ``build_price_feed``) are thin shims over this package.
"""

from .builder import (
    ASSET_DYNAMICS,
    DEFAULT_PROTOCOL_NAMES,
    STABLECOIN_SYMBOLS,
    BuildContext,
    ScenarioBuilder,
    default_population,
    default_price_feed,
)
from .incidents import (
    AuctionReconfig,
    CongestionEpisode,
    FeedGrid,
    Incident,
    OracleOverride,
    PriceCrash,
    default_incidents,
    post_incident_auction_config,
    pre_incident_auction_config,
)
from .registry import (
    ScenarioDefinition,
    UnknownScenarioError,
    all_scenarios,
    get,
    names,
    register_scenario,
    unregister,
)
from . import library  # noqa: F401  (imported for its registration side effects)

__all__ = [
    "ASSET_DYNAMICS",
    "AuctionReconfig",
    "BuildContext",
    "CongestionEpisode",
    "DEFAULT_PROTOCOL_NAMES",
    "FeedGrid",
    "Incident",
    "OracleOverride",
    "PriceCrash",
    "STABLECOIN_SYMBOLS",
    "ScenarioBuilder",
    "ScenarioDefinition",
    "UnknownScenarioError",
    "all_scenarios",
    "default_incidents",
    "default_population",
    "default_price_feed",
    "get",
    "names",
    "post_incident_auction_config",
    "pre_incident_auction_config",
    "register_scenario",
    "unregister",
]
