"""First-class scenario incidents.

The paper's results hinge on a handful of historical *incidents* — the
13 March 2020 crash, the November 2020 Compound oracle irregularity, the
February 2021 drawdown, MakerDAO's auction re-parameterisation.  Instead of
hardcoding these as closures inside the scenario builder, each incident is a
small declarative object that knows how to

* contribute :class:`~repro.oracle.paths.Shock` s to the synthetic price feed
  (:meth:`Incident.price_shocks`), and
* register one-shot events on the engine (:meth:`Incident.schedule`).

Scenario definitions then declare incident *lists as data*, and the
:class:`~repro.scenarios.builder.ScenarioBuilder` threads them through feed
generation and event scheduling.  :func:`default_incidents` reproduces the
paper's calibrated incident set from a :class:`ScenarioConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.auction import AuctionConfig
from ..oracle.paths import Shock
from ..simulation.config import ScenarioConfig
from ..simulation.engine import SimulationEngine


@dataclass(frozen=True)
class FeedGrid:
    """The step grid on which the price feed is generated."""

    start_block: int
    blocks_per_step: int
    n_steps: int

    def step_for_block(self, block: int) -> int:
        """Map a block height onto the feed's step grid."""
        return max((block - self.start_block) // self.blocks_per_step, 0)


def pre_incident_auction_config(blocks_per_step: int) -> AuctionConfig:
    """MakerDAO's pre-March-2020 auction parameters, scaled to the stride.

    The paper-era values (6-hour auction length, ≈ 10-minute bid duration)
    are kept whenever the stride can resolve them; coarser strides stretch
    them so that auctions still span multiple simulation steps.
    """
    return AuctionConfig(
        auction_length_blocks=max(1_660, 3 * blocks_per_step),
        bid_duration_blocks=max(140, int(0.9 * blocks_per_step)),
    )


def post_incident_auction_config(blocks_per_step: int) -> AuctionConfig:
    """MakerDAO's post-March-2020 auction parameters (longer bid duration)."""
    return AuctionConfig(
        auction_length_blocks=max(1_660, 5 * blocks_per_step),
        bid_duration_blocks=max(1_660, 2 * blocks_per_step),
    )


class Incident:
    """Base class for declarative scenario incidents.

    An incident may shape the *market* (via :meth:`price_shocks`, consumed
    while the price feed is generated) and/or the *world* (via
    :meth:`schedule`, which registers one-shot engine events).  Both hooks
    default to no-ops so concrete incidents override only what they need.
    """

    name: str = "incident"

    def price_shocks(self, grid: FeedGrid) -> dict[str | None, Shock]:
        """Shocks this incident contributes to the feed.

        Keys are asset symbols; the special key ``None`` targets every
        non-stablecoin asset in the scenario's universe.
        """
        return {}

    def schedule(self, engine: SimulationEngine) -> None:
        """Register this incident's one-shot events on ``engine``."""


@dataclass(frozen=True)
class PriceCrash(Incident):
    """A market-wide (or per-asset) price crash, optionally with congestion.

    ``drop`` is the fractional drop (0.43 ⇒ −43 %); a negative drop models a
    spike (−0.1 ⇒ +10 %), which is how stablecoin premia are expressed.  When
    ``symbols`` is ``None`` the shock hits every non-stablecoin asset,
    mirroring the correlated drawdowns of March 2020 / February 2021.  A
    non-zero ``congestion_blocks`` additionally schedules a congestion
    episode starting at the crash block — the paper's crashes always came
    with congested blocks that crowded out keeper bids.
    """

    name: str = "price-crash"
    block: int = 0
    drop: float = 0.3
    duration_steps: int = 1
    recovery: float = 0.0
    recovery_steps: int | None = None
    recovery_divisor: int = 25
    congestion_blocks: int = 0
    symbols: tuple[str, ...] | None = None

    def price_shocks(self, grid: FeedGrid) -> dict[str | None, Shock]:
        step = grid.step_for_block(self.block)
        if step >= grid.n_steps:
            return {}
        recovery_steps = self.recovery_steps
        if recovery_steps is None:
            recovery_steps = max(grid.n_steps // self.recovery_divisor, 5)
        shock = Shock(
            step=step,
            magnitude=1.0 - self.drop,
            duration=self.duration_steps,
            recovery=self.recovery,
            recovery_steps=recovery_steps,
        )
        targets: tuple[str | None, ...] = self.symbols if self.symbols is not None else (None,)
        return {target: shock for target in targets}

    def schedule(self, engine: SimulationEngine) -> None:
        if self.congestion_blocks <= 0:
            return
        CongestionEpisode(
            name=self.name, block=self.block, congestion_blocks=self.congestion_blocks
        ).schedule(engine)


@dataclass(frozen=True)
class CongestionEpisode(Incident):
    """A standalone network-congestion episode (no price move)."""

    name: str = "congestion"
    block: int = 0
    congestion_blocks: int = 7_000

    def schedule(self, engine: SimulationEngine) -> None:
        congestion_blocks = self.congestion_blocks

        def action(eng: SimulationEngine) -> None:
            steps = max(congestion_blocks // eng.config.blocks_per_step, 1)
            eng.chain.gas_market.trigger_congestion(steps)

        engine.schedule(self.block, self.name, action)


@dataclass(frozen=True)
class OracleOverride(Incident):
    """A stuck or manipulated oracle reporting a wrong price for a while.

    ``oracle`` names the entry in the engine's ``protocol_oracles`` map
    (``"Compound"`` for the November 2020 incident, ``"chainlink"`` for an
    attack on the shared oracle).  With ``relative=True`` the override is a
    multiplier on the market price at the moment the incident fires, which is
    how attacks on volatile assets are expressed; otherwise ``price`` is an
    absolute USD value.
    """

    name: str = "oracle-override"
    block: int = 0
    symbol: str = "DAI"
    price: float = 1.3
    duration_blocks: int = 7_000
    oracle: str = "Compound"
    relative: bool = False
    recovery_name: str | None = None

    def schedule(self, engine: SimulationEngine) -> None:
        def apply(eng: SimulationEngine) -> None:
            oracle = eng.protocol_oracles.get(self.oracle)
            if oracle is None:
                return
            posted = self.price
            if self.relative:
                posted = eng.feed.price(self.symbol, eng.chain.current_block) * self.price
            oracle.set_override(self.symbol, posted)

        def clear(eng: SimulationEngine) -> None:
            oracle = eng.protocol_oracles.get(self.oracle)
            if oracle is not None:
                oracle.clear_override(self.symbol)

        engine.schedule(self.block, self.name, apply)
        if self.duration_blocks > 0:
            recovery_name = self.recovery_name or f"{self.name}-recovery"
            engine.schedule(self.block + self.duration_blocks, recovery_name, clear)


@dataclass(frozen=True)
class AuctionReconfig(Incident):
    """A MakerDAO governance change of the auction parameters.

    Without explicit block values the stride-scaled post-March-2020
    parameters (longer bid duration) are applied, reproducing the step in
    Figure 7's configured lines.
    """

    name: str = "makerdao-auction-reconfiguration"
    block: int = 0
    auction_length_blocks: int | None = None
    bid_duration_blocks: int | None = None

    def schedule(self, engine: SimulationEngine) -> None:
        def action(eng: SimulationEngine) -> None:
            makerdao = eng.makerdao
            if makerdao is None:
                return
            base = post_incident_auction_config(eng.config.blocks_per_step)
            auction_length = (
                base.auction_length_blocks if self.auction_length_blocks is None else self.auction_length_blocks
            )
            bid_duration = (
                base.bid_duration_blocks if self.bid_duration_blocks is None else self.bid_duration_blocks
            )
            makerdao.reconfigure_auctions(
                AuctionConfig(auction_length_blocks=auction_length, bid_duration_blocks=bid_duration)
            )

        engine.schedule(self.block, self.name, action)


def default_incidents(config: ScenarioConfig) -> tuple[Incident, ...]:
    """The paper's calibrated incident set, derived from ``config.incidents``.

    Reproduces exactly what the legacy ``build_scenario`` pipeline hardcoded:
    the March 2020 crash-plus-congestion, the February 2021 drawdown, the
    November 2020 Compound DAI oracle irregularity, and MakerDAO's subsequent
    auction reconfiguration.
    """
    incidents = config.incidents
    return (
        PriceCrash(
            name="march-2020-crash",
            block=incidents.march_2020_block,
            drop=incidents.march_2020_eth_drop,
            duration_steps=1,
            recovery=0.65,
            recovery_divisor=25,
            congestion_blocks=incidents.march_2020_congestion_blocks,
        ),
        PriceCrash(
            name="february-2021-crash",
            block=incidents.february_2021_block,
            drop=incidents.february_2021_drop,
            duration_steps=2,
            recovery=0.5,
            recovery_divisor=40,
            congestion_blocks=incidents.february_2021_congestion_blocks,
        ),
        OracleOverride(
            name="compound-dai-oracle-irregularity",
            recovery_name="compound-dai-oracle-recovery",
            block=incidents.november_2020_block,
            symbol="DAI",
            price=incidents.november_2020_dai_price,
            duration_blocks=incidents.november_2020_duration_blocks,
            oracle="Compound",
        ),
        AuctionReconfig(
            name="makerdao-auction-reconfiguration",
            block=incidents.makerdao_reconfig_block,
        ),
    )
