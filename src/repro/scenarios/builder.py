"""The composable scenario builder.

:class:`ScenarioBuilder` decomposes the former monolithic ``build_scenario``
pipeline into independently overridable component factories::

    engine = (
        ScenarioBuilder(ScenarioConfig.small())
        .with_assets({"ETH": (1.4, 0.7)})
        .with_incidents(PriceCrash(name="flash-crash", block=9_900_000, drop=0.5))
        .with_population(borrowers_per_platform=60)
        .build()
    )
    result = engine.run()

Every stage — price feed, gas market, chain, oracles, protocols, flash
loans, AMM, agent population — is a factory taking a :class:`BuildContext`
(which accumulates the components built so far), so a scenario can swap any
one layer without forking the rest.  The default factories reproduce the
paper's calibrated world bit-for-bit: ``build_scenario(config)`` is now a
thin shim over ``ScenarioBuilder(config).build()`` and a seed-pinned
equivalence test holds the two paths together.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

import numpy as np

from ..agents.arbitrageur import ArbitrageurAgent
from ..agents.base import spawn_rngs
from ..agents.borrower import BorrowerAgent, BorrowerProfile
from ..agents.keeper import AuctionKeeperAgent, KeeperProfile
from ..agents.lender import LenderAgent
from ..agents.liquidator import LiquidatorAgent, LiquidatorProfile
from ..amm.pool import ConstantProductPool
from ..amm.router import AmmRouter
from ..chain.chain import Blockchain, ChainConfig
from ..chain.gas import GasMarket, GasMarketConfig
from ..chain.types import make_address
from ..flashloan.pool import FlashLoanPool, FlashLoanProvider
from ..oracle.chainlink import OracleConfig, PriceOracle
from ..oracle.feed import PriceFeed
from ..oracle.paths import AssetPathConfig, build_series
from ..protocols.aave import make_aave_v1, make_aave_v2
from ..protocols.base import LendingProtocol
from ..protocols.compound import make_compound
from ..protocols.dydx import make_dydx
from ..protocols.makerdao import make_makerdao
from ..simulation.config import PopulationConfig, ScenarioConfig
from ..simulation.engine import SimulationEngine, SimulationResult
from ..simulation.market import MarketMaker
from ..tokens.registry import TokenRegistry, default_registry, inception_prices
from .incidents import FeedGrid, Incident, default_incidents, pre_incident_auction_config

#: Annualised (drift, volatility) of the non-stable assets in the default
#: scenario, loosely calibrated to the 2019-2021 bull market punctuated by
#: crashes.
ASSET_DYNAMICS: dict[str, tuple[float, float]] = {
    "ETH": (1.15, 0.85),
    "WBTC": (0.95, 0.75),
    "LINK": (1.3, 1.1),
    "UNI": (1.1, 1.2),
    "COMP": (0.6, 1.1),
    "MKR": (0.8, 1.0),
    "AAVE": (1.2, 1.2),
    "YFI": (0.9, 1.3),
    "SNX": (1.0, 1.2),
    "KNC": (0.7, 1.1),
    "MANA": (1.2, 1.3),
    "REP": (0.2, 1.0),
    "ENJ": (1.1, 1.3),
    "REN": (0.9, 1.3),
    "CRV": (0.4, 1.3),
    "BAL": (0.5, 1.2),
    "BAT": (0.5, 1.0),
    "ZRX": (0.5, 1.0),
    "TUSD": (0.0, 0.0),
}

#: Stablecoins of the default scenario: mean-reverting paths around 1 USD.
STABLECOIN_SYMBOLS: tuple[str, ...] = ("DAI", "USDC", "USDT", "TUSD")

#: Display names of the five protocols the default factory instantiates.
DEFAULT_PROTOCOL_NAMES: tuple[str, ...] = ("Aave V1", "Aave V2", "Compound", "dYdX", "MakerDAO")


@dataclass
class BuildContext:
    """Accumulates the components built so far; passed to every factory."""

    builder: "ScenarioBuilder"
    config: ScenarioConfig
    rng: np.random.Generator
    registry: TokenRegistry | None = None
    feed: PriceFeed | None = None
    gas_market: GasMarket | None = None
    chain: Blockchain | None = None
    oracle: PriceOracle | None = None
    protocol_oracles: dict[str, PriceOracle] | None = None
    protocols: list[LendingProtocol] | None = None
    flash_loans: FlashLoanProvider | None = None
    amm: AmmRouter | None = None
    market_maker: MarketMaker | None = None


# --------------------------------------------------------------------- #
# Default component factories
# --------------------------------------------------------------------- #
def default_token_registry(ctx: BuildContext) -> TokenRegistry:
    """The default asset universe of the paper."""
    return default_registry()


def default_price_feed(ctx: BuildContext) -> PriceFeed:
    """Generate the synthetic market price history for the scenario window.

    The feed is generated on a finer block grid than the engine stride
    (``feed_blocks_per_step``) so that block-level measurements — the
    post-liquidation price windows of Appendix A, the stablecoin differences
    of Section 4.5.2 — have sub-stride resolution.  Incidents contribute
    their price shocks here (see :meth:`Incident.price_shocks`).
    """
    builder, config = ctx.builder, ctx.config
    n_steps = (config.end_block - config.start_block) // config.feed_blocks_per_step + 3
    steps_per_year = max(int(365 * 24 * 3600 / (13 * config.feed_blocks_per_step)), 1)
    grid = FeedGrid(
        start_block=config.start_block,
        blocks_per_step=config.feed_blocks_per_step,
        n_steps=n_steps,
    )
    prices = inception_prices()
    stablecoins = builder.stablecoin_symbols
    configs: dict[str, AssetPathConfig] = {}
    for symbol, (drift, volatility) in builder.asset_dynamics.items():
        configs[symbol] = AssetPathConfig(
            initial_price=prices.get(symbol, 1.0),
            annual_drift=drift,
            annual_volatility=volatility,
            shocks=[],
        )
    for symbol in stablecoins:
        configs[symbol] = AssetPathConfig(
            initial_price=1.0,
            is_stablecoin=True,
            peg_volatility=0.0015,
            peg_reversion=0.08,
        )
    risky = [symbol for symbol in builder.asset_dynamics if symbol not in stablecoins]
    for incident in builder.incidents:
        for target, shock in incident.price_shocks(grid).items():
            if target is None:
                for symbol in risky:
                    configs[symbol].shocks.append(shock)
            elif target in configs:
                configs[target].shocks.append(shock)
            else:
                raise ValueError(
                    f"incident {incident.name!r} targets unknown asset {target!r}; "
                    f"known assets: {', '.join(sorted(configs))}"
                )
    series = build_series(configs, n_steps, seed=config.seed, steps_per_year=steps_per_year)
    return PriceFeed(
        start_block=config.start_block,
        blocks_per_step=config.feed_blocks_per_step,
        series=series,
    )


def default_gas_market(ctx: BuildContext) -> GasMarket:
    """EIP-1559-free gas market with its own seeded stream."""
    return GasMarket(
        config=GasMarketConfig(initial_gwei=8.0),
        rng=np.random.default_rng(ctx.config.seed + 11),
    )


def default_chain(ctx: BuildContext) -> Blockchain:
    """The block-stride chain over the configured window."""
    config = ctx.config
    return Blockchain(
        config=ChainConfig(
            inception_block=config.start_block,
            inception_timestamp=config.start_timestamp,
            blocks_per_step=config.blocks_per_step,
        ),
        gas_market=ctx.gas_market,
    )


def default_oracles(ctx: BuildContext) -> tuple[PriceOracle, dict[str, PriceOracle]]:
    """The shared Chainlink-style oracle plus Compound's own oracle."""
    oracle = PriceOracle(ctx.chain, ctx.feed, OracleConfig(name="chainlink"))
    compound_oracle = PriceOracle(ctx.chain, ctx.feed, OracleConfig(name="compound-open-oracle"))
    oracle.update_from_feed()
    compound_oracle.update_from_feed()
    return oracle, {"Compound": compound_oracle, "chainlink": oracle}


def default_protocols(ctx: BuildContext) -> list[LendingProtocol]:
    """Instantiate the studied protocols with their paper parameters.

    Honours ``builder.protocol_names`` so scenarios can restrict the world
    to a subset of the five platforms.
    """
    chain, registry, config = ctx.chain, ctx.registry, ctx.config
    oracle = ctx.oracle
    compound_oracle = (ctx.protocol_oracles or {}).get("Compound", oracle)
    factories: dict[str, Callable[[], LendingProtocol]] = {
        "Aave V1": lambda: make_aave_v1(chain, oracle, registry),
        "Aave V2": lambda: make_aave_v2(chain, oracle, registry),
        "Compound": lambda: make_compound(chain, compound_oracle, registry),
        "dYdX": lambda: make_dydx(chain, oracle, registry),
        "MakerDAO": lambda: make_makerdao(chain, oracle, registry),
    }
    protocols: list[LendingProtocol] = []
    for name in ctx.builder.protocol_names:
        if name not in factories:
            raise KeyError(f"unknown protocol {name!r}; choose from {sorted(factories)}")
        protocol = factories[name]()
        if name == "MakerDAO":
            protocol.reconfigure_auctions(pre_incident_auction_config(config.blocks_per_step))
        protocols.append(protocol)
    return protocols


def default_flash_loans(ctx: BuildContext) -> FlashLoanProvider:
    """Flash-loan pools on Aave V1/V2 and dYdX (Table 4's venues)."""
    chain, registry = ctx.chain, ctx.registry
    provider = FlashLoanProvider()
    funder = make_address("flash-loan-lp")
    pools = [
        ("dYdX", "DAI", 0.0, 400_000_000.0),
        ("dYdX", "USDC", 0.0, 400_000_000.0),
        ("dYdX", "ETH", 0.0, 800_000.0),
        ("Aave V1", "DAI", 0.0009, 120_000_000.0),
        ("Aave V1", "USDC", 0.0009, 120_000_000.0),
        ("Aave V2", "DAI", 0.0009, 200_000_000.0),
        ("Aave V2", "USDC", 0.0009, 200_000_000.0),
        ("Aave V2", "ETH", 0.0009, 300_000.0),
    ]
    for platform, symbol, fee, amount in pools:
        token = registry.ensure(symbol)
        pool = FlashLoanPool(platform=platform, token=token, fee_rate=fee, chain=chain)
        token.mint(funder, amount)
        pool.fund(funder, amount)
        provider.register(pool)
    return provider


def default_amm(ctx: BuildContext) -> AmmRouter:
    """Constant-product pools for the main collateral/debt pairs."""
    chain, registry, feed = ctx.chain, ctx.registry, ctx.feed
    start_block = ctx.config.start_block
    router = AmmRouter()
    lp = make_address("amm-lp")
    pairs = [("ETH", "DAI", 60_000_000.0), ("ETH", "USDC", 60_000_000.0), ("WBTC", "DAI", 30_000_000.0)]
    for symbol_a, symbol_b, usd_depth in pairs:
        token_a = registry.ensure(symbol_a)
        token_b = registry.ensure(symbol_b)
        price_a = feed.price(symbol_a, start_block)
        price_b = feed.price(symbol_b, start_block)
        amount_a = usd_depth / 2.0 / price_a
        amount_b = usd_depth / 2.0 / price_b
        token_a.mint(lp, amount_a)
        token_b.mint(lp, amount_b)
        pool = ConstantProductPool(token_a=token_a, token_b=token_b, chain=chain)
        pool.add_liquidity(lp, amount_a, amount_b)
        router.register(pool)
    return router


def default_market_maker(ctx: BuildContext) -> MarketMaker:
    """The OTC market maker agents trade against."""
    return MarketMaker(oracle=ctx.oracle, registry=ctx.registry)


def _borrower_profiles(
    config: ScenarioConfig,
    protocol: LendingProtocol,
    rng: np.random.Generator,
) -> list[BorrowerProfile]:
    """Sample the borrower population for one protocol."""
    population = config.population
    profiles: list[BorrowerProfile] = []
    is_aave_v2 = protocol.name == "Aave V2"
    is_makerdao = protocol.name == "MakerDAO"
    is_dydx = protocol.name == "dYdX"
    multi_fraction = (
        population.multi_collateral_fraction_aave_v2 if is_aave_v2 else population.multi_collateral_fraction_other
    )
    collateral_universe = [
        symbol
        for symbol, market in protocol.markets.items()
        if market.collateral_enabled and symbol not in ("DAI", "USDC", "USDT", "TUSD")
    ]
    stable_universe = [
        symbol for symbol, market in protocol.markets.items() if market.collateral_enabled and symbol in ("USDC", "USDT", "TUSD")
    ]
    total_steps = config.n_steps
    inception_step = max((protocol.inception_block - config.start_block) // config.blocks_per_step, 0)

    def entry_step() -> int:
        span = max(total_steps - inception_step - 2, 1)
        return inception_step + int(rng.beta(1.2, 1.6) * span)

    for index in range(population.borrowers_per_platform):
        short_position = rng.random() < population.short_borrower_fraction and stable_universe and not is_makerdao
        attentive = rng.random() > population.inattentive_fraction
        size = float(rng.lognormal(np.log(60_000), 1.4))
        if short_position:
            collateral = (str(rng.choice(stable_universe)),)
            debt_symbol = "ETH"
        else:
            main = "ETH" if rng.random() < 0.6 or not collateral_universe else str(rng.choice(collateral_universe))
            if rng.random() < multi_fraction and len(collateral_universe) >= 2:
                extras = [str(symbol) for symbol in rng.choice(collateral_universe, size=2, replace=False)]
                collateral = tuple(dict.fromkeys([main, *extras]))
            else:
                collateral = (main,)
            if is_makerdao:
                debt_symbol = "DAI"
            elif is_dydx:
                debt_symbol = str(rng.choice(["DAI", "USDC"]))
            else:
                debt_symbol = str(rng.choice(["DAI", "USDC", "USDT"])) if "USDT" in protocol.markets else str(
                    rng.choice(["DAI", "USDC"])
                )
        profiles.append(
            BorrowerProfile(
                collateral_symbols=collateral,
                debt_symbol=debt_symbol,
                collateral_usd=size,
                target_health_factor=float(rng.uniform(1.03, 1.6)),
                attentive=attentive,
                topup_trigger=float(rng.uniform(1.03, 1.12)),
                entry_step=entry_step(),
            )
        )
    for index in range(population.dust_borrowers_per_platform):
        # Dust positions whose excess collateral cannot cover a closing fee:
        # the source of Table 2's Type II bad debt.
        profiles.append(
            BorrowerProfile(
                collateral_symbols=("ETH",) if not is_makerdao else ("ETH",),
                debt_symbol="DAI" if is_makerdao or rng.random() < 0.5 else "USDC",
                collateral_usd=float(rng.uniform(20.0, 600.0)),
                target_health_factor=float(rng.uniform(1.05, 1.4)),
                attentive=False,
                entry_step=entry_step(),
            )
        )
    return profiles


def default_population(ctx: BuildContext, engine: SimulationEngine) -> None:
    """Create lenders, borrowers, liquidators, keepers and the arbitrageur."""
    config = ctx.config
    rng = ctx.rng
    population = config.population
    agent_rngs = iter(spawn_rngs(config.seed + 1, 50_000))

    # Lenders seed pool liquidity so borrowers have something to borrow.
    for protocol in engine.fixed_spread_protocols():
        for index in range(population.lenders_per_platform):
            supplies = {"DAI": 150_000_000.0, "USDC": 150_000_000.0, "ETH": 80_000_000.0}
            supplies = {symbol: usd for symbol, usd in supplies.items() if symbol in protocol.markets}
            engine.add_agent(
                LenderAgent(f"lender-{protocol.name}-{index}", next(agent_rngs), protocol, supplies)
            )

    # Borrowers.
    for protocol in engine.protocols:
        profiles = _borrower_profiles(config, protocol, rng)
        for index, profile in enumerate(profiles):
            engine.add_agent(
                BorrowerAgent(f"borrower-{protocol.name}-{index}", next(agent_rngs), protocol, profile)
            )

    # Fixed spread liquidation bots.
    for index in range(population.liquidators):
        profile = LiquidatorProfile(
            detection_probability=float(rng.uniform(0.15, 0.5)),
            gas_multiplier_mean=config.liquidator_gas_multiplier_mean * float(rng.uniform(0.8, 1.3)),
            gas_multiplier_sigma=config.liquidator_gas_multiplier_sigma,
            flash_loan_probability=config.liquidator_flash_loan_probability * float(rng.uniform(0.4, 2.0)),
            min_profit_margin=float(rng.uniform(1.1, 1.8)),
            holding_symbol="USDC" if rng.random() < 0.7 else "DAI",
            initial_capital_usd=float(rng.lognormal(np.log(3_000_000), 1.0)),
            offline_during_congestion=rng.random() < 0.3,
        )
        engine.add_agent(LiquidatorAgent(f"liquidator-{index}", next(agent_rngs), profile))

    # MakerDAO auction keepers.  A small minority pays market-rate gas even
    # during congestion and therefore keeps winning auctions at low-ball bids
    # while the rest of the bots are priced out (the March 2020 dynamic).
    makerdao = engine.makerdao
    if makerdao is not None:
        for index in range(population.keepers):
            capable = index < max(population.keepers // 4, 1)
            profile = KeeperProfile(
                detection_probability=float(rng.uniform(0.3, 0.7)),
                profit_margin=float(rng.uniform(0.03, 0.12)),
                first_bid_fraction=float(rng.uniform(0.35, 0.7)),
                offline_during_congestion=not capable,
                uses_market_gas=capable,
            )
            engine.add_agent(AuctionKeeperAgent(f"keeper-{index}", next(agent_rngs), makerdao, profile))

    engine.add_agent(ArbitrageurAgent("arbitrageur", next(agent_rngs)))


# --------------------------------------------------------------------- #
# The builder
# --------------------------------------------------------------------- #
class ScenarioBuilder:
    """Fluent, layered construction of a :class:`SimulationEngine`.

    Every ``with_*`` method mutates the builder in place and returns it, so
    calls chain.  Factories receive the :class:`BuildContext`; replace any of
    them to swap one layer of the world while keeping the rest.
    """

    def __init__(self, config: ScenarioConfig | None = None) -> None:
        self.config = config or ScenarioConfig()
        self.asset_dynamics: dict[str, tuple[float, float]] = dict(ASSET_DYNAMICS)
        self.stablecoin_symbols: tuple[str, ...] = STABLECOIN_SYMBOLS
        self.protocol_names: tuple[str, ...] = DEFAULT_PROTOCOL_NAMES
        self._incidents: tuple[Incident, ...] | None = None  # None → defaults for config
        self._registry_factory = default_token_registry
        self._feed_factory: Callable[[BuildContext], PriceFeed] = default_price_feed
        self._gas_market_factory = default_gas_market
        self._chain_factory = default_chain
        self._oracles_factory = default_oracles
        self._protocols_factory = default_protocols
        self._flash_loans_factory = default_flash_loans
        self._amm_factory = default_amm
        self._market_maker_factory = default_market_maker
        self._population_factory: Callable[[BuildContext, SimulationEngine], None] = default_population
        self._extra_agent_factories: list[Callable[[BuildContext, SimulationEngine], None]] = []
        self._extra_events: list[tuple[int, str, Callable[[SimulationEngine], None]]] = []
        self._probe_factories: list[Callable[[SimulationEngine], object]] = []

    # -------------------------------------------------------------- #
    # Configuration
    # -------------------------------------------------------------- #
    @property
    def incidents(self) -> tuple[Incident, ...]:
        """The incident list in effect (defaults derived from the config)."""
        if self._incidents is None:
            return default_incidents(self.config)
        return self._incidents

    def with_config(self, config: ScenarioConfig) -> "ScenarioBuilder":
        """Replace the scenario configuration wholesale."""
        self.config = config
        return self

    def with_seed(self, seed: int) -> "ScenarioBuilder":
        """Re-seed every stream of the scenario."""
        self.config = self.config.with_overrides(seed=seed)
        return self

    def with_window(
        self,
        start_block: int | None = None,
        end_block: int | None = None,
        start_timestamp: int | None = None,
        blocks_per_step: int | None = None,
        feed_blocks_per_step: int | None = None,
    ) -> "ScenarioBuilder":
        """Override the simulated block window and/or strides."""
        overrides = {
            key: value
            for key, value in {
                "start_block": start_block,
                "end_block": end_block,
                "start_timestamp": start_timestamp,
                "blocks_per_step": blocks_per_step,
                "feed_blocks_per_step": feed_blocks_per_step,
            }.items()
            if value is not None
        }
        self.config = self.config.with_overrides(**overrides)
        return self

    def with_assets(
        self,
        dynamics: dict[str, tuple[float, float]],
        *,
        replace_universe: bool = False,
        stablecoins: tuple[str, ...] | None = None,
    ) -> "ScenarioBuilder":
        """Override per-asset (drift, volatility) dynamics.

        By default ``dynamics`` is merged into the paper's universe; pass
        ``replace_universe=True`` to simulate only the given assets.
        """
        if replace_universe:
            self.asset_dynamics = dict(dynamics)
        else:
            self.asset_dynamics.update(dynamics)
        if stablecoins is not None:
            self.stablecoin_symbols = tuple(stablecoins)
        return self

    def with_population(
        self, population: PopulationConfig | None = None, **overrides
    ) -> "ScenarioBuilder":
        """Replace the agent population config (or override single fields)."""
        base = population or self.config.population
        if overrides:
            base = replace(base, **overrides)
        self.config = self.config.with_overrides(population=base)
        return self

    # -------------------------------------------------------------- #
    # Incidents
    # -------------------------------------------------------------- #
    def with_incidents(self, *incidents: Incident) -> "ScenarioBuilder":
        """Replace the incident list (empty call ⇒ incident-free world)."""
        self._incidents = tuple(incidents)
        return self

    def add_incidents(self, *incidents: Incident) -> "ScenarioBuilder":
        """Append incidents to the list in effect."""
        self._incidents = (*self.incidents, *incidents)
        return self

    def without_incidents(self) -> "ScenarioBuilder":
        """Drop every incident: a calm world with no scheduled shocks."""
        self._incidents = ()
        return self

    def schedule(self, block: int, name: str, action: Callable[[SimulationEngine], None]) -> "ScenarioBuilder":
        """Register a raw one-shot engine event (escape hatch)."""
        self._extra_events.append((block, name, action))
        return self

    # -------------------------------------------------------------- #
    # Component factories
    # -------------------------------------------------------------- #
    def with_protocols(self, *names: str) -> "ScenarioBuilder":
        """Restrict the default protocol set to the given display names."""
        self.protocol_names = tuple(names)
        return self

    def with_token_registry(self, factory) -> "ScenarioBuilder":
        """Replace the token-registry factory (``ctx -> TokenRegistry``)."""
        self._registry_factory = factory
        return self

    @property
    def feed_factory(self) -> Callable[[BuildContext], PriceFeed]:
        """The price-feed factory in effect (compare with ``default_price_feed``)."""
        return self._feed_factory

    def with_price_feed(self, feed: PriceFeed | Callable[[BuildContext], PriceFeed]) -> "ScenarioBuilder":
        """Replace the price feed (an instance or a ``ctx -> PriceFeed``)."""
        self._feed_factory = feed if callable(feed) else (lambda ctx: feed)
        return self

    def with_gas_market(self, factory) -> "ScenarioBuilder":
        """Replace the gas-market factory (``ctx -> GasMarket``)."""
        self._gas_market_factory = factory
        return self

    def with_chain(self, factory) -> "ScenarioBuilder":
        """Replace the chain factory (``ctx -> Blockchain``)."""
        self._chain_factory = factory
        return self

    def with_oracles(self, factory) -> "ScenarioBuilder":
        """Replace the oracle factory (``ctx -> (oracle, protocol_oracles)``)."""
        self._oracles_factory = factory
        return self

    @property
    def protocol_factory(self) -> Callable[[BuildContext], list[LendingProtocol]]:
        """The protocol factory in effect (wrap it to post-process protocols)."""
        return self._protocols_factory

    def with_protocol_factory(self, factory) -> "ScenarioBuilder":
        """Replace protocol construction wholesale (``ctx -> [protocols]``)."""
        self._protocols_factory = factory
        return self

    def with_flash_loans(self, factory) -> "ScenarioBuilder":
        """Replace the flash-loan factory (``ctx -> FlashLoanProvider``)."""
        self._flash_loans_factory = factory
        return self

    def with_amm(self, factory) -> "ScenarioBuilder":
        """Replace the AMM factory (``ctx -> AmmRouter``)."""
        self._amm_factory = factory
        return self

    def with_market_maker(self, factory) -> "ScenarioBuilder":
        """Replace the OTC market-maker factory (``ctx -> MarketMaker``)."""
        self._market_maker_factory = factory
        return self

    def with_agents(self, factory: Callable[[BuildContext, SimulationEngine], None]) -> "ScenarioBuilder":
        """Replace the agent-population factory (``(ctx, engine) -> None``)."""
        self._population_factory = factory
        return self

    def add_agents(self, factory: Callable[[BuildContext, SimulationEngine], None]) -> "ScenarioBuilder":
        """Append an extra agent factory run after the main population."""
        self._extra_agent_factories.append(factory)
        return self

    def with_probes(self, *factories: Callable[[SimulationEngine], object]) -> "ScenarioBuilder":
        """Pre-register observer probes attached to every built engine.

        Each factory is called with the freshly assembled engine and must
        return a :class:`~repro.observers.bus.Probe`
        (``engine -> probe``), e.g.::

            builder.with_probes(
                lambda engine: LiquidationRecorder(),
                lambda engine: HealthFactorWatcher(engine.protocols, hf_below=1.1),
            )

        Factories (rather than instances) keep the builder reusable: every
        ``build()`` gets fresh, unshared probe state.
        """
        self._probe_factories.extend(factories)
        return self

    # -------------------------------------------------------------- #
    # Assembly
    # -------------------------------------------------------------- #
    def build_feed(self) -> PriceFeed:
        """Build just the price feed (useful for inspection and tests)."""
        ctx = BuildContext(builder=self, config=self.config, rng=np.random.default_rng(self.config.seed))
        return self._feed_factory(ctx)

    def build(self) -> SimulationEngine:
        """Assemble the full world and return a ready-to-run engine."""
        config = self.config
        ctx = BuildContext(builder=self, config=config, rng=np.random.default_rng(config.seed))
        ctx.registry = self._registry_factory(ctx)
        ctx.feed = self._feed_factory(ctx)
        ctx.gas_market = self._gas_market_factory(ctx)
        ctx.chain = self._chain_factory(ctx)
        ctx.oracle, ctx.protocol_oracles = self._oracles_factory(ctx)
        ctx.protocols = self._protocols_factory(ctx)
        ctx.flash_loans = self._flash_loans_factory(ctx)
        ctx.amm = self._amm_factory(ctx)
        ctx.market_maker = self._market_maker_factory(ctx)
        engine = SimulationEngine(
            config=config,
            chain=ctx.chain,
            registry=ctx.registry,
            feed=ctx.feed,
            oracle=ctx.oracle,
            protocols=ctx.protocols,
            protocol_oracles=ctx.protocol_oracles,
            flash_loans=ctx.flash_loans,
            amm=ctx.amm,
            market_maker=ctx.market_maker,
        )
        for incident in self.incidents:
            incident.schedule(engine)
        for block, name, action in self._extra_events:
            engine.schedule(block, name, action)
        self._population_factory(ctx, engine)
        for factory in self._extra_agent_factories:
            factory(ctx, engine)
        for probe_factory in self._probe_factories:
            engine.attach_probe(probe_factory(engine))
        return engine

    def run(self, n_steps: int | None = None) -> SimulationResult:
        """Build and run the scenario end-to-end."""
        return self.build().run(n_steps)
