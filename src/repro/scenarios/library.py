"""Built-in scenario library.

Every scenario here is a small declarative definition — a config preset plus
an incident list — registered by name.  ``python -m repro list`` prints this
table; ``python -m repro run --scenario NAME`` runs one end-to-end.

The stress scenarios (``stablecoin-depeg``, ``double-crash-stress``,
``oracle-attack``, ``no-incidents-bull``) run on the fast three-month window
so they stay tractable for exploration; the ``paper-*`` scenarios cover the
full April 2019 – April 2021 study window.
"""

from __future__ import annotations

from ..simulation.config import ScenarioConfig
from .builder import ScenarioBuilder
from .incidents import AuctionReconfig, CongestionEpisode, OracleOverride, PriceCrash
from .registry import register_scenario


def _seed(seed: int | None) -> int:
    return 7 if seed is None else seed


@register_scenario(
    "small",
    description="Three-month window around the March 2020 crash (test/demo scale)",
    tags=("preset", "fast"),
)
def small(seed: int | None = None) -> ScenarioBuilder:
    return ScenarioBuilder(ScenarioConfig.small(_seed(seed)))


@register_scenario(
    "paper-medium",
    description="Full two-year study window with a reduced agent population",
    tags=("preset", "paper"),
)
def paper_medium(seed: int | None = None) -> ScenarioBuilder:
    return ScenarioBuilder(ScenarioConfig.medium(_seed(seed)))


@register_scenario(
    "paper-full",
    description="The paper's full April 2019 – April 2021 window at full population",
    tags=("preset", "paper"),
)
def paper_full(seed: int | None = None) -> ScenarioBuilder:
    return ScenarioBuilder(ScenarioConfig.paper(_seed(seed)))


@register_scenario(
    "march-2020-only",
    description="Only the 13 March 2020 crash-plus-congestion, nothing else",
    tags=("incident", "fast"),
)
def march_2020_only(seed: int | None = None) -> ScenarioBuilder:
    config = ScenarioConfig.small(_seed(seed))
    incidents = config.incidents
    return ScenarioBuilder(config).with_incidents(
        PriceCrash(
            name="march-2020-crash",
            block=incidents.march_2020_block,
            drop=incidents.march_2020_eth_drop,
            recovery=0.65,
            congestion_blocks=incidents.march_2020_congestion_blocks,
        )
    )


@register_scenario(
    "no-incidents-bull",
    description="A calm bull market: no crashes, no congestion, boosted drift",
    tags=("counterfactual", "fast"),
)
def no_incidents_bull(seed: int | None = None) -> ScenarioBuilder:
    builder = ScenarioBuilder(ScenarioConfig.small(_seed(seed))).without_incidents()
    calm = {
        symbol: (drift + 0.5, volatility * 0.8)
        for symbol, (drift, volatility) in builder.asset_dynamics.items()
    }
    return builder.with_assets(calm)


@register_scenario(
    "double-crash-stress",
    description="Two deep crashes six weeks apart, congestion both times",
    tags=("stress", "fast"),
)
def double_crash_stress(seed: int | None = None) -> ScenarioBuilder:
    config = ScenarioConfig.small(_seed(seed))
    first_block = config.incidents.march_2020_block
    second_block = first_block + 220_000  # ≈ 6 weeks later
    return ScenarioBuilder(config).with_incidents(
        PriceCrash(name="first-crash", block=first_block, drop=0.43, recovery=0.55, congestion_blocks=14_000),
        AuctionReconfig(name="makerdao-auction-reconfiguration", block=first_block + 85_000),
        PriceCrash(name="second-crash", block=second_block, drop=0.35, recovery=0.4, congestion_blocks=10_000),
    )


@register_scenario(
    "stablecoin-depeg",
    description="USDT loses its peg while DAI trades at a premium",
    tags=("stress", "stablecoin", "fast"),
)
def stablecoin_depeg(seed: int | None = None) -> ScenarioBuilder:
    config = ScenarioConfig.small(_seed(seed))
    depeg_block = config.start_block + 250_000
    return ScenarioBuilder(config).with_incidents(
        PriceCrash(
            name="usdt-depeg",
            block=depeg_block,
            drop=0.12,
            duration_steps=3,
            recovery=0.95,
            recovery_steps=60,
            symbols=("USDT",),
        ),
        PriceCrash(
            name="dai-premium",
            block=depeg_block,
            drop=-0.08,  # negative drop ⇒ a price spike above the peg
            duration_steps=3,
            recovery=0.9,
            recovery_steps=80,
            symbols=("DAI",),
        ),
        CongestionEpisode(name="depeg-panic-congestion", block=depeg_block, congestion_blocks=8_000),
    )


@register_scenario(
    "oracle-attack",
    description="The shared price oracle is manipulated to report ETH 35 % low",
    tags=("attack", "fast"),
)
def oracle_attack(seed: int | None = None) -> ScenarioBuilder:
    config = ScenarioConfig.small(_seed(seed))
    attack_block = config.start_block + 200_000
    return ScenarioBuilder(config).with_incidents(
        OracleOverride(
            name="eth-oracle-attack",
            block=attack_block,
            symbol="ETH",
            price=0.65,
            relative=True,
            duration_blocks=5_000,
            oracle="chainlink",
        )
    )
