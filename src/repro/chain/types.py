"""Fundamental chain-level types and unit helpers.

The simulator mirrors the vocabulary of an Ethereum-like chain so that the
analytics pipeline (the paper's "custom client", cf. Figure 3) can be written
against the same abstractions a real archive node exposes: addresses,
transaction hashes, gas quantities and block numbers.

All monetary *token* amounts in the simulator are plain ``float`` token units
(e.g. 1.5 ETH, 4_200.0 USDC).  USD valuations are always derived through an
oracle at a specific block, never stored on the objects themselves, matching
the paper's methodology of normalising values "according to the prices given
by the platforms' on-chain price oracles at the block when the liquidation is
settled" (Section 4.2).
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass

from ..runtime_state import register_reset

#: Number of wei in one gwei.  Gas prices throughout the simulator are
#: expressed in gwei, as in Figure 6 of the paper.
GWEI = 10**9

#: Number of wei in one ether.
ETHER = 10**18

#: Default block gas limit (≈ the Ethereum mainnet limit during the study
#: window).  The mempool uses this to decide how many transactions fit into a
#: block, which is what creates congestion during market crashes.
DEFAULT_BLOCK_GAS_LIMIT = 12_500_000

#: Average gas consumed by a fixed spread liquidation call.  Calibrated to the
#: typical ``liquidationCall`` / ``liquidateBorrow`` cost on mainnet.
LIQUIDATION_GAS = 450_000

#: Average gas consumed by a MakerDAO auction interaction (bite/tend/dent/deal).
AUCTION_BID_GAS = 150_000

#: Average gas consumed by a plain ERC-20 style transfer.
TRANSFER_GAS = 21_000

#: Ethereum's average inter-block time in seconds; used to convert block
#: spans into wall-clock durations (Figure 7 reports auction durations in
#: hours).
SECONDS_PER_BLOCK = 13

#: Number of blocks per day under :data:`SECONDS_PER_BLOCK`.
BLOCKS_PER_DAY = 86_400 // SECONDS_PER_BLOCK  # 6646

#: Number of blocks in the paper's 6-hour post-liquidation observation window
#: (Appendix A).
POST_LIQUIDATION_WINDOW = 1_440


_address_counter = itertools.count(1)
_hash_counter = itertools.count(1)


@dataclass(frozen=True, order=True)
class Address:
    """A 160-bit style account identifier.

    The simulator does not need real keccak addresses; it only needs stable,
    hashable, printable identifiers that are unique per actor or contract.
    ``label`` carries a human-readable hint (``"liquidator-17"``,
    ``"compound"``) used in reports, while ``value`` is the canonical hex
    string used for equality.
    """

    value: str
    label: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label or self.value

    def short(self) -> str:
        """Return the abbreviated ``0xabcd…1234`` form used in tables."""
        return f"{self.value[:6]}…{self.value[-4:]}"


def make_address(label: str = "") -> Address:
    """Create a fresh, deterministic :class:`Address`.

    Addresses are derived from a process-wide counter hashed through sha256,
    so repeated calls yield unique but reproducible-looking identifiers.  The
    *sequence* of addresses is deterministic within a run but the simulator
    never relies on their numeric content.
    """
    seed = f"address:{next(_address_counter)}:{label}"
    digest = hashlib.sha256(seed.encode()).hexdigest()[:40]
    return Address(value="0x" + digest, label=label)


def make_tx_hash(payload: str = "") -> str:
    """Create a fresh transaction-hash-like identifier."""
    seed = f"tx:{next(_hash_counter)}:{payload}"
    return "0x" + hashlib.sha256(seed.encode()).hexdigest()


def reset_id_counters() -> None:
    """Reset the global address / hash counters.

    Registered with :mod:`repro.runtime_state` so every campaign run starts
    its identifier sequences from 1 regardless of process history — the
    serial-vs-parallel byte-identity contract.  Tests asserting on
    deterministic identifier sequences call it directly.
    """
    global _address_counter, _hash_counter
    _address_counter = itertools.count(1)
    _hash_counter = itertools.count(1)


register_reset("repro.chain.types.id_counters", reset_id_counters)


def blocks_to_hours(n_blocks: int | float) -> float:
    """Convert a span of blocks into hours (used for auction durations)."""
    return n_blocks * SECONDS_PER_BLOCK / 3600.0


def hours_to_blocks(hours: float) -> int:
    """Convert hours into a whole number of blocks (rounding down)."""
    return int(hours * 3600 / SECONDS_PER_BLOCK)


def gwei(amount: float) -> int:
    """Express ``amount`` gwei in wei."""
    return int(amount * GWEI)


def from_gwei(wei_amount: float) -> float:
    """Express a wei quantity in gwei."""
    return wei_amount / GWEI
