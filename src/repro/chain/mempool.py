"""Mempool with gas-price priority ordering and bounded block capacity.

Section 2.1 of the paper: "a financially rational miner may include the
transactions with the highest gas prices from the mempool into the next
block.  The blockchain network congests when the mempool grows faster than
the transaction inclusion speed."  The March 2020 MakerDAO incident — keeper
bots unable to land bids — is a direct consequence of this mechanism, so the
simulator reproduces it: transactions wait in the mempool, blocks pack the
highest bidders first, and anything that does not fit waits (or expires).

Internally the pool keeps three views over shared entries:

* a max-heap by gas price (FIFO on ties) that block packing pops from;
* a min-heap by gas price (LIFO on ties) so the bounded-capacity eviction
  finds its victim in O(log n) instead of a linear ``max`` + ``remove`` +
  re-heapify sweep;
* a FIFO of submissions so expired transactions are swept as soon as their
  window passes, instead of lingering below the congestion break-point.

Entries are shared between the views and removed lazily: consuming an entry
in one view marks it dead, the other views skip dead entries when they
surface and compact when the garbage outweighs the live set.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field

from .. import sanitize
from ..telemetry import runtime as telemetry
from .transaction import Transaction, TxStatus


@dataclass(order=True)
class _PoolEntry:
    """Internal heap entry; ordered by descending gas price, FIFO on ties."""

    sort_key: tuple[int, int]
    transaction: Transaction = field(compare=False)
    alive: bool = field(default=True, compare=False)


class Mempool:
    """A single global mempool.

    The real network has no universal mempool (footnote 2 of the paper), but
    for measurement purposes a single priority queue captures the relevant
    behaviour: inclusion is ordered by gas price and bounded by block gas.
    """

    def __init__(self, max_pending: int = 50_000, expiry_blocks: int = 5_000) -> None:
        self._heap: list[_PoolEntry] = []
        #: Min-heap of ``(gas_price, -seq, entry)``: the top is the pool's
        #: lowest bidder (newest on ties), i.e. the eviction victim.
        self._evict_heap: list[tuple[int, int, _PoolEntry]] = []
        #: Entries in submission order; submission blocks are monotone in a
        #: simulation run, so expired entries sit at the left end.
        self._fifo: deque[_PoolEntry] = deque()
        self._counter = itertools.count()
        self._size = 0
        self._max_pending = max_pending
        self._expiry_blocks = expiry_blocks

    def __len__(self) -> int:
        return self._size

    @property
    def pending(self) -> list[Transaction]:
        """Snapshot of pending transactions (not in inclusion order)."""
        return [entry.transaction for entry in self._heap if entry.alive]

    def submit(self, transaction: Transaction, current_block: int) -> None:
        """Add a transaction to the pool.

        If the pool is full, the lowest-paying transaction is dropped —
        which, during congestion, is typically a stale keeper bid.
        """
        transaction.submitted_block = current_block
        seq = next(self._counter)
        entry = _PoolEntry(sort_key=(-transaction.gas_price, seq), transaction=transaction)
        heapq.heappush(self._heap, entry)
        heapq.heappush(self._evict_heap, (transaction.gas_price, -seq, entry))
        self._fifo.append(entry)
        self._size += 1
        if self._size > self._max_pending:
            self._drop_lowest()
        self._compact_if_stale()

    def _drop_lowest(self) -> None:
        """Drop the live entry with the lowest gas price (newest on ties)."""
        while self._evict_heap:
            _, _, entry = heapq.heappop(self._evict_heap)
            if entry.alive:
                self._discard(entry)
                return

    def _discard(self, entry: _PoolEntry) -> None:
        """Mark an entry dead and its transaction dropped."""
        entry.alive = False
        entry.transaction.status = TxStatus.DROPPED
        self._size -= 1

    def _consume(self, entry: _PoolEntry) -> None:
        """Mark an entry dead because its transaction left the pool (mined)."""
        entry.alive = False
        self._size -= 1

    def _compact_if_stale(self) -> None:
        """Rebuild the lazy views once dead entries outnumber live ones."""
        threshold = 2 * self._size + 64
        if len(self._evict_heap) > threshold:
            self._evict_heap = [item for item in self._evict_heap if item[2].alive]
            heapq.heapify(self._evict_heap)
        if len(self._heap) > threshold:
            self._heap = [entry for entry in self._heap if entry.alive]
            heapq.heapify(self._heap)
        if len(self._fifo) > threshold:
            self._fifo = deque(entry for entry in self._fifo if entry.alive)

    def sweep_expired(self, current_block: int) -> int:
        """Drop every transaction whose expiry window has passed.

        Without this, anything bidding below the congestion break-point is
        never popped by block packing and would survive its expiry window
        indefinitely, inflating the pool through long congestion episodes.
        Returns the number of transactions dropped.
        """
        swept = 0
        while self._fifo:
            entry = self._fifo[0]
            if not entry.alive:
                self._fifo.popleft()
                continue
            if current_block - entry.transaction.submitted_block > self._expiry_blocks:
                self._fifo.popleft()
                self._discard(entry)
                swept += 1
                continue
            break
        if swept:
            active = telemetry.active()
            if active is not None:
                active.counter(
                    "repro_mempool_swept_total",
                    "Expired transactions dropped by the mempool sweep",
                ).inc(swept)
        return swept

    def select_for_block(
        self,
        gas_limit: int,
        current_block: int,
        min_gas_price: int = 0,
    ) -> list[Transaction]:
        """Pop the best-paying transactions that fit into ``gas_limit``.

        ``min_gas_price`` models the market-clearing inclusion price during
        congestion: transactions bidding below it stay pending (they are what
        outside traffic crowds out of full blocks).  Transactions older than
        the expiry window are dropped (their status is set to
        :attr:`TxStatus.DROPPED`), emulating senders replacing or abandoning
        stale transactions — including the ones sitting below the
        ``min_gas_price`` break-point that block packing never reaches.
        """
        self.sweep_expired(current_block)
        selected: list[Transaction] = []
        gas_budget = gas_limit
        skipped: list[_PoolEntry] = []
        while self._heap and gas_budget > 0:
            entry = heapq.heappop(self._heap)
            if not entry.alive:
                continue
            tx = entry.transaction
            if current_block - tx.submitted_block > self._expiry_blocks:
                self._discard(entry)
                continue
            if tx.gas_price < min_gas_price:
                # Everything further down the heap bids even less: stop here.
                skipped.append(entry)
                break
            if tx.gas_limit <= gas_budget:
                self._consume(entry)
                selected.append(tx)
                gas_budget -= tx.gas_limit
            else:
                skipped.append(entry)
                # A block is effectively full once remaining space is small.
                if gas_budget < 25_000:
                    break
        for entry in skipped:
            heapq.heappush(self._heap, entry)
        return selected

    def check_invariants(self) -> None:
        """Sanitizer: revalidate the twin-heap bookkeeping.

        The three lazy views share entries and delete lazily, so a missed
        ``_consume``/``_discard`` (or a double one) desynchronises the live
        count from the views *silently* — packing and eviction keep working,
        just on the wrong population.  This check asserts that every view
        agrees with :attr:`_size`, that sort keys still match their
        transactions' gas prices, and that both heaps retain the heap
        property.  Raises :class:`~repro.sanitize.SanitizerError`.
        """
        live_pack = [entry for entry in self._heap if entry.alive]
        live_fifo = [entry for entry in self._fifo if entry.alive]
        live_evict = [item for item in self._evict_heap if item[2].alive]
        for view, count in (("pack heap", len(live_pack)), ("fifo", len(live_fifo)), ("evict heap", len(live_evict))):
            if count != self._size:
                raise sanitize.SanitizerError(
                    f"mempool {view} holds {count} live entries but _size says "
                    f"{self._size}: a lazy deletion was missed or double-counted"
                )
        if {id(e) for e in live_pack} != {id(e) for e in live_fifo}:
            raise sanitize.SanitizerError(
                "mempool pack heap and fifo disagree on the live entry set"
            )
        for entry in live_pack:
            expected = -entry.transaction.gas_price
            if entry.sort_key[0] != expected:
                raise sanitize.SanitizerError(
                    f"mempool pack-heap sort key {entry.sort_key[0]} does not "
                    f"match gas price {entry.transaction.gas_price} of "
                    f"{entry.transaction.tx_hash}: the bid mutated after submit"
                )
        for price, _, entry in live_evict:
            if price != entry.transaction.gas_price:
                raise sanitize.SanitizerError(
                    f"mempool evict-heap key {price} does not match gas price "
                    f"{entry.transaction.gas_price} of {entry.transaction.tx_hash}"
                )
        for name, heap in (("pack", self._heap), ("evict", self._evict_heap)):
            for index in range(1, len(heap)):
                parent = (index - 1) >> 1
                if heap[index] < heap[parent]:
                    raise sanitize.SanitizerError(
                        f"mempool {name} heap lost the heap property at index {index}"
                    )

    def clear(self) -> list[Transaction]:
        """Drop every pending transaction and return them (used by tests)."""
        dropped = [entry.transaction for entry in self._heap if entry.alive]
        for tx in dropped:
            tx.status = TxStatus.DROPPED
        self._heap.clear()
        self._evict_heap.clear()
        self._fifo.clear()
        self._size = 0
        return dropped
