"""Mempool with gas-price priority ordering and bounded block capacity.

Section 2.1 of the paper: "a financially rational miner may include the
transactions with the highest gas prices from the mempool into the next
block.  The blockchain network congests when the mempool grows faster than
the transaction inclusion speed."  The March 2020 MakerDAO incident — keeper
bots unable to land bids — is a direct consequence of this mechanism, so the
simulator reproduces it: transactions wait in the mempool, blocks pack the
highest bidders first, and anything that does not fit waits (or expires).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from .transaction import Transaction, TxStatus


@dataclass(order=True)
class _PoolEntry:
    """Internal heap entry; ordered by descending gas price, FIFO on ties."""

    sort_key: tuple[int, int]
    transaction: Transaction = field(compare=False)


class Mempool:
    """A single global mempool.

    The real network has no universal mempool (footnote 2 of the paper), but
    for measurement purposes a single priority queue captures the relevant
    behaviour: inclusion is ordered by gas price and bounded by block gas.
    """

    def __init__(self, max_pending: int = 50_000, expiry_blocks: int = 5_000) -> None:
        self._heap: list[_PoolEntry] = []
        self._counter = itertools.count()
        self._max_pending = max_pending
        self._expiry_blocks = expiry_blocks

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def pending(self) -> list[Transaction]:
        """Snapshot of pending transactions (not in inclusion order)."""
        return [entry.transaction for entry in self._heap]

    def submit(self, transaction: Transaction, current_block: int) -> None:
        """Add a transaction to the pool.

        If the pool is full, the lowest-paying transaction is dropped —
        which, during congestion, is typically a stale keeper bid.
        """
        transaction.submitted_block = current_block
        entry = _PoolEntry(
            sort_key=(-transaction.gas_price, next(self._counter)),
            transaction=transaction,
        )
        heapq.heappush(self._heap, entry)
        if len(self._heap) > self._max_pending:
            self._drop_lowest()

    def _drop_lowest(self) -> None:
        """Drop the entry with the lowest gas price."""
        if not self._heap:
            return
        lowest = max(self._heap, key=lambda entry: entry.sort_key)
        lowest.transaction.status = TxStatus.DROPPED
        self._heap.remove(lowest)
        heapq.heapify(self._heap)

    def select_for_block(
        self,
        gas_limit: int,
        current_block: int,
        min_gas_price: int = 0,
    ) -> list[Transaction]:
        """Pop the best-paying transactions that fit into ``gas_limit``.

        ``min_gas_price`` models the market-clearing inclusion price during
        congestion: transactions bidding below it stay pending (they are what
        outside traffic crowds out of full blocks).  Transactions older than
        the expiry window are silently dropped (their status is set to
        :attr:`TxStatus.DROPPED`), emulating senders replacing or abandoning
        stale transactions.
        """
        selected: list[Transaction] = []
        gas_budget = gas_limit
        skipped: list[_PoolEntry] = []
        while self._heap and gas_budget > 0:
            entry = heapq.heappop(self._heap)
            tx = entry.transaction
            if current_block - tx.submitted_block > self._expiry_blocks:
                tx.status = TxStatus.DROPPED
                continue
            if tx.gas_price < min_gas_price:
                # Everything further down the heap bids even less: stop here.
                skipped.append(entry)
                break
            if tx.gas_limit <= gas_budget:
                selected.append(tx)
                gas_budget -= tx.gas_limit
            else:
                skipped.append(entry)
                # A block is effectively full once remaining space is small.
                if gas_budget < 25_000:
                    break
        for entry in skipped:
            heapq.heappush(self._heap, entry)
        return selected

    def clear(self) -> list[Transaction]:
        """Drop every pending transaction and return them (used by tests)."""
        dropped = [entry.transaction for entry in self._heap]
        for tx in dropped:
            tx.status = TxStatus.DROPPED
        self._heap.clear()
        return dropped
