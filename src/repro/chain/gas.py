"""Gas-price market model.

The paper's gas analysis (Figure 6) compares the gas price paid by each
liquidation transaction against the 1-day moving average of the block-median
gas price, and observes (i) that 73.97 % of liquidations bid above average and
(ii) a gas-price spike during the March 2020 crash followed by an uptrend from
mid-2020 onwards ("due to the growing popularity of DeFi").

This module models exactly that environment: a base gas price that follows a
mean-reverting random walk with a secular uptrend, plus congestion spikes that
the scenario layer injects during market crashes.  Liquidator agents consult
:class:`GasMarket` to decide their bids.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .types import GWEI


@dataclass
class GasMarketConfig:
    """Parameters of the simulated gas market.

    Attributes
    ----------
    initial_gwei:
        Base gas price at the start of the scenario (≈ 2019 levels).
    trend_per_block:
        Multiplicative drift per block.  A value slightly above 1 creates the
        secular uptrend visible in Figure 6 from May 2020 onwards.
    volatility:
        Standard deviation of the per-block lognormal noise.
    mean_reversion:
        Strength with which the price reverts towards the trend level;
        between 0 (pure random walk) and 1 (immediate reversion).
    min_gwei / max_gwei:
        Hard clamps keeping the process inside the band observed on mainnet
        (roughly 1 gwei to 100 000 gwei at the worst of the crash).
    congestion_multiplier:
        Additional factor applied while congestion is active (crashes).
    """

    initial_gwei: float = 8.0
    trend_per_block: float = 1.0000022
    volatility: float = 0.02
    mean_reversion: float = 0.02
    min_gwei: float = 1.0
    max_gwei: float = 100_000.0
    congestion_multiplier: float = 12.0


@dataclass
class GasMarket:
    """Evolves the prevailing ("average") gas price block by block."""

    config: GasMarketConfig = field(default_factory=GasMarketConfig)
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))

    def __post_init__(self) -> None:
        self._level_gwei = self.config.initial_gwei
        self._trend_level = self.config.initial_gwei
        self._congested_blocks_remaining = 0

    @property
    def base_gas_price_gwei(self) -> float:
        """Current prevailing gas price in gwei, including congestion."""
        price = self._level_gwei
        if self._congested_blocks_remaining > 0:
            price *= self.config.congestion_multiplier
        return float(np.clip(price, self.config.min_gwei, self.config.max_gwei))

    @property
    def base_gas_price_wei(self) -> int:
        """Current prevailing gas price in wei."""
        return int(self.base_gas_price_gwei * GWEI)

    @property
    def is_congested(self) -> bool:
        """Whether a congestion episode is currently active."""
        return self._congested_blocks_remaining > 0

    @property
    def uncongested_gas_price_gwei(self) -> float:
        """The gas-price level without the congestion multiplier.

        Keeper bots that estimate gas from stale data effectively bid around
        this level during congestion episodes — which is why their bids fail
        to land (Section 4.3.1's March 2020 incident).
        """
        return float(np.clip(self._level_gwei, self.config.min_gwei, self.config.max_gwei))

    @property
    def min_inclusion_gas_price_wei(self) -> int:
        """Market-clearing inclusion price: non-zero only during congestion."""
        if not self.is_congested:
            return 0
        return int(self.base_gas_price_gwei * 0.85 * GWEI)

    def trigger_congestion(self, n_blocks: int) -> None:
        """Start (or extend) a congestion episode lasting ``n_blocks`` blocks.

        The scenario layer calls this during market crashes; it is what makes
        liquidation and keeper transactions slow to confirm, reproducing the
        MakerDAO March 2020 incident dynamics.
        """
        self._congested_blocks_remaining = max(self._congested_blocks_remaining, n_blocks)

    def step(self) -> float:
        """Advance the gas market by one block and return the new level (gwei)."""
        cfg = self.config
        self._trend_level *= cfg.trend_per_block
        noise = float(self.rng.normal(0.0, cfg.volatility))
        reversion = cfg.mean_reversion * (np.log(self._trend_level) - np.log(self._level_gwei))
        self._level_gwei = float(
            np.clip(
                self._level_gwei * np.exp(reversion + noise),
                cfg.min_gwei,
                cfg.max_gwei,
            )
        )
        if self._congested_blocks_remaining > 0:
            self._congested_blocks_remaining -= 1
        return self.base_gas_price_gwei


def moving_average(values: list[float], window: int) -> list[float]:
    """Trailing moving average used for the Figure 6 "average gas price" curve.

    The first ``window - 1`` entries average over the available prefix, so
    the returned list has the same length as ``values``.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    averages: list[float] = []
    running = 0.0
    for index, value in enumerate(values):
        running += value
        if index >= window:
            running -= values[index - window]
            averages.append(running / window)
        else:
            averages.append(running / (index + 1))
    return averages
