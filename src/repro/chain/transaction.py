"""Transactions and execution receipts.

A transaction in the simulator is a *callable action* plus the metadata the
paper's measurements rely on: the sender, the gas price bid, and the gas the
action consumes.  This is what lets the gas-competition analysis (Figure 6)
and the congestion modelling (Section 4.3.1's March 2020 incident) work: the
mempool orders pending transactions by gas price and a block only has room
for a bounded amount of gas.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from .types import Address, GWEI, make_tx_hash


class TxStatus(enum.Enum):
    """Lifecycle of a transaction in the simulator."""

    PENDING = "pending"
    SUCCESS = "success"
    REVERTED = "reverted"
    DROPPED = "dropped"


class TxKind(enum.Enum):
    """Coarse classification of the action a transaction performs.

    The analytics layer uses the kind to separate liquidation transactions
    from ordinary traffic, mirroring how the paper filters liquidation events
    out of the full event stream.
    """

    TRANSFER = "transfer"
    DEPOSIT = "deposit"
    BORROW = "borrow"
    REPAY = "repay"
    WITHDRAW = "withdraw"
    LIQUIDATION = "liquidation"
    AUCTION_INITIATE = "auction_initiate"
    AUCTION_BID = "auction_bid"
    AUCTION_FINALIZE = "auction_finalize"
    ORACLE_UPDATE = "oracle_update"
    OTHER = "other"


@dataclass
class Transaction:
    """A pending or executed transaction.

    Attributes
    ----------
    sender:
        The externally-owned account submitting the transaction (borrower,
        liquidator, keeper, oracle poster …).
    gas_price:
        Bid in wei per unit of gas.  Competition for liquidations is
        expressed by liquidators raising this bid.
    gas_limit:
        Upper bound of gas the sender is willing to consume; also the amount
        the mempool reserves when packing blocks.
    action:
        A zero-argument callable executed when the transaction is included in
        a block.  It returns an arbitrary result and may raise
        :class:`TransactionReverted` to signal an on-chain revert (e.g. an
        unprofitable flash-loan liquidation).
    kind:
        Coarse action classification used by analytics.
    metadata:
        Free-form annotations (platform name, borrower address, …) consumed
        by analytics and tests.
    """

    sender: Address
    gas_price: int
    gas_limit: int
    action: Optional[Callable[[], Any]] = None
    kind: TxKind = TxKind.OTHER
    metadata: dict[str, Any] = field(default_factory=dict)
    tx_hash: str = field(default_factory=make_tx_hash)
    submitted_block: int = 0
    status: TxStatus = TxStatus.PENDING

    @property
    def gas_price_gwei(self) -> float:
        """The gas-price bid expressed in gwei (as plotted in Figure 6)."""
        return self.gas_price / GWEI

    def fee_wei(self, gas_used: int | None = None) -> int:
        """Transaction fee in wei for ``gas_used`` units (defaults to limit)."""
        used = self.gas_limit if gas_used is None else gas_used
        return used * self.gas_price

    def fee_eth(self, gas_used: int | None = None) -> float:
        """Transaction fee in ETH."""
        return self.fee_wei(gas_used) / 10**18


class TransactionReverted(Exception):
    """Raised by a transaction action to signal an on-chain revert.

    A reverted transaction still consumes gas (and therefore still pays a
    fee), but produces no state change and no events — matching Ethereum
    semantics and, importantly, the atomic flash-loan behaviour described in
    Section 2.2.2 ("the whole transaction is reverted without incurring any
    state change").
    """


@dataclass
class Receipt:
    """The result of executing a transaction inside a block."""

    tx_hash: str
    sender: Address
    block_number: int
    status: TxStatus
    gas_used: int
    gas_price: int
    kind: TxKind
    result: Any = None
    error: str | None = None
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def fee_wei(self) -> int:
        """Total fee paid, in wei."""
        return self.gas_used * self.gas_price

    @property
    def fee_eth(self) -> float:
        """Total fee paid, in ETH."""
        return self.fee_wei / 10**18

    @property
    def gas_price_gwei(self) -> float:
        """Gas price paid, in gwei."""
        return self.gas_price / GWEI

    @property
    def succeeded(self) -> bool:
        """Whether the transaction executed without reverting."""
        return self.status is TxStatus.SUCCESS
