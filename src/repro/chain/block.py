"""Block data structure.

Blocks aggregate executed transactions and carry the timestamp used by
time-based measurements (auction durations in Figure 7, monthly aggregation
in Figures 5 and 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .receipts import summarize_gas
from .transaction import Receipt, TxKind


@dataclass
class Block:
    """A mined block of the simulated chain.

    Attributes
    ----------
    number:
        Monotonically increasing block height, starting at the scenario's
        configured inception block.
    timestamp:
        Unix timestamp (seconds).  Timestamps advance by the configured
        inter-block time so that block spans convert to wall-clock durations.
    receipts:
        The executed transactions, in inclusion order.
    gas_limit:
        Maximum gas the block could have packed.
    gas_used:
        Gas actually consumed by the included transactions.
    base_gas_price:
        The prevailing "market" gas price (wei) at the time the block was
        mined.  The analytics layer computes moving averages over this series
        to reproduce the average-gas-price curve of Figure 6.
    """

    number: int
    timestamp: int
    receipts: list[Receipt] = field(default_factory=list)
    gas_limit: int = 0
    gas_used: int = 0
    base_gas_price: int = 0

    def __post_init__(self) -> None:
        if not self.gas_used and self.receipts:
            self.gas_used = summarize_gas(self.receipts)

    @property
    def median_gas_price(self) -> float:
        """Median gas price (wei) of the block's transactions.

        Falls back to the prevailing base gas price for empty blocks so the
        moving-average series in Figure 6 has no gaps.
        """
        if not self.receipts:
            return float(self.base_gas_price)
        prices = sorted(receipt.gas_price for receipt in self.receipts)
        mid = len(prices) // 2
        if len(prices) % 2:
            return float(prices[mid])
        return (prices[mid - 1] + prices[mid]) / 2.0

    @property
    def utilization(self) -> float:
        """Fraction of the gas limit consumed (1.0 means a full block)."""
        if self.gas_limit <= 0:
            return 0.0
        return self.gas_used / self.gas_limit

    def transactions_of_kind(self, kind: TxKind) -> list[Receipt]:
        """Return receipts whose transaction kind equals ``kind``."""
        return [receipt for receipt in self.receipts if receipt.kind == kind]
