"""The simulated blockchain: block production, execution and the archive.

This is the substrate standing in for the paper's Ethereum full archive node
(Section 4.1).  It provides

* block production with gas-price-ordered inclusion from a mempool,
* execution of transaction actions with revert semantics,
* an append-only :class:`~repro.chain.events.EventStore` of EVM-style logs,
* an *archive*: named state snapshots keyed by block number so analytics can
  read "the borrowing position debt amount at a specific block" exactly as
  the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from .. import sanitize
from ..telemetry.runtime import span
from .block import Block
from .events import EventFilter, EventLog, EventStore
from .gas import GasMarket
from .mempool import Mempool
from .transaction import Receipt, Transaction, TransactionReverted, TxKind, TxStatus
from .types import Address, DEFAULT_BLOCK_GAS_LIMIT, SECONDS_PER_BLOCK


@dataclass
class ChainConfig:
    """Static parameters of the simulated chain.

    ``blocks_per_step`` lets the simulator advance the chain in strides: one
    call to :meth:`Blockchain.mine_block` then represents ``blocks_per_step``
    real blocks (the block number and timestamp jump accordingly and the gas
    budget available to the mempool scales with the stride).  Two years of
    Ethereum history is ≈ 4.7 M blocks — far finer resolution than the
    paper's monthly/percent-level results need — so scenario runs use strides
    of a few hundred blocks while unit tests keep the default of 1.
    """

    inception_block: int = 8_000_000
    inception_timestamp: int = 1_561_000_000  # ≈ 2019-06-20, matching Figure 4's x-axis
    block_gas_limit: int = DEFAULT_BLOCK_GAS_LIMIT
    seconds_per_block: int = SECONDS_PER_BLOCK
    snapshot_interval: int = 0  # 0 disables periodic snapshots
    blocks_per_step: int = 1


class Blockchain:
    """A minimal, deterministic Ethereum-like chain.

    The chain owns the mempool, the gas market, the event store and the
    archive of state snapshots.  Protocol contracts hold a reference to the
    chain so they can emit events and read the current block number.
    """

    def __init__(self, config: ChainConfig | None = None, gas_market: GasMarket | None = None) -> None:
        self.config = config or ChainConfig()
        self.gas_market = gas_market or GasMarket()
        self.mempool = Mempool()
        self.events = EventStore()
        self.blocks: list[Block] = []
        self.receipts_by_hash: dict[str, Receipt] = {}
        self._snapshots: dict[int, dict[str, Any]] = {}
        self._snapshot_providers: dict[str, Callable[[], Any]] = {}
        self._current_block = self.config.inception_block
        self._current_timestamp = self.config.inception_timestamp
        self._log_index = 0
        self._executing_block: int | None = None
        self._block_receipts: list[Receipt] | None = None

    # ------------------------------------------------------------------ #
    # Chain head information
    # ------------------------------------------------------------------ #
    @property
    def current_block(self) -> int:
        """The next block number to be mined (i.e. the pending block)."""
        return self._current_block

    @property
    def latest_block(self) -> Block | None:
        """The most recently mined block, if any."""
        return self.blocks[-1] if self.blocks else None

    @property
    def current_timestamp(self) -> int:
        """Timestamp that the next mined block will carry."""
        return self._current_timestamp

    def timestamp_of_block(self, block_number: int) -> int:
        """Timestamp of an arbitrary block number (mined or future)."""
        delta = block_number - self.config.inception_block
        return self.config.inception_timestamp + delta * self.config.seconds_per_block

    # ------------------------------------------------------------------ #
    # Transaction submission and block production
    # ------------------------------------------------------------------ #
    def submit(self, transaction: Transaction) -> str:
        """Place a transaction into the mempool and return its hash."""
        self.mempool.submit(transaction, self._current_block)
        return transaction.tx_hash

    def submit_call(
        self,
        sender: Address,
        action: Callable[[], Any],
        gas_price: int,
        gas_limit: int,
        kind: TxKind = TxKind.OTHER,
        metadata: dict[str, Any] | None = None,
    ) -> Transaction:
        """Convenience wrapper building and submitting a :class:`Transaction`."""
        tx = Transaction(
            sender=sender,
            gas_price=gas_price,
            gas_limit=gas_limit,
            action=action,
            kind=kind,
            metadata=metadata or {},
        )
        self.submit(tx)
        return tx

    def mine_block(self) -> Block:
        """Mine one block (or block stride): execute pending transactions.

        With ``blocks_per_step > 1`` the produced :class:`Block` stands for a
        whole stride of real blocks: its gas capacity is scaled by the stride
        and the chain head jumps by the stride afterwards.
        """
        stride = max(self.config.blocks_per_step, 1)
        base_price = self.gas_market.base_gas_price_wei
        gas_budget = self.config.block_gas_limit * stride
        # ``chain.pack`` covers the mempool work (expiry sweep + heap pops),
        # ``chain.execute`` the transaction actions — the two halves of the
        # per-stride mining cost a trace needs to tell apart.
        with span("chain.pack"):
            selected = self.mempool.select_for_block(
                gas_budget,
                self._current_block,
                min_gas_price=self.gas_market.min_inclusion_gas_price_wei,
            )
        receipts: list[Receipt] = []
        self._executing_block = self._current_block
        self._block_receipts = receipts
        with span("chain.execute"):
            for tx in selected:
                receipt = self._execute(tx)
                receipts.append(receipt)
        self._executing_block = None
        self._block_receipts = None
        block = Block(
            number=self._current_block,
            timestamp=self._current_timestamp,
            receipts=receipts,
            gas_limit=gas_budget,
            base_gas_price=base_price,
        )
        # Direct executions may have attached receipts mid-block without
        # going through packing; charge the block's gas accounting only for
        # what the mempool selection actually consumed of the budget.
        block.gas_used = sum(tx.gas_limit for tx in selected)
        self.blocks.append(block)
        if self.config.snapshot_interval and (
            (block.number - self.config.inception_block) % self.config.snapshot_interval < stride
        ):
            self.take_snapshot(block.number)
        self._current_block += stride
        self._current_timestamp += self.config.seconds_per_block * stride
        # EVM log indices are per block: the head advanced, so the next
        # block's logs start counting from zero again.
        self._log_index = 0
        self.gas_market.step()
        if sanitize.enabled():
            # Packing is the only code that pops the mempool's lazy views;
            # auditing the bookkeeping once per mined stride bounds any
            # desynchronisation to the block that introduced it.
            self.mempool.check_invariants()
        return block

    def _execute(self, tx: Transaction) -> Receipt:
        """Execute a single transaction with revert semantics."""
        status = TxStatus.SUCCESS
        result: Any = None
        error: str | None = None
        if tx.action is not None:
            try:
                result = tx.action()
            except TransactionReverted as exc:
                status = TxStatus.REVERTED
                error = str(exc)
        tx.status = status
        receipt = Receipt(
            tx_hash=tx.tx_hash,
            sender=tx.sender,
            block_number=self._current_block,
            status=status,
            gas_used=tx.gas_limit,
            gas_price=tx.gas_price,
            kind=tx.kind,
            result=result,
            error=error,
            metadata=dict(tx.metadata),
        )
        self.receipts_by_hash[tx.tx_hash] = receipt
        return receipt

    def execute_directly(
        self,
        sender: Address,
        action: Callable[[], Any],
        gas_price: int | None = None,
        gas_limit: int = 450_000,
        kind: TxKind = TxKind.OTHER,
        metadata: dict[str, Any] | None = None,
    ) -> Receipt:
        """Execute an action immediately inside the *pending* block.

        Used for setup actions (deposits, borrows when constructing a
        scenario snapshot) and for the case-study replay where the paper
        forks the chain and applies the strategy at an exact block.  The
        receipt is appended to the next mined block's receipt list only if a
        block is currently being produced (it does not count against the
        block's gas budget, having bypassed packing); otherwise it is
        recorded standalone.
        """
        tx = Transaction(
            sender=sender,
            gas_price=self.gas_market.base_gas_price_wei if gas_price is None else gas_price,
            gas_limit=gas_limit,
            action=action,
            kind=kind,
            metadata=metadata or {},
        )
        receipt = self._execute(tx)
        if self._block_receipts is not None:
            self._block_receipts.append(receipt)
        return receipt

    # ------------------------------------------------------------------ #
    # Events
    # ------------------------------------------------------------------ #
    def emit_event(self, name: str, emitter: Address, data: dict[str, Any], tx_hash: str = "") -> EventLog:
        """Record an EVM-style log emitted by a contract at the current block."""
        block_number = self._executing_block if self._executing_block is not None else self._current_block
        event = EventLog(
            name=name,
            emitter=emitter,
            block_number=block_number,
            tx_hash=tx_hash,
            log_index=self._log_index,
            data=dict(data),
        )
        self._log_index += 1
        self.events.append(event)
        return event

    def get_logs(self, event_filter: EventFilter) -> list[EventLog]:
        """Archive-node style filtered log query."""
        return self.events.filter(event_filter)

    # ------------------------------------------------------------------ #
    # Archive snapshots ("historical state query")
    # ------------------------------------------------------------------ #
    def register_snapshot_provider(self, name: str, provider: Callable[[], Any]) -> None:
        """Register a callable whose return value is captured in snapshots.

        Protocols register a provider returning a deep-copyable summary of
        their positions; the archive then supports the paper's historical
        state queries ("the borrowing position debt amount at a specific
        block").
        """
        self._snapshot_providers[name] = provider

    def take_snapshot(self, block_number: int | None = None) -> dict[str, Any]:
        """Capture the registered providers' state, keyed by block number."""
        number = self._current_block if block_number is None else block_number
        with span("chain.snapshot"):
            snapshot = {name: provider() for name, provider in self._snapshot_providers.items()}
        self._snapshots[number] = snapshot
        return snapshot

    def snapshot_at(self, block_number: int) -> dict[str, Any]:
        """Return the snapshot taken at exactly ``block_number``.

        Raises ``KeyError`` if no snapshot exists at that block, like an
        archive query against a pruned node would fail.
        """
        return self._snapshots[block_number]

    def nearest_snapshot(self, block_number: int) -> tuple[int, dict[str, Any]]:
        """Return the most recent snapshot at or before ``block_number``."""
        candidates = [number for number in self._snapshots if number <= block_number]
        if not candidates:
            raise KeyError(f"no snapshot at or before block {block_number}")
        best = max(candidates)
        return best, self._snapshots[best]

    @property
    def snapshot_blocks(self) -> list[int]:
        """Sorted list of block numbers with stored snapshots."""
        return sorted(self._snapshots)
