"""Blockchain substrate: blocks, transactions, gas market, mempool, events.

This package replaces the paper's Ethereum archive node + custom geth client
(Section 4.1) with a deterministic in-process simulator exposing the same
measurement surface: filtered event logs and historical state snapshots.
"""

from .block import Block
from .chain import Blockchain, ChainConfig
from .events import EventFilter, EventLog, EventStore
from .gas import GasMarket, GasMarketConfig, moving_average
from .mempool import Mempool
from .transaction import (
    Receipt,
    Transaction,
    TransactionReverted,
    TxKind,
    TxStatus,
)
from .types import (
    Address,
    BLOCKS_PER_DAY,
    DEFAULT_BLOCK_GAS_LIMIT,
    GWEI,
    LIQUIDATION_GAS,
    AUCTION_BID_GAS,
    POST_LIQUIDATION_WINDOW,
    SECONDS_PER_BLOCK,
    blocks_to_hours,
    from_gwei,
    gwei,
    hours_to_blocks,
    make_address,
    make_tx_hash,
    reset_id_counters,
)

__all__ = [
    "Address",
    "AUCTION_BID_GAS",
    "BLOCKS_PER_DAY",
    "Block",
    "Blockchain",
    "ChainConfig",
    "DEFAULT_BLOCK_GAS_LIMIT",
    "EventFilter",
    "EventLog",
    "EventStore",
    "GWEI",
    "GasMarket",
    "GasMarketConfig",
    "LIQUIDATION_GAS",
    "Mempool",
    "POST_LIQUIDATION_WINDOW",
    "Receipt",
    "SECONDS_PER_BLOCK",
    "Transaction",
    "TransactionReverted",
    "TxKind",
    "TxStatus",
    "blocks_to_hours",
    "from_gwei",
    "gwei",
    "hours_to_blocks",
    "make_address",
    "make_tx_hash",
    "moving_average",
    "reset_id_counters",
]
