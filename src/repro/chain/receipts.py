"""Small helpers shared by block construction and gas accounting."""

from __future__ import annotations

from typing import Iterable

from .transaction import Receipt


def summarize_gas(receipts: Iterable[Receipt]) -> int:
    """Total gas consumed by a collection of receipts."""
    return sum(receipt.gas_used for receipt in receipts)


def total_fees_eth(receipts: Iterable[Receipt]) -> float:
    """Total transaction fees paid by a collection of receipts, in ETH."""
    return sum(receipt.fee_eth for receipt in receipts)
