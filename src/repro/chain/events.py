"""EVM-style event logs and filtering.

The paper's measurement pipeline works by filtering *events* ("The Ethereum
events are essentially EVM logs … indexed by its signature … and the contract
address emitting this event", Section 4.1).  This module reproduces that
interface: protocol contracts emit :class:`EventLog` records into the chain,
and the analytics layer retrieves them through :class:`EventFilter` queries —
exactly the workflow of ``eth_getLogs`` against an archive node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from .types import Address


@dataclass(frozen=True)
class EventLog:
    """A single emitted event.

    Attributes
    ----------
    name:
        The event signature name, e.g. ``"LiquidationCall"`` (Aave),
        ``"LiquidateBorrow"`` (Compound), ``"Bite"`` / ``"Tend"`` / ``"Dent"``
        / ``"Deal"`` (MakerDAO) or ``"FlashLoan"``.
    emitter:
        Address of the contract that emitted the event (the lending pool,
        auction contract or flash-loan pool).
    block_number:
        Block in which the emitting transaction was included.
    tx_hash:
        Hash of the emitting transaction.
    log_index:
        Position of the log within the block, preserving intra-block order.
    data:
        The decoded event payload as a plain dictionary.
    """

    name: str
    emitter: Address
    block_number: int
    tx_hash: str
    log_index: int
    data: dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        """Convenience accessor mirroring ``dict.get`` on the payload."""
        return self.data.get(key, default)


@dataclass(frozen=True)
class EventFilter:
    """A declarative query over the chain's event logs.

    Mirrors the common archive-node filter parameters: a set of event names
    (signatures), a set of emitting addresses and a block range.  Any field
    left as ``None`` matches everything.
    """

    names: frozenset[str] | None = None
    emitters: frozenset[Address] | None = None
    from_block: int | None = None
    to_block: int | None = None

    @classmethod
    def create(
        cls,
        names: Iterable[str] | None = None,
        emitters: Iterable[Address] | None = None,
        from_block: int | None = None,
        to_block: int | None = None,
    ) -> "EventFilter":
        """Build a filter from plain iterables."""
        return cls(
            names=frozenset(names) if names is not None else None,
            emitters=frozenset(emitters) if emitters is not None else None,
            from_block=from_block,
            to_block=to_block,
        )

    def matches(self, event: EventLog) -> bool:
        """Return whether ``event`` satisfies every constraint of the filter."""
        if self.names is not None and event.name not in self.names:
            return False
        if self.emitters is not None and event.emitter not in self.emitters:
            return False
        if self.from_block is not None and event.block_number < self.from_block:
            return False
        if self.to_block is not None and event.block_number > self.to_block:
            return False
        return True


class EventStore:
    """Append-only store of every event emitted on the simulated chain.

    The store preserves emission order (block number, then log index) and
    supports filtered iteration.  It is intentionally simple — a list plus an
    index by event name — because the analytics pipeline reads it once per
    experiment, like a single pass over ``eth_getLogs`` results.
    """

    def __init__(self) -> None:
        self._events: list[EventLog] = []
        self._by_name: dict[str, list[EventLog]] = {}

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[EventLog]:
        return iter(self._events)

    def append(self, event: EventLog) -> None:
        """Record a newly emitted event."""
        self._events.append(event)
        self._by_name.setdefault(event.name, []).append(event)

    def filter(self, event_filter: EventFilter) -> list[EventLog]:
        """Return all events matching ``event_filter`` in emission order."""
        if event_filter.names is not None and len(event_filter.names) == 1:
            # Fast path: single-signature queries dominate the analytics.
            (name,) = event_filter.names
            candidates: Iterable[EventLog] = self._by_name.get(name, [])
        else:
            candidates = self._events
        return [event for event in candidates if event_filter.matches(event)]

    def by_name(self, name: str) -> list[EventLog]:
        """Return every event with signature ``name``."""
        return list(self._by_name.get(name, []))

    def since(self, offset: int) -> list[EventLog]:
        """Events appended at or after position ``offset``, in emission order.

        The store is append-only, so ``since(cursor)`` followed by
        ``cursor = len(store)`` is a complete, gap-free streaming read —
        this is how the engine translates fresh logs into typed
        :class:`~repro.observers.events.SimEvent` s after each stride.
        """
        return self._events[offset:]

    def names(self) -> set[str]:
        """Return the set of distinct event signatures seen so far."""
        return set(self._by_name)
