"""Tiered health-factor alerting with production semantics.

The per-run :class:`~repro.observers.probes.HealthFactorWatcher` alerts once
per threshold entry — right for a console narration, too chatty and too flat
for a fleet of concurrent runs.  The service's :class:`AlertEngine` consumes
the health-factor *samples* streamed by every worker and applies the
liquidation-alerter semantics the ROADMAP cites:

* **tiers** — ``warning`` below :attr:`AlertPolicy.warning_hf`, ``critical``
  below :attr:`AlertPolicy.critical_hf` (liquidatable territory);
* **per-position cooldowns** — once a position alerted at a tier, the same
  tier stays silent for :attr:`AlertPolicy.cooldown_blocks` simulated
  blocks; escalation to a higher tier is never suppressed by a lower tier's
  cooldown;
* **rapid-deterioration detection** — a health factor that fell by at least
  :attr:`AlertPolicy.deterioration_drop` within
  :attr:`AlertPolicy.deterioration_window_blocks` raises (or escalates) an
  alert even before the absolute thresholds would, because the *trajectory*
  is the emergency.

Everything is keyed on simulated block numbers, not wall clocks, so alert
sequences are deterministic for a deterministic stream and unit-testable
without sleeping.
"""

from __future__ import annotations

from collections import deque
from dataclasses import asdict, dataclass

__all__ = ["Alert", "AlertEngine", "AlertPolicy", "TIERS"]

#: Alert tiers, least to most severe.
TIERS: tuple[str, ...] = ("warning", "critical")


@dataclass(frozen=True)
class AlertPolicy:
    """Thresholds and damping applied to the streamed health-factor samples."""

    #: Tier thresholds: a position is ``warning`` below ``warning_hf`` and
    #: ``critical`` below ``critical_hf`` (HF < 1 means liquidatable).
    warning_hf: float = 1.05
    critical_hf: float = 1.0
    #: Simulated blocks a raised tier stays silent for the same position.
    cooldown_blocks: int = 7_200
    #: Rapid deterioration: a drop of at least ``deterioration_drop`` in HF
    #: within ``deterioration_window_blocks`` raises/escalates an alert.
    deterioration_window_blocks: int = 2_400
    deterioration_drop: float = 0.05
    #: Ring-buffer capacity of the retained alert log (counters are exact).
    max_alerts: int = 1_000

    def __post_init__(self) -> None:
        if self.critical_hf > self.warning_hf:
            raise ValueError(
                f"critical_hf ({self.critical_hf}) must not exceed warning_hf ({self.warning_hf})"
            )
        if self.cooldown_blocks < 0 or self.deterioration_window_blocks < 0:
            raise ValueError("cooldown and deterioration windows must be >= 0")

    def describe(self) -> dict:
        """The policy as a JSON-ready dict (served under ``/alerts``)."""
        return asdict(self)


@dataclass(frozen=True)
class Alert:
    """One raised alert, ready for the ``/alerts`` endpoint."""

    job_id: str
    run_id: str
    platform: str
    owner: str
    tier: str  # "warning" | "critical"
    reason: str  # "threshold" | "rapid-deterioration"
    health_factor: float
    previous_health_factor: float | None
    debt_usd: float
    block_number: int

    def payload(self) -> dict:
        return asdict(self)


class AlertEngine:
    """Folds health-factor samples into tiered, damped alerts."""

    def __init__(self, policy: AlertPolicy | None = None) -> None:
        self.policy = policy or AlertPolicy()
        self.alerts: deque[Alert] = deque(maxlen=self.policy.max_alerts)
        self.counts: dict[str, int] = {tier: 0 for tier in TIERS}
        self.samples_seen = 0
        # Per-position state, keyed by (job_id, run_id, platform, owner).
        self._last: dict[tuple[str, str, str, str], tuple[int, float]] = {}
        self._cooldown_until: dict[tuple[tuple[str, str, str, str], str], int] = {}

    def observe(
        self,
        *,
        job_id: str,
        run_id: str,
        platform: str,
        owner: str,
        health_factor: float,
        debt_usd: float,
        block_number: int,
    ) -> list[Alert]:
        """Fold one sample in; returns the alerts it raised (possibly none)."""
        policy = self.policy
        self.samples_seen += 1
        key = (job_id, run_id, platform, owner)
        previous = self._last.get(key)
        self._last[key] = (block_number, health_factor)

        if health_factor < policy.critical_hf:
            tier: str | None = "critical"
        elif health_factor < policy.warning_hf:
            tier = "warning"
        else:
            tier = None
        reason = "threshold"

        if previous is not None:
            previous_block, previous_hf = previous
            rapid = (
                block_number - previous_block <= policy.deterioration_window_blocks
                and previous_hf - health_factor >= policy.deterioration_drop
            )
            if rapid:
                # The trajectory escalates one tier (and is itself alertable
                # even while the absolute level is still healthy).
                tier = "critical" if tier is not None else "warning"
                reason = "rapid-deterioration"

        if tier is None:
            return []
        if self._cooldown_until.get((key, tier), -1) > block_number:
            return []
        self._cooldown_until[(key, tier)] = block_number + policy.cooldown_blocks
        alert = Alert(
            job_id=job_id,
            run_id=run_id,
            platform=platform,
            owner=owner,
            tier=tier,
            reason=reason,
            health_factor=health_factor,
            previous_health_factor=previous[1] if previous is not None else None,
            debt_usd=debt_usd,
            block_number=block_number,
        )
        self.alerts.append(alert)
        self.counts[tier] += 1
        return [alert]

    def clear_run(self, job_id: str, run_id: str) -> None:
        """Drop the per-position state of a finished run (bounded memory)."""
        scope = (job_id, run_id)
        self._last = {key: value for key, value in self._last.items() if key[:2] != scope}
        self._cooldown_until = {
            (key, tier): block
            for (key, tier), block in self._cooldown_until.items()
            if key[:2] != scope
        }

    def payload(self, *, limit: int | None = None) -> dict:
        """The ``/alerts`` endpoint body: recent alerts plus exact counters."""
        recent = list(self.alerts)
        if limit is not None:
            recent = recent[-limit:]
        return {
            "policy": self.policy.describe(),
            "counts": dict(self.counts),
            "samples_seen": self.samples_seen,
            "alerts": [alert.payload() for alert in recent],
        }
