"""The JSONL pipe transport: typed events across a process boundary.

The service worker serialises every :class:`~repro.observers.events.SimEvent`
as one JSON line (the :class:`~repro.observers.sinks.JsonlSink` contract) on
its stdout pipe; the supervisor parses the stream back into typed events on
the parent side.  This module owns both directions of that contract:

* :func:`event_from_payload` — the exact inverse of
  :meth:`SimEvent.payload`, rebuilding the typed event (including the
  nested :class:`~repro.analytics.records.LiquidationRecord` that
  ``LiquidationSettled`` flattens into its payload);
* :class:`EventStreamDecoder` — an incremental line decoder that survives
  the realities of a pipe: chunks split mid-line, a final truncated line
  when the producer is killed mid-write, and the occasional malformed line
  (dropped and counted, never fatal).

Lines that are JSON objects but not events (no ``"event"`` key) are service
messages — health-factor samples, job results — and are passed through as
plain dicts for the supervisor to dispatch on their ``"service"`` key.

Back-pressure is inherited from the OS pipe: a slow consumer fills the pipe
buffer and the producer's blocking ``write`` stalls until the reader drains
it, so events are throttled, never dropped (pinned by test).
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Iterator, Union

from ..analytics.records import LiquidationRecord
from ..observers import events as _events
from ..observers.events import LiquidationSettled, SimEvent

__all__ = [
    "EVENT_TYPES",
    "EventStreamDecoder",
    "decode_line",
    "encode_message",
    "event_from_payload",
]

#: Every concrete event class of the taxonomy, keyed by its ``kind`` name —
#: collected by introspection so a taxonomy extension is picked up here
#: without a registry edit (mirroring the EVT004 lint rule's fresh parse).
EVENT_TYPES: dict[str, type[SimEvent]] = {
    obj.__name__: obj
    for obj in vars(_events).values()
    if isinstance(obj, type) and issubclass(obj, SimEvent) and obj is not SimEvent
}

_RECORD_FIELDS = tuple(field.name for field in dataclasses.fields(LiquidationRecord))

#: A decoded line: a typed event, or a service message passed through.
Message = Union[SimEvent, dict]


def encode_message(payload: dict[str, Any]) -> str:
    """One service-message line (same sorted-keys convention as the sink)."""
    return json.dumps(payload, sort_keys=True) + "\n"


def event_from_payload(payload: dict[str, Any]) -> SimEvent:
    """Rebuild the typed event a :meth:`SimEvent.payload` dict came from.

    Raises ``KeyError`` for an unknown kind and ``TypeError`` for a payload
    whose fields do not match the event class — both count as malformed
    lines to the :class:`EventStreamDecoder`.
    """
    kind = payload["event"]
    event_type = EVENT_TYPES[kind]
    if event_type is LiquidationSettled:
        record = LiquidationRecord(**{name: payload[name] for name in _RECORD_FIELDS})
        return LiquidationSettled(
            step_index=payload["step_index"],
            block_number=payload["block_number"],
            record=record,
        )
    kwargs: dict[str, Any] = {}
    for field in dataclasses.fields(event_type):
        value = payload[field.name]
        # ``payload()`` runs through dataclasses.asdict, which renders
        # tuples (e.g. InterestAccrued.protocols) as JSON arrays.
        kwargs[field.name] = tuple(value) if isinstance(value, list) else value
    return event_type(**kwargs)


def decode_line(line: str) -> Message | None:
    """Decode one transport line; ``None`` means malformed (skip it)."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(payload, dict):
        return None
    if "event" in payload:
        try:
            return event_from_payload(payload)
        except (KeyError, TypeError):
            return None
    return payload


class EventStreamDecoder:
    """Incremental decoder of the JSONL pipe stream.

    Feed it chunks as they arrive (any split, including mid-line) and it
    yields complete messages; call :meth:`flush` at EOF to account for a
    truncated final line.  Malformed lines are dropped and counted — a
    worker killed mid-write must never poison the supervisor's stream.
    """

    def __init__(self) -> None:
        self._buffer = ""
        self.events_decoded = 0
        self.service_messages = 0
        self.lines_dropped = 0
        #: The most recent dropped line (truncated to keep memory bounded).
        self.last_dropped: str | None = None

    def feed(self, chunk: str) -> Iterator[Message]:
        """Decode every complete line in ``chunk`` plus any buffered prefix."""
        self._buffer += chunk
        while True:
            line, separator, rest = self._buffer.partition("\n")
            if not separator:
                break
            self._buffer = rest
            message = self._decode(line)
            if message is not None:
                yield message

    def flush(self) -> Iterator[Message]:
        """Finish the stream: a leftover partial line is truncated output.

        A complete JSON object that merely lost its trailing newline (the
        producer exited between ``write`` and the final flush) still decodes;
        anything else is counted as dropped.
        """
        tail, self._buffer = self._buffer, ""
        if tail.strip():
            message = self._decode(tail)
            if message is not None:
                yield message

    def _decode(self, line: str) -> Message | None:
        if not line.strip():
            return None
        message = decode_line(line)
        if message is None:
            self.lines_dropped += 1
            self.last_dropped = line[:200]
        elif isinstance(message, SimEvent):
            self.events_decoded += 1
        else:
            self.service_messages += 1
        return message
