"""Worker-side probes feeding the service's pipe transport.

These run *inside* the worker subprocess, attached to the engine's observer
bus next to the standard recorder/metrics probes.  Like every probe they are
passive — they read cached valuations but never mutate the world — so a
service-executed run stays bit-identical to a standalone one (the store
equivalence test in ``tests/test_service.py`` pins this for every registered
scenario).
"""

from __future__ import annotations

from typing import IO, TYPE_CHECKING, Iterable

import numpy as np

from ..observers.events import (
    AuctionDealt,
    BlockMined,
    IncidentFired,
    InterestAccrued,
    LiquidationSettled,
    PriceUpdated,
    RunCompleted,
    RunStarted,
    SimEvent,
    SnapshotTaken,
    StepStarted,
)
from .transport import encode_message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..protocols.base import LendingProtocol

__all__ = ["HealthSampleProbe"]


class HealthSampleProbe:
    """Streams below-threshold health-factor samples to the supervisor.

    Where :class:`~repro.observers.probes.HealthFactorWatcher` alerts once
    per threshold *entry*, the service needs the raw trajectory: the parent's
    :class:`~repro.service.alerts.AlertEngine` owns tiering, cooldowns and
    rapid-deterioration detection, and all three need repeated samples of
    the same position.  So this probe re-emits every at-risk position on
    every rescan — one ``hf_sample`` service line each — and leaves the
    policy to the consumer.

    The rescan schedule is the watcher's: only protocols whose position book
    holds a price-dirtied asset column (or that accrued interest this
    stride) are swept, riding the block's shared cached valuation.
    """

    #: Samples move on prices, accrual and mining; lifecycle/report events
    #: carry nothing a sampler reacts to.
    IGNORED_EVENTS = (
        AuctionDealt,
        IncidentFired,
        LiquidationSettled,
        RunCompleted,
        RunStarted,
        SnapshotTaken,
        StepStarted,
    )

    def __init__(
        self,
        handle: IO[str],
        protocols: Iterable["LendingProtocol"],
        sample_below: float = 1.1,
    ) -> None:
        self.handle = handle
        self.protocols = list(protocols)
        self.sample_below = float(sample_below)
        self.samples_written = 0
        self._dirty_symbols: set[str] = set()
        self._accrued_protocols: set[str] = set()

    def on_event(self, event: SimEvent) -> None:
        if isinstance(event, PriceUpdated):
            self._dirty_symbols.add(event.symbol.upper())
        elif isinstance(event, InterestAccrued):
            self._accrued_protocols.update(event.protocols)
        elif isinstance(event, BlockMined):
            self._sample(event)

    def _sample(self, event: BlockMined) -> None:
        if not self._dirty_symbols and not self._accrued_protocols:
            return
        dirty = self._dirty_symbols
        accrued = self._accrued_protocols
        self._dirty_symbols = set()
        self._accrued_protocols = set()
        for protocol in self.protocols:
            if protocol.name not in accrued and not dirty.intersection(protocol.book.assets):
                continue
            valuation = protocol.valuation()
            health = valuation.health_factors()
            for row in np.flatnonzero(health < self.sample_below).tolist():
                position = valuation.book.position_at(row)
                self.handle.write(
                    encode_message(
                        {
                            "service": "hf_sample",
                            "platform": protocol.name,
                            "owner": position.owner.value,
                            "health_factor": float(health[row]),
                            "debt_usd": float(valuation.debt_usd[row]),
                            "block_number": event.block_number,
                            "step_index": event.step_index,
                        }
                    )
                )
                self.samples_written += 1

    def finalize(self) -> None:
        """Flush so the last strides' samples reach the parent before exit."""
        self.handle.flush()
