"""Service job model: submissions, per-run states, and the restart journal.

A *job* is what clients submit — a single scenario run or a campaign sweep —
and it expands into one or more :class:`~repro.campaigns.spec.RunSpec` s,
the unit a worker subprocess executes.  Sweeps reuse
:class:`~repro.campaigns.spec.CampaignSpec` wholesale, so the service's grid
and seed semantics are exactly ``repro sweep``'s.

The journal is a single JSON file next to the run store
(``<store>/service-journal.json``, written atomically) recording every
submitted job and its per-run statuses.  On restart the supervisor re-enqueues
every journalled job that has not reached a terminal state; runs that already
completed are caught by the store's manifest check
(:meth:`~repro.campaigns.store.RunStore.is_complete`) and reported as
``resumed`` without re-simulating — together they are the service's
resume-on-restart contract.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from ..campaigns.spec import CampaignSpec, RunSpec, _coerce
from ..experiments.runner import EXPERIMENT_IDS
from ..scenarios import get as get_scenario

__all__ = [
    "JOURNAL_NAME",
    "JobRecord",
    "RunState",
    "ServiceJournal",
    "SubmissionError",
    "expand_job",
]

JOURNAL_NAME = "service-journal.json"

#: Per-run statuses.  ``resumed`` means the store already held a completed
#: manifest for the exact ``(scenario, overrides, seed)`` key.
RUN_STATUSES = ("queued", "running", "completed", "failed", "resumed", "interrupted")

#: Job states a restarted service does not re-enqueue.
TERMINAL_JOB_STATES = frozenset({"completed", "failed"})


class SubmissionError(ValueError):
    """A job submission payload that cannot be expanded into runs."""


@dataclass
class RunState:
    """One run of a job: its spec plus live progress from the event stream."""

    spec: RunSpec
    status: str = "queued"
    error: str | None = None
    # Live progress, folded from the streamed events by the supervisor.
    steps: int = 0
    blocks: int = 0
    last_block: int = 0
    liquidations: int = 0
    incidents: int = 0
    events: int = 0
    alerts: int = 0

    def payload(self) -> dict[str, Any]:
        return {
            "run_id": self.spec.run_id,
            "scenario": self.spec.scenario,
            "seed": self.spec.seed,
            "variant": self.spec.variant,
            "status": self.status,
            "error": self.error,
            "steps": self.steps,
            "blocks": self.blocks,
            "last_block": self.last_block,
            "liquidations": self.liquidations,
            "incidents": self.incidents,
            "events": self.events,
            "alerts": self.alerts,
        }


@dataclass
class JobRecord:
    """One submitted job and the states of its expanded runs."""

    job_id: str
    kind: str  # "run" | "sweep"
    campaign: str
    submission: dict[str, Any]  # normalised payload, journalled for restart
    experiments: tuple[str, ...]
    runs: dict[str, RunState] = field(default_factory=dict)

    @property
    def state(self) -> str:
        """Derived job state: queued → running → completed/failed/interrupted."""
        statuses = {run.status for run in self.runs.values()}
        if not statuses or statuses <= {"queued"}:
            return "queued"
        if "running" in statuses or "queued" in statuses:
            return "running"
        if "interrupted" in statuses:
            return "interrupted"
        if "failed" in statuses:
            return "failed"
        return "completed"

    def counts(self) -> dict[str, int]:
        out = {status: 0 for status in RUN_STATUSES}
        for run in self.runs.values():
            out[run.status] += 1
        out["total"] = len(self.runs)
        return out

    def summary(self) -> dict[str, Any]:
        """The ``/jobs`` listing entry."""
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "campaign": self.campaign,
            "scenario": self.submission.get("scenario"),
            "state": self.state,
            "runs": self.counts(),
        }

    def detail(self) -> dict[str, Any]:
        """The ``/jobs/<id>`` body: the summary plus every run's progress."""
        body = self.summary()
        body["experiments"] = list(self.experiments)
        body["submission"] = self.submission
        body["run_states"] = [
            self.runs[run_id].payload() for run_id in sorted(self.runs)
        ]
        return body


def _normalise_overrides(raw: Any) -> dict[str, float | int]:
    if raw is None:
        return {}
    if not isinstance(raw, Mapping):
        raise SubmissionError("overrides must be an object of KEY: VALUE pairs")
    try:
        return {key: _coerce(key, value) for key, value in raw.items()}
    except (KeyError, ValueError, TypeError) as exc:
        raise SubmissionError(str(exc.args[0] if exc.args else exc)) from exc


def _check_experiments(experiment_ids: Any) -> tuple[str, ...]:
    if experiment_ids is None:
        return EXPERIMENT_IDS
    ids = tuple(dict.fromkeys(experiment_ids))
    unknown = [eid for eid in ids if eid not in EXPERIMENT_IDS]
    if unknown:
        raise SubmissionError(
            f"unknown experiment id(s) {', '.join(unknown)}; known: {', '.join(EXPERIMENT_IDS)}"
        )
    return ids


def expand_job(job_id: str, payload: Mapping[str, Any]) -> JobRecord:
    """Validate a submission payload and expand it into a :class:`JobRecord`.

    Two kinds are accepted:

    * ``{"kind": "run", "scenario": ..., "seed"?, "overrides"?,
      "experiments"?, "campaign"?}`` — one run; the seed defaults to the
      scenario's own, the campaign to the scenario name.
    * ``{"kind": "sweep", "scenario": ..., "seeds"?, "base_seed"?,
      "overrides"?, "grid"?, "experiments"?, "campaign"?}`` — a full
      campaign, expanded exactly as ``repro sweep`` would.

    Raises :class:`SubmissionError` with a client-presentable message for
    anything malformed (unknown scenario, override, or experiment id).
    """
    if not isinstance(payload, Mapping):
        raise SubmissionError("job payload must be a JSON object")
    kind = payload.get("kind", "run")
    scenario = payload.get("scenario")
    if not isinstance(scenario, str) or not scenario:
        raise SubmissionError("job payload needs a 'scenario' name")
    try:
        definition = get_scenario(scenario)
    except KeyError as exc:
        raise SubmissionError(str(exc.args[0])) from exc
    experiments = _check_experiments(payload.get("experiments"))
    overrides = _normalise_overrides(payload.get("overrides"))

    if kind == "run":
        seed = payload.get("seed")
        if seed is None:
            seed = definition.builder(None).config.seed
        seed = int(seed)
        campaign = str(payload.get("campaign") or scenario)
        spec = RunSpec(
            scenario=scenario,
            overrides=tuple(sorted(overrides.items())),
            seed=seed,
            seed_index=0,
            variant="base",
        )
        submission = {
            "kind": "run",
            "scenario": scenario,
            "seed": seed,
            "overrides": overrides,
            "experiments": list(experiments),
            "campaign": campaign,
        }
        record = JobRecord(
            job_id=job_id,
            kind="run",
            campaign=campaign,
            submission=submission,
            experiments=experiments,
        )
        record.runs[spec.run_id] = RunState(spec=spec)
        return record

    if kind == "sweep":
        grid = payload.get("grid") or {}
        if not isinstance(grid, Mapping):
            raise SubmissionError("grid must be an object of KEY: [VALUES] pairs")
        try:
            spec = CampaignSpec(
                scenario=scenario,
                seeds=int(payload.get("seeds", 1)),
                base_seed=int(payload.get("base_seed", 0)),
                overrides=overrides,
                grid={key: list(values) for key, values in grid.items()},
                experiments=experiments,
                name=payload.get("campaign"),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise SubmissionError(str(exc.args[0] if exc.args else exc)) from exc
        submission = {
            "kind": "sweep",
            "scenario": scenario,
            "seeds": spec.seeds,
            "base_seed": spec.base_seed,
            "overrides": dict(spec.overrides),
            "grid": {key: list(values) for key, values in spec.grid.items()},
            "experiments": list(experiments),
            "campaign": spec.campaign,
        }
        record = JobRecord(
            job_id=job_id,
            kind="sweep",
            campaign=spec.campaign,
            submission=submission,
            experiments=experiments,
        )
        for run in spec.runs():
            record.runs[run.run_id] = RunState(spec=run)
        return record

    raise SubmissionError(f"unknown job kind {kind!r}; expected 'run' or 'sweep'")


class ServiceJournal:
    """Atomic JSON journal of submitted jobs, for resume-on-restart."""

    def __init__(self, store_root: str | Path) -> None:
        self.path = Path(store_root) / JOURNAL_NAME

    def load(self) -> dict[str, Any]:
        """The journal contents (``{"next_job": n, "jobs": [...]}``)."""
        try:
            with self.path.open(encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return {"next_job": 1, "jobs": []}
        if not isinstance(data, dict):
            return {"next_job": 1, "jobs": []}
        data.setdefault("next_job", 1)
        data.setdefault("jobs", [])
        return data

    def save(self, next_job: int, records: list[JobRecord]) -> None:
        """Persist the job table (write-temp + rename, crash-atomic)."""
        payload = {
            "next_job": next_job,
            "jobs": [
                {
                    "job_id": record.job_id,
                    "kind": record.kind,
                    "campaign": record.campaign,
                    "submission": record.submission,
                    "state": record.state,
                    "runs": {
                        run_id: run.status for run_id, run in sorted(record.runs.items())
                    },
                }
                for record in records
            ],
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        temporary = self.path.with_suffix(".json.tmp")
        temporary.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        os.replace(temporary, self.path)

    def incomplete_jobs(self) -> list[dict[str, Any]]:
        """Journalled jobs a restarted service must re-enqueue (in order)."""
        return [
            entry
            for entry in self.load()["jobs"]
            if entry.get("state") not in TERMINAL_JOB_STATES
        ]
