"""The asyncio run supervisor behind ``repro serve``.

One process, three planes:

* **execution** — an :mod:`asyncio` loop with ``workers`` consumer tasks,
  each popping a queued run and executing it in a worker subprocess
  (``python -m repro.service.worker``) whose stdout is the JSONL pipe
  transport.  The parent decodes the stream live: typed events fold into
  per-run progress (:class:`RunProgress`) and the aggregate dashboard
  metrics; ``hf_sample`` lines feed the tiered
  :class:`~repro.service.alerts.AlertEngine`.  With
  ``ServiceConfig(backend=...)`` set to a campaign backend name, *sweep*
  runs route through the shared
  :class:`~repro.campaigns.backends.ExecutionBackend` interface instead —
  the persistent runtime's warm workers serve HTTP-submitted sweeps —
  while single runs keep the streaming path.
* **control** — job submission via :meth:`ServiceSupervisor.submit`
  (thread-safe; the HTTP ``POST /jobs`` route calls it from a server
  thread) and the journal + run-store resume contract on restart.
* **observation** — the extended
  :class:`~repro.telemetry.http.MetricsServer` surface: ``GET /jobs[/<id>]``,
  ``GET /alerts``, ``GET /health``, ``GET /metrics``.

Graceful drain: SIGINT/SIGTERM stops dispatching (queued runs stay
``queued`` in the journal), lets in-flight subprocesses finish for up to
``drain_timeout`` seconds, then terminates the stragglers — the workers
convert SIGTERM into a clean interrupted exit and the manifest-last store
contract keeps every interrupted run resumable.  The service then exits 0.
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from concurrent.futures import ThreadPoolExecutor

from ..campaigns.backends import ExecutionBackend, WorkerConfig
from ..campaigns.executor import RunJob
from ..campaigns.store import RunStore
from ..observers.events import (
    AuctionDealt,
    BlockMined,
    IncidentFired,
    InterestAccrued,
    LiquidationSettled,
    PriceUpdated,
    RunCompleted,
    RunStarted,
    SimEvent,
    SnapshotTaken,
    StepStarted,
)
from ..telemetry.http import MetricsServer
from ..telemetry.metrics import MetricsRegistry
from .alerts import AlertEngine, AlertPolicy, TIERS
from .jobs import JobRecord, RunState, ServiceJournal, SubmissionError, expand_job
from .signals import TERMINATION_SIGNALS
from .transport import EventStreamDecoder
from .worker import DEFAULT_SAMPLE_BELOW, job_payload

__all__ = ["ServiceConfig", "ServiceSupervisor", "ServiceSummary"]

#: Job states the ``repro_service_jobs`` gauge always reports (zero-filled).
_JOB_STATES = ("queued", "running", "completed", "failed", "interrupted")


@dataclass(frozen=True)
class ServiceConfig:
    """Everything ``repro serve`` needs to run a supervisor."""

    store_root: str = "runs"
    workers: int = 4
    #: How *sweep* jobs execute: ``"stream"`` (the default) runs every run in
    #: its own streaming worker subprocess — live events, health samples and
    #: alerts; any campaign backend name (``serial`` / ``spawn`` /
    #: ``persistent``) routes sweep runs through the shared
    #: :class:`~repro.campaigns.backends.ExecutionBackend` interface instead,
    #: trading live event streams for warm-worker throughput.  Single-run
    #: (``kind == "run"``) jobs always stream.
    backend: str = "stream"
    policy: AlertPolicy = field(default_factory=AlertPolicy)
    #: Worker-side sampling threshold; defaults to a margin above the
    #: warning tier so deterioration is visible before a tier is crossed.
    sample_below: float | None = None
    #: Seconds in-flight subprocesses get to finish after a drain begins
    #: before being terminated (0 terminates immediately).
    drain_timeout: float = 30.0
    telemetry: bool = True
    #: Re-enqueue incomplete journalled jobs on startup.
    resume: bool = True

    @property
    def effective_sample_below(self) -> float:
        if self.sample_below is not None:
            return self.sample_below
        return max(self.policy.warning_hf + 0.05, DEFAULT_SAMPLE_BELOW)

    @property
    def worker_config(self) -> WorkerConfig:
        """The campaign :class:`WorkerConfig` for non-stream sweep execution."""
        if self.backend == "stream":
            raise ValueError("the stream backend has no campaign WorkerConfig")
        return WorkerConfig.resolve(backend=self.backend, workers=self.workers)


class RunProgress:
    """Parent-side probe folding one run's decoded events into its state.

    Shaped like a bus probe (``on_event`` / ``finalize``) although it is fed
    by the pipe decoder rather than an in-process bus — the same taxonomy
    discipline (EVT004) applies: every event kind is either folded into the
    run's progress or deliberately listed as ignored.
    """

    #: Lifecycle/bookkeeping events that add nothing to the progress view
    #: beyond the generic event count.
    IGNORED_EVENTS = (
        AuctionDealt,
        InterestAccrued,
        PriceUpdated,
        RunCompleted,
        RunStarted,
        SnapshotTaken,
    )

    def __init__(self, run_state: RunState) -> None:
        self.run_state = run_state

    def on_event(self, event: SimEvent) -> None:
        state = self.run_state
        state.events += 1
        if isinstance(event, StepStarted):
            state.steps += 1
        elif isinstance(event, BlockMined):
            state.blocks += 1
            state.last_block = event.block_number
        elif isinstance(event, LiquidationSettled):
            state.liquidations += 1
        elif isinstance(event, IncidentFired):
            state.incidents += 1

    def finalize(self) -> None:
        """Nothing to seal; progress is folded live."""


@dataclass
class ServiceSummary:
    """What one :meth:`ServiceSupervisor.serve` lifetime processed."""

    jobs: int = 0
    completed_runs: int = 0
    failed_runs: int = 0
    resumed_runs: int = 0
    interrupted_runs: int = 0
    drained: bool = False


class ServiceSupervisor:
    """Accepts jobs, executes them concurrently, and serves their state."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.store = RunStore(self.config.store_root)
        self.journal = ServiceJournal(self.config.store_root)
        self.alerts = AlertEngine(self.config.policy)
        self.summary = ServiceSummary()
        # The jobs table is read by HTTP server threads and mutated by the
        # loop (and by pre-loop submissions): one lock guards both it and
        # the journal file.
        self._lock = threading.Lock()
        self._jobs: dict[str, JobRecord] = {}
        self._order: list[str] = []
        self._next_job = 1
        self._pending: list[tuple[JobRecord, RunState]] = []
        self._queue: asyncio.Queue | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._draining = False
        self._active_procs: set[asyncio.subprocess.Process] = set()
        # Non-stream sweep execution: the shared campaign backend plus the
        # thread pool its blocking execute_one calls run on.  Both lazy — a
        # stream-only service never pays for them.
        self._backend: ExecutionBackend | None = None
        self._backend_pool: ThreadPoolExecutor | None = None
        self._backend_active = 0
        self._dir_locks: dict[tuple[str, str], asyncio.Lock] = {}
        #: The live HTTP surface while serving with a port (tests read the
        #: bound ephemeral port off it).
        self.http_server: MetricsServer | None = None
        self.peak_active_runs = 0
        self._build_metrics()

    # ------------------------------------------------------------------ #
    # Metrics
    # ------------------------------------------------------------------ #
    def _build_metrics(self) -> None:
        registry = self.registry = MetricsRegistry()
        self._m_events = registry.counter(
            "repro_service_events_total", "Typed events decoded from worker streams", ("kind",)
        )
        self._m_runs = registry.counter(
            "repro_service_runs_total", "Run outcomes", ("status",)
        )
        self._m_liquidations = registry.counter(
            "repro_service_liquidations_total", "Liquidations settled across all runs"
        )
        self._m_samples = registry.counter(
            "repro_service_hf_samples_total", "Health-factor samples consumed"
        )
        self._m_alerts = registry.counter(
            "repro_service_alerts_total", "Alerts raised", ("tier",)
        )
        for tier in TIERS:  # zero-fill so scrapes always see both tiers
            self._m_alerts.labels(tier=tier)
        self._m_active = registry.gauge(
            "repro_service_active_runs", "Worker subprocesses currently executing"
        )
        self._m_peak = registry.gauge(
            "repro_service_peak_active_runs", "Maximum concurrent worker subprocesses"
        )
        self._m_queue = registry.gauge(
            "repro_service_queue_depth", "Runs waiting for a worker"
        )
        self._m_jobs = registry.gauge("repro_service_jobs", "Jobs by state", ("state",))
        self._m_dropped = registry.counter(
            "repro_service_lines_dropped_total", "Malformed or truncated transport lines"
        )

    def _refresh_job_gauge(self) -> None:
        counts = {state: 0 for state in _JOB_STATES}
        for record in self._jobs.values():
            counts[record.state] += 1
        for state, count in counts.items():
            self._m_jobs.labels(state=state).set(count)

    # ------------------------------------------------------------------ #
    # Submission (thread-safe)
    # ------------------------------------------------------------------ #
    def submit(self, payload: dict[str, Any], *, job_id: str | None = None) -> dict[str, Any]:
        """Validate and enqueue one job; returns its ``/jobs`` summary.

        Safe to call before :meth:`serve` (runs are queued until the loop
        starts) and from other threads while serving (the HTTP POST route).
        Raises :class:`~repro.service.jobs.SubmissionError` on bad payloads.
        """
        with self._lock:
            if job_id is None:
                job_id = f"job-{self._next_job:04d}"
                self._next_job += 1
            else:
                self._next_job = max(self._next_job, int(job_id.rsplit("-", 1)[-1]) + 1)
            record = expand_job(job_id, payload)
            self._jobs[record.job_id] = record
            self._order.append(record.job_id)
            self.summary.jobs += 1
            items = [(record, run_state) for _, run_state in sorted(record.runs.items())]
            self._refresh_job_gauge()
            self._save_journal_locked()
        for item in items:
            self._enqueue(item)
        return record.summary()

    def _enqueue(self, item: tuple[JobRecord, RunState]) -> None:
        loop, queue = self._loop, self._queue
        if loop is None or queue is None:
            self._pending.append(item)
        elif threading.get_ident() == getattr(loop, "_thread_ident", None):
            queue.put_nowait(item)
            self._m_queue.set(queue.qsize())
        else:
            loop.call_soon_threadsafe(self._enqueue_on_loop, item)

    def _enqueue_on_loop(self, item: tuple[JobRecord, RunState]) -> None:
        assert self._queue is not None
        self._queue.put_nowait(item)
        self._m_queue.set(self._queue.qsize())

    def _save_journal_locked(self) -> None:
        self.journal.save(self._next_job, [self._jobs[job_id] for job_id in self._order])

    def _save_journal(self) -> None:
        with self._lock:
            self._save_journal_locked()

    def _resume_from_journal(self) -> int:
        """Re-submit every journalled job that had not finished; returns count."""
        resumed = 0
        for entry in self.journal.incomplete_jobs():
            with self._lock:
                # Jobs submitted before serve() started are already live
                # (and journalled) — only re-enqueue truly orphaned entries.
                if entry.get("job_id") in self._jobs:
                    continue
            try:
                self.submit(entry["submission"], job_id=entry["job_id"])
            except (SubmissionError, KeyError, ValueError):
                continue  # a journal entry that no longer expands is dropped
            resumed += 1
        return resumed

    # ------------------------------------------------------------------ #
    # HTTP routes
    # ------------------------------------------------------------------ #
    def jobs_route(self, subpath: str) -> tuple[int, Any]:
        """``GET /jobs`` (listing) and ``GET /jobs/<id>`` (detail)."""
        with self._lock:
            if subpath:
                record = self._jobs.get(subpath)
                if record is None:
                    return 404, {"error": f"unknown job {subpath!r}"}
                return 200, record.detail()
            return 200, {
                "draining": self._draining,
                "jobs": [self._jobs[job_id].summary() for job_id in self._order],
            }

    def alerts_route(self, subpath: str) -> tuple[int, Any]:
        """``GET /alerts``: recent alerts, tier counters, the active policy."""
        with self._lock:
            return 200, self.alerts.payload()

    def submit_route(self, body: Any) -> tuple[int, Any]:
        """``POST /jobs``: submit a run or sweep job."""
        if self._draining:
            return 503, {"error": "service is draining; not accepting jobs"}
        try:
            summary = self.submit(body)
        except SubmissionError as error:
            return 400, {"error": str(error)}
        return 201, summary

    # ------------------------------------------------------------------ #
    # Drain
    # ------------------------------------------------------------------ #
    def begin_drain(self) -> None:
        """Stop dispatching; finish or terminate in-flight runs; then stop.

        Idempotent, and callable from signal handlers on the loop thread.
        """
        if self._draining:
            return
        self._draining = True
        self.summary.drained = True
        if self._loop is not None and self._queue is not None:
            for _ in range(self.config.workers):
                self._queue.put_nowait(_STOP)
            if self.config.drain_timeout <= 0:
                self._terminate_active()
            else:
                self._loop.call_later(self.config.drain_timeout, self._terminate_active)

    def _terminate_active(self) -> None:
        for proc in list(self._active_procs):
            if proc.returncode is None:
                try:
                    proc.terminate()
                except ProcessLookupError:  # pragma: no cover - exit race
                    pass
        backend = self._backend
        if backend is not None and self._backend_active:
            # Kill the campaign workers too: their in-flight runs come back
            # as failed outcomes and are recorded interrupted (resumable).
            backend.terminate()

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    async def serve(
        self,
        *,
        http_port: int | None = None,
        exit_when_idle: bool = False,
        install_signals: bool = True,
        announce=None,
    ) -> ServiceSummary:
        """Run the service until drained (or idle, with ``exit_when_idle``).

        ``announce`` (a ``str -> None`` callable) receives human status
        lines — the CLI passes its stderr printer.
        """
        loop = asyncio.get_running_loop()
        self._loop = loop
        loop._thread_ident = threading.get_ident()  # type: ignore[attr-defined]
        self._queue = asyncio.Queue()
        emit = announce or (lambda line: None)

        if self.config.resume:
            resumed = self._resume_from_journal()
            if resumed:
                emit(f"[service] re-enqueued {resumed} incomplete job(s) from the journal")
        for item in self._pending:
            self._queue.put_nowait(item)
        self._pending.clear()
        self._m_queue.set(self._queue.qsize())

        server = None
        if http_port is not None:
            server = self.http_server = MetricsServer(
                self.registry,
                port=http_port,
                json_routes={"/jobs": self.jobs_route, "/alerts": self.alerts_route},
                post_routes={"/jobs": self.submit_route},
            ).start()
            emit(f"[service] listening on http://127.0.0.1:{server.port} (/jobs /alerts /health /metrics)")

        installed: list = []
        if install_signals:
            for signum in TERMINATION_SIGNALS:
                try:
                    loop.add_signal_handler(signum, self.begin_drain)
                    installed.append(signum)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass

        workers = [
            asyncio.ensure_future(self._worker_loop(index, emit))
            for index in range(self.config.workers)
        ]
        idler = (
            asyncio.ensure_future(self._idle_watch())
            if exit_when_idle
            else None
        )
        try:
            await asyncio.gather(*workers)
        finally:
            if idler is not None:
                idler.cancel()
            for signum in installed:
                loop.remove_signal_handler(signum)
            if server is not None:
                server.stop()
            backend, self._backend = self._backend, None
            pool, self._backend_pool = self._backend_pool, None
            if backend is not None:
                backend.close()
            if pool is not None:
                pool.shutdown(wait=False)
            self._save_journal()
            self._loop = None
            self._queue = None
        emit(
            f"[service] drained: {self.summary.completed_runs} completed, "
            f"{self.summary.resumed_runs} resumed, {self.summary.failed_runs} failed, "
            f"{self.summary.interrupted_runs} interrupted"
        )
        return self.summary

    async def _idle_watch(self) -> None:
        """End the service once every submitted run has reached a terminal state."""
        assert self._queue is not None
        while True:
            await asyncio.sleep(0.2)
            if self._draining:
                return
            with self._lock:
                jobs_exist = bool(self._jobs)
                all_done = all(
                    record.state in ("completed", "failed", "interrupted")
                    for record in self._jobs.values()
                )
            if jobs_exist and all_done and self._queue.empty() and not self._active_procs:
                self.begin_drain()
                return

    async def _worker_loop(self, index: int, emit) -> None:
        assert self._queue is not None
        while True:
            item = await self._queue.get()
            self._m_queue.set(self._queue.qsize())
            if item is _STOP:
                return
            record, run_state = item
            if self._draining:
                continue  # stays "queued": the journal re-enqueues it on restart
            try:
                await self._execute(record, run_state, emit)
            except Exception as exc:  # noqa: BLE001 - supervisor must survive
                self._finish_run(record, run_state, "failed", f"{type(exc).__name__}: {exc}")
                emit(f"[service] {record.job_id}/{run_state.spec.run_id} supervisor error: {exc}")

    async def _execute(self, record: JobRecord, run_state: RunState, emit) -> None:
        spec = run_state.spec
        key = (record.campaign, spec.run_id)
        lock = self._dir_locks.setdefault(key, asyncio.Lock())
        async with lock:
            if self.store.is_complete(record.campaign, spec, record.experiments):
                self._finish_run(record, run_state, "resumed")
                emit(f"[service] {record.job_id}: resumed {spec.run_id} from the store")
                return
            run_state.status = "running"
            self._save_journal()
            self._refresh_gauges()
            if record.kind == "sweep" and self.config.backend != "stream":
                await self._run_via_backend(record, run_state, emit)
            else:
                await self._run_subprocess(record, run_state, emit)

    def _refresh_gauges(self) -> None:
        with self._lock:
            self._refresh_job_gauge()

    def _campaign_backend(self) -> tuple[ExecutionBackend, ThreadPoolExecutor]:
        """The shared campaign backend (and its dispatch pool), created lazily."""
        if self._backend is None:
            config = self.config.worker_config
            self._backend = config.create()
            self._backend_pool = ThreadPoolExecutor(
                max_workers=self.config.workers, thread_name_prefix="svc-backend"
            )
        assert self._backend_pool is not None
        return self._backend, self._backend_pool

    def _set_active(self, delta: int) -> None:
        self._backend_active += delta
        active = len(self._active_procs) + self._backend_active
        self.peak_active_runs = max(self.peak_active_runs, active)
        self._m_active.set(active)
        self._m_peak.set(self.peak_active_runs)

    async def _run_via_backend(self, record: JobRecord, run_state: RunState, emit) -> None:
        """Execute one sweep run through the shared campaign backend.

        The same :class:`~repro.campaigns.backends.ExecutionBackend` interface
        ``repro sweep`` uses — so a persistent backend's warm workers serve
        HTTP-submitted sweeps too.  ``execute_one`` is blocking, so it runs on
        the service's backend thread pool; the asyncio worker task just awaits
        the outcome.  No event stream exists on this path: progress is folded
        from the outcome, not per block.
        """
        spec = run_state.spec
        backend, pool = self._campaign_backend()
        job = RunJob(
            store_root=str(self.store.root),
            campaign=record.campaign,
            run=spec,
            experiments=record.experiments,
            collect_telemetry=self.config.telemetry,
            worker_config=self.config.worker_config,
        )
        self._set_active(+1)
        try:
            assert self._loop is not None
            outcome = await self._loop.run_in_executor(pool, backend.execute_one, job)
        finally:
            self._set_active(-1)
        if outcome.error is not None:
            if self._draining:
                # A drain terminated the backend mid-run: the store holds no
                # completed manifest, so the run resumes on restart.
                self._finish_run(record, run_state, "interrupted")
                emit(f"[service] {record.job_id}: interrupted {spec.run_id} (resumable)")
            else:
                self._finish_run(record, run_state, "failed", outcome.error)
                emit(f"[service] {record.job_id}: failed {spec.run_id}: {outcome.error}")
            return
        manifest = self.store.read_manifest(record.campaign, spec.run_id) or {}
        metrics = manifest.get("metrics") or {}
        liquidations = metrics.get("liquidations") or {}
        run_state.steps = int(metrics.get("steps", 0))
        run_state.blocks = int(metrics.get("blocks", 0))
        run_state.last_block = int(metrics.get("final_block") or 0)
        run_state.incidents = int(metrics.get("incidents_fired", 0))
        run_state.liquidations = int(liquidations.get("count", 0))
        self._m_liquidations.inc(run_state.liquidations)
        self._finish_run(record, run_state, "completed")
        emit(
            f"[service] {record.job_id}: completed {spec.run_id} via {backend.name} backend "
            f"({outcome.elapsed_seconds:.1f}s, {run_state.liquidations} liquidations)"
        )

    async def _run_subprocess(self, record: JobRecord, run_state: RunState, emit) -> None:
        spec = run_state.spec
        job = RunJob(
            store_root=str(self.store.root),
            campaign=record.campaign,
            run=spec,
            experiments=record.experiments,
            collect_telemetry=self.config.telemetry,
        )
        payload = job_payload(job, sample_below=self.config.effective_sample_below)
        env = dict(os.environ)
        src_dir = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = (
            f"{src_dir}{os.pathsep}{env['PYTHONPATH']}" if env.get("PYTHONPATH") else src_dir
        )
        proc = await asyncio.create_subprocess_exec(
            sys.executable,
            "-m",
            "repro.service.worker",
            json.dumps(payload),
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.PIPE,
            env=env,
            limit=1 << 20,
        )
        self._active_procs.add(proc)
        self._set_active(0)

        decoder = EventStreamDecoder()
        progress = RunProgress(run_state)
        result: dict[str, Any] = {}
        assert proc.stdout is not None and proc.stderr is not None
        stderr_task = asyncio.ensure_future(proc.stderr.read())
        try:
            while True:
                line = await proc.stdout.readline()
                if not line:
                    break
                for message in decoder.feed(line.decode("utf-8", "replace")):
                    self._dispatch(record, run_state, progress, message, result)
            for message in decoder.flush():
                self._dispatch(record, run_state, progress, message, result)
            stderr_text = (await stderr_task).decode("utf-8", "replace")
            returncode = await proc.wait()
        finally:
            self._active_procs.discard(proc)
            self._set_active(0)
        if decoder.lines_dropped:
            self._m_dropped.inc(decoder.lines_dropped)

        if result.get("interrupted"):
            self._finish_run(record, run_state, "interrupted")
            emit(f"[service] {record.job_id}: interrupted {spec.run_id} (resumable)")
        elif result.get("error"):
            self._finish_run(record, run_state, "failed", str(result["error"]))
            emit(f"[service] {record.job_id}: failed {spec.run_id}: {result['error']}")
        elif returncode != 0:
            tail = stderr_text.strip().splitlines()[-1] if stderr_text.strip() else ""
            status = "interrupted" if self._draining else "failed"
            self._finish_run(
                record, run_state, status,
                None if status == "interrupted" else f"worker exited {returncode}: {tail}",
            )
            emit(f"[service] {record.job_id}: worker for {spec.run_id} exited {returncode}")
        else:
            self._finish_run(record, run_state, "completed")
            emit(
                f"[service] {record.job_id}: completed {spec.run_id} "
                f"({run_state.blocks} blocks, {run_state.liquidations} liquidations, "
                f"{run_state.alerts} alerts)"
            )

    def _dispatch(
        self,
        record: JobRecord,
        run_state: RunState,
        progress: RunProgress,
        message,
        result: dict[str, Any],
    ) -> None:
        if isinstance(message, SimEvent):
            self._m_events.labels(kind=message.kind).inc()
            if isinstance(message, LiquidationSettled):
                self._m_liquidations.inc()
            progress.on_event(message)
            return
        kind = message.get("service")
        if kind == "hf_sample":
            self._m_samples.inc()
            with self._lock:
                raised = self.alerts.observe(
                    job_id=record.job_id,
                    run_id=run_state.spec.run_id,
                    platform=message["platform"],
                    owner=message["owner"],
                    health_factor=message["health_factor"],
                    debt_usd=message["debt_usd"],
                    block_number=message["block_number"],
                )
            run_state.alerts += len(raised)
            for alert in raised:
                self._m_alerts.labels(tier=alert.tier).inc()
        elif kind == "job_result":
            result.update(message)

    def _finish_run(
        self, record: JobRecord, run_state: RunState, status: str, error: str | None = None
    ) -> None:
        run_state.status = status
        run_state.error = error
        self._m_runs.labels(status=status).inc()
        if status == "completed":
            self.summary.completed_runs += 1
        elif status == "failed":
            self.summary.failed_runs += 1
        elif status == "resumed":
            self.summary.resumed_runs += 1
        elif status == "interrupted":
            self.summary.interrupted_runs += 1
        with self._lock:
            self.alerts.clear_run(record.job_id, run_state.spec.run_id)
            self._refresh_job_gauge()
            self._save_journal_locked()


#: Queue sentinel ending one worker loop.
_STOP = object()
