"""The service worker: one run per subprocess, events streamed to stdout.

The supervisor launches ``python -m repro.service.worker '<payload JSON>'``
per run.  The worker rebuilds the :class:`~repro.campaigns.spec.RunSpec`
from the payload, executes it through the campaign executor's
:func:`~repro.campaigns.executor.execute_job` — the exact code path a
standalone sweep takes, so the store artifacts are bit-identical — with two
extra probes attached: a :class:`~repro.observers.sinks.JsonlSink` writing
the full typed event stream to stdout and a
:class:`~repro.service.probes.HealthSampleProbe` interleaving ``hf_sample``
service lines for the parent's alert engine.  The final line is always a
``job_result`` service message; stderr carries anything human.

SIGTERM is delivered as ``KeyboardInterrupt`` (the shared
:mod:`~repro.service.signals` helper): a drained worker stops mid-run,
reports ``interrupted`` on its result line, and exits 0 — the store is
untouched mid-run except for experiment files without a manifest, which the
resume contract re-executes.
"""

from __future__ import annotations

import json
import sys
from typing import IO, Any, Sequence

from ..campaigns.executor import RunJob, execute_job
from ..campaigns.spec import RunSpec
from ..observers.sinks import JsonlSink
from ..telemetry.clock import perf_seconds
from .probes import HealthSampleProbe
from .signals import termination_as_interrupt
from .transport import encode_message

__all__ = ["job_payload", "main", "run_worker"]

#: Default sampling threshold: a margin above the default warning tier so
#: the alert engine sees positions approaching the tiers, not only in them.
DEFAULT_SAMPLE_BELOW = 1.1


def job_payload(
    job: RunJob, *, sample_below: float = DEFAULT_SAMPLE_BELOW
) -> dict[str, Any]:
    """The worker's argv payload for one run (plain JSON, no pickling)."""
    return {
        "store_root": job.store_root,
        "campaign": job.campaign,
        "scenario": job.run.scenario,
        "overrides": [[key, value] for key, value in job.run.overrides],
        "seed": job.run.seed,
        "seed_index": job.run.seed_index,
        "variant": job.run.variant,
        "experiments": list(job.experiments),
        "telemetry": job.collect_telemetry,
        "sample_below": sample_below,
    }


def job_from_payload(payload: dict[str, Any]) -> RunJob:
    """Rebuild the executor job from a :func:`job_payload` dict."""
    run = RunSpec(
        scenario=payload["scenario"],
        overrides=tuple((key, value) for key, value in payload["overrides"]),
        seed=payload["seed"],
        seed_index=payload["seed_index"],
        variant=payload["variant"],
    )
    return RunJob(
        store_root=payload["store_root"],
        campaign=payload["campaign"],
        run=run,
        experiments=tuple(payload["experiments"]),
        collect_telemetry=bool(payload.get("telemetry", True)),
    )


def run_worker(payload: dict[str, Any], stream: IO[str]) -> int:
    """Execute one run, streaming events and the final result to ``stream``."""
    job = job_from_payload(payload)
    sample_below = float(payload.get("sample_below", DEFAULT_SAMPLE_BELOW))
    sink = JsonlSink(stream)
    started = perf_seconds()
    try:
        with termination_as_interrupt():
            outcome = execute_job(
                job,
                extra_probes=(
                    lambda engine: sink,
                    lambda engine: HealthSampleProbe(
                        stream, engine.protocols, sample_below=sample_below
                    ),
                ),
            )
    except KeyboardInterrupt:
        # Drain: the run stops where it is; without a manifest the store
        # treats it as never-run, so a restarted service re-executes it.
        stream.write(
            encode_message(
                {
                    "service": "job_result",
                    "run_id": job.run.run_id,
                    "interrupted": True,
                    "error": None,
                    "elapsed_seconds": round(perf_seconds() - started, 3),
                    "events_streamed": sink.events_written,
                }
            )
        )
        stream.flush()
        return 0
    stream.write(
        encode_message(
            {
                "service": "job_result",
                "run_id": outcome.run_id,
                "interrupted": False,
                "error": outcome.error,
                "elapsed_seconds": round(outcome.elapsed_seconds, 3),
                "events_streamed": sink.events_written,
            }
        )
    )
    stream.flush()
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point: payload as the single argument, or on stdin."""
    argv = list(sys.argv[1:] if argv is None else argv)
    raw = argv[0] if argv else sys.stdin.read()
    payload = json.loads(raw)
    # Line buffering keeps the parent's dashboards live without per-event
    # flush calls in the probes.
    try:
        sys.stdout.reconfigure(line_buffering=True)
    except AttributeError:  # pragma: no cover - non-standard stdout in tests
        pass
    return run_worker(payload, sys.stdout)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
