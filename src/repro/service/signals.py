"""Shared graceful-shutdown helpers.

Containers and process supervisors stop services with SIGTERM, not Ctrl-C.
The CLI loops (``repro watch``, the service worker) already have a clean
KeyboardInterrupt path — flush sinks, finalize probes, exit 0 — so the
helper here simply routes SIGTERM into that same path.  ``repro serve``
handles both signals itself through the asyncio loop but shares
:data:`TERMINATION_SIGNALS` so every entry point drains on the same set.
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager
from types import FrameType
from typing import Iterator

__all__ = ["TERMINATION_SIGNALS", "termination_as_interrupt"]

#: The signals that mean "stop now, but cleanly" for every repro process.
TERMINATION_SIGNALS: tuple[signal.Signals, ...] = (signal.SIGINT, signal.SIGTERM)


def _raise_interrupt(signum: int, frame: FrameType | None) -> None:
    raise KeyboardInterrupt


@contextmanager
def termination_as_interrupt(*signums: signal.Signals) -> Iterator[None]:
    """Deliver the given signals (default: SIGTERM) as ``KeyboardInterrupt``.

    Inside the context, a SIGTERM behaves exactly like Ctrl-C, so one
    interrupt path covers interactive use and container supervision alike.
    Previous handlers are restored on exit.  Signal handlers can only be
    installed from the main thread; elsewhere (test runners driving the CLI
    from a worker thread) the context is a no-op.
    """
    if not signums:
        signums = (signal.SIGTERM,)
    if threading.current_thread() is not threading.main_thread():
        yield
        return
    previous = {signum: signal.signal(signum, _raise_interrupt) for signum in signums}
    try:
        yield
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
