"""The simulation service: a long-running supervisor around the engine.

``repro serve`` promotes the one-shot ``repro watch`` loop into a
production-style service (the ROADMAP's "long-running monitoring service"
item): an asyncio supervisor accepts jobs — single scenario runs and
campaign sweeps — executes them concurrently in worker subprocesses, and
streams each run's typed :class:`~repro.observers.events.SimEvent` s back to
the parent over a line-delimited JSONL pipe (the JsonlSink-to-parent
transport).  On top of the stream sit per-job progress probes, a tiered
health-factor alert engine with cooldowns and rapid-deterioration
detection, and an HTTP surface (``/jobs``, ``/alerts``, ``/health``,
``/metrics``) extending the telemetry :class:`~repro.telemetry.http.MetricsServer`.

Durability comes from the campaign :class:`~repro.campaigns.store.RunStore`:
every run is persisted experiment-files-first / manifest-last, so a drain
(SIGINT/SIGTERM) simply stops dispatching, finishes or terminates in-flight
workers, and exits 0 — a restarted service resumes the incomplete jobs from
the store's manifests and its own journal.
"""

from .alerts import Alert, AlertEngine, AlertPolicy
from .jobs import JobRecord, RunState, ServiceJournal, expand_job
from .supervisor import ServiceConfig, ServiceSupervisor
from .transport import EventStreamDecoder, decode_line, event_from_payload

__all__ = [
    "Alert",
    "AlertEngine",
    "AlertPolicy",
    "EventStreamDecoder",
    "JobRecord",
    "RunState",
    "ServiceConfig",
    "ServiceJournal",
    "ServiceSupervisor",
    "decode_line",
    "event_from_payload",
    "expand_job",
]
