"""Fixed spread liquidation bots.

Liquidators "observe the blockchain for unhealthy positions … typically
operate bots … and are engaging in a competitive environment, where other
liquidators may try to front-run each other" (Section 3.1).  The agent below
reproduces the behaviours the paper measures:

* competitive gas bidding — most liquidation transactions pay an
  above-average gas price (73.97 % in Figure 6);
* optional flash-loan funding (Section 4.4.4 / Table 4), preferring the
  cheapest flash-loan venue (dYdX over Aave);
* profit-gated participation — opportunities whose spread cannot cover the
  transaction fee are skipped (which is what lets unprofitable opportunities
  accumulate, Table 3);
* optionally, the paper's *optimal* two-step strategy (Section 5.2), which is
  disabled by default because the paper does not observe it in the wild — the
  ablation benchmark turns it on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..chain.transaction import TransactionReverted, TxKind
from ..chain.types import LIQUIDATION_GAS
from ..core.fixed_spread import LiquidationError
from ..core.optimal_strategy import SimplePosition, optimal_first_repay
from ..protocols.fixed_spread_protocol import FixedSpreadProtocol
from .base import Agent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simulation.engine import LiquidationOpportunity, SimulationEngine


@dataclass
class LiquidatorProfile:
    """Behavioural parameters of one liquidation bot."""

    detection_probability: float = 0.4
    gas_multiplier_mean: float = 1.6
    gas_multiplier_sigma: float = 0.45
    flash_loan_probability: float = 0.25
    min_profit_margin: float = 1.3
    holding_symbol: str = "USDC"
    initial_capital_usd: float = 5_000_000.0
    use_optimal_strategy: bool = False
    offline_during_congestion: bool = False


class LiquidatorAgent(Agent):
    """A bot monitoring the fixed spread protocols for liquidatable positions."""

    def __init__(self, label: str, rng: np.random.Generator, profile: LiquidatorProfile | None = None) -> None:
        super().__init__(label, rng)
        self.profile = profile or LiquidatorProfile()
        self.funded = False
        self.liquidations_attempted = 0

    # ------------------------------------------------------------------ #
    # Funding
    # ------------------------------------------------------------------ #
    def _ensure_funding(self, engine: "SimulationEngine") -> None:
        """Mint the bot's working capital in its holding currency on first use."""
        if self.funded:
            return
        symbol = self.profile.holding_symbol
        price = engine.oracle.price(symbol)
        token = engine.registry.ensure(symbol)
        token.mint(self.address, self.profile.initial_capital_usd / max(price, 1e-9))
        self.funded = True

    # ------------------------------------------------------------------ #
    # Acting
    # ------------------------------------------------------------------ #
    def act(self, engine: "SimulationEngine") -> None:
        """Scan this step's opportunities and submit liquidation transactions."""
        if self.profile.offline_during_congestion and engine.chain.gas_market.is_congested:
            return
        opportunities = engine.fixed_spread_opportunities()
        if not opportunities:
            return
        self._ensure_funding(engine)
        for opportunity in opportunities:
            if self.rng.random() > self.profile.detection_probability:
                continue
            self._consider(engine, opportunity)

    def _consider(self, engine: "SimulationEngine", opportunity: "LiquidationOpportunity") -> None:
        """Evaluate profitability and, if attractive, submit the liquidation."""
        gas_price = self._choose_gas_price(engine)
        eth_price = engine.oracle.price("ETH")
        fee_usd = gas_price * LIQUIDATION_GAS / 1e18 * eth_price
        if opportunity.expected_profit_usd < fee_usd * self.profile.min_profit_margin:
            return
        use_flash = self.rng.random() < self.profile.flash_loan_probability
        protocol = opportunity.protocol
        borrower = opportunity.borrower
        debt_symbol = opportunity.debt_symbol
        collateral_symbol = opportunity.collateral_symbol
        repay_amount = opportunity.repay_amount
        if self.profile.use_optimal_strategy:
            self._submit_optimal(engine, opportunity, gas_price, use_flash)
            return

        def action() -> object:
            return self._execute_liquidation(
                engine, protocol, borrower, debt_symbol, collateral_symbol, repay_amount, use_flash
            )

        engine.chain.submit_call(
            sender=self.address,
            action=action,
            gas_price=gas_price,
            gas_limit=LIQUIDATION_GAS,
            kind=TxKind.LIQUIDATION,
            metadata={
                "platform": protocol.name,
                "borrower": borrower.value,
                "liquidator": self.address.value,
                "strategy": "up-to-close-factor",
                "flash_loan": use_flash,
            },
        )
        self.liquidations_attempted += 1

    def _submit_optimal(
        self,
        engine: "SimulationEngine",
        opportunity: "LiquidationOpportunity",
        gas_price: int,
        use_flash: bool,
    ) -> None:
        """Submit the two successive liquidations of Algorithm 2 as one action."""
        protocol = opportunity.protocol
        borrower = opportunity.borrower
        debt_symbol = opportunity.debt_symbol
        collateral_symbol = opportunity.collateral_symbol

        def action() -> object:
            prices = protocol.prices()
            thresholds = protocol.liquidation_thresholds()
            position = protocol.position_of(borrower)
            params = protocol.params_for(collateral_symbol)
            simple = SimplePosition(
                collateral_usd=position.total_collateral_usd(prices),
                debt_usd=position.total_debt_usd(prices),
            )
            try:
                repay_1_usd = optimal_first_repay(simple, params)
            except Exception as exc:  # pragma: no cover - defensive
                raise TransactionReverted(str(exc)) from exc
            debt_price = prices[debt_symbol]
            repay_1 = min(repay_1_usd / debt_price, position.debt.get(debt_symbol, 0.0) * params.close_factor)
            first = self._execute_liquidation(
                engine, protocol, borrower, debt_symbol, collateral_symbol, repay_1, use_flash
            )
            remaining = protocol.position_of(borrower).debt.get(debt_symbol, 0.0)
            repay_2 = remaining * params.close_factor
            if repay_2 <= 0:
                return first
            second = self._execute_liquidation(
                engine, protocol, borrower, debt_symbol, collateral_symbol, repay_2, use_flash
            )
            return (first, second)

        engine.chain.submit_call(
            sender=self.address,
            action=action,
            gas_price=gas_price,
            gas_limit=LIQUIDATION_GAS * 2,
            kind=TxKind.LIQUIDATION,
            metadata={
                "platform": protocol.name,
                "borrower": borrower.value,
                "liquidator": self.address.value,
                "strategy": "optimal",
                "flash_loan": use_flash,
            },
        )
        self.liquidations_attempted += 1

    # ------------------------------------------------------------------ #
    # Execution-time logic (runs when the transaction is included)
    # ------------------------------------------------------------------ #
    def _execute_liquidation(
        self,
        engine: "SimulationEngine",
        protocol: FixedSpreadProtocol,
        borrower,
        debt_symbol: str,
        collateral_symbol: str,
        repay_amount: float,
        use_flash: bool,
    ) -> object:
        """Perform the liquidation with either flash-loan or inventory funding."""
        repay_amount = min(
            repay_amount,
            protocol.position_of(borrower).debt.get(debt_symbol, 0.0) * protocol.close_factor,
        )
        if repay_amount <= 0:
            raise TransactionReverted("position already liquidated by a competitor")
        if use_flash:
            pool = engine.flash_loans.cheapest_pool(debt_symbol)
            if pool is not None and pool.liquidity >= repay_amount:
                return self._flash_liquidation(engine, pool, protocol, borrower, debt_symbol, collateral_symbol, repay_amount)
        return self._inventory_liquidation(engine, protocol, borrower, debt_symbol, collateral_symbol, repay_amount)

    def _flash_liquidation(
        self,
        engine: "SimulationEngine",
        pool,
        protocol: FixedSpreadProtocol,
        borrower,
        debt_symbol: str,
        collateral_symbol: str,
        repay_amount: float,
    ) -> object:
        """Section 4.4.4's flow: flash-borrow, liquidate, swap collateral, repay."""
        results = {}

        def callback(amount: float, fee: float) -> None:
            result = protocol.liquidation_call(
                self.address, borrower, debt_symbol, collateral_symbol, repay_amount, used_flash_loan=True
            )
            results["liquidation"] = result
            debt_token = engine.registry.get(debt_symbol)
            owed = amount + fee
            shortfall = owed - debt_token.balance_of(self.address)
            if shortfall > 0:
                engine.market_maker.buy_exact(self.address, collateral_symbol, debt_symbol, shortfall)

        pool.flash_loan(self.address, repay_amount, callback, purpose=f"liquidation:{protocol.name}")
        self._realise_profit(engine, collateral_symbol)
        return results.get("liquidation")

    def _inventory_liquidation(
        self,
        engine: "SimulationEngine",
        protocol: FixedSpreadProtocol,
        borrower,
        debt_symbol: str,
        collateral_symbol: str,
        repay_amount: float,
    ) -> object:
        """Fund the repayment from the bot's own capital."""
        debt_token = engine.registry.get(debt_symbol)
        shortfall = repay_amount - debt_token.balance_of(self.address)
        if shortfall > 0:
            holding = self.profile.holding_symbol
            holding_token = engine.registry.get(holding)
            needed_input = engine.market_maker.quote_input_for(holding, debt_symbol, shortfall)
            if holding_token.balance_of(self.address) < needed_input:
                raise TransactionReverted("liquidator lacks capital for the repayment")
            engine.market_maker.buy_exact(self.address, holding, debt_symbol, shortfall)
        try:
            result = protocol.liquidation_call(
                self.address, borrower, debt_symbol, collateral_symbol, repay_amount, used_flash_loan=False
            )
        except LiquidationError as exc:  # pragma: no cover - protocol converts already
            raise TransactionReverted(str(exc)) from exc
        self._realise_profit(engine, collateral_symbol)
        return result

    def _realise_profit(self, engine: "SimulationEngine", collateral_symbol: str) -> None:
        """Sell remaining seized collateral into the bot's holding currency."""
        holding = self.profile.holding_symbol
        if collateral_symbol.upper() == holding.upper():
            return
        collateral_token = engine.registry.get(collateral_symbol)
        balance = collateral_token.balance_of(self.address)
        if balance > 0:
            engine.market_maker.convert(self.address, collateral_symbol, holding, balance)

    # ------------------------------------------------------------------ #
    # Gas bidding
    # ------------------------------------------------------------------ #
    def _choose_gas_price(self, engine: "SimulationEngine") -> int:
        """Draw a competitive gas-price bid around the prevailing base price."""
        base = engine.chain.gas_market.base_gas_price_wei
        multiplier = float(
            self.rng.lognormal(mean=np.log(self.profile.gas_multiplier_mean), sigma=self.profile.gas_multiplier_sigma)
        )
        return max(int(base * multiplier), 1)
