"""MakerDAO auction keepers.

Keepers perform the three non-atomic steps of an auction liquidation
(Figure 2): ``bite`` unsafe vaults, place ``tend`` / ``dent`` bids, and
``deal`` terminated auctions.  Their behavioural parameters reproduce the
auction statistics of Section 4.3.3 (≈ 2 bidders and ≈ 2.6 bids per auction,
early first bids) and the March 2020 incident: keepers estimate gas from the
*uncongested* price level, so when the network congests their bids stop
landing and the few keepers that remain win auctions at a fraction of the
collateral value — producing both the profit outlier of Figure 5 and the
liquidator losses of Section 4.3.1 when prices keep moving during auctions.

Bid amounts are computed *at execution time* (inside the transaction action),
so that several keepers competing within the same block stride correctly bid
against each other's just-landed bids rather than against a stale snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..chain.transaction import TransactionReverted, TxKind
from ..chain.types import AUCTION_BID_GAS
from ..core.auction import AuctionPhase, TendDentAuction
from ..protocols.makerdao import MakerDAOProtocol
from .base import Agent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simulation.engine import SimulationEngine


@dataclass
class KeeperProfile:
    """Behavioural parameters of one auction keeper."""

    detection_probability: float = 0.5
    profit_margin: float = 0.05
    first_bid_fraction: float = 0.5
    gas_multiplier_mean: float = 1.2
    gas_multiplier_sigma: float = 0.3
    initial_dai: float = 20_000_000.0
    offline_during_congestion: bool = True
    uses_market_gas: bool = False
    finalize_delay_probability: float = 0.02


class AuctionKeeperAgent(Agent):
    """A keeper bot operating MakerDAO's tend-dent auctions."""

    def __init__(
        self,
        label: str,
        rng: np.random.Generator,
        makerdao: MakerDAOProtocol,
        profile: KeeperProfile | None = None,
    ) -> None:
        super().__init__(label, rng)
        self.makerdao = makerdao
        self.profile = profile or KeeperProfile()
        self.funded = False

    # ------------------------------------------------------------------ #
    # Funding
    # ------------------------------------------------------------------ #
    def _ensure_funding(self, engine: "SimulationEngine") -> None:
        """Mint the keeper's DAI bidding capital on first use."""
        if self.funded:
            return
        engine.registry.ensure("DAI").mint(self.address, self.profile.initial_dai)
        self.funded = True

    # ------------------------------------------------------------------ #
    # Acting
    # ------------------------------------------------------------------ #
    def act(self, engine: "SimulationEngine") -> None:
        """Bite unsafe vaults, bid on open auctions, finalize expired ones."""
        if not engine.is_active(self.makerdao):
            return
        congested = engine.chain.gas_market.is_congested
        if congested and self.profile.offline_during_congestion:
            return
        self._ensure_funding(engine)
        self._bite_unsafe_vaults(engine)
        for auction in self.makerdao.open_auctions():
            if auction.is_expired(engine.chain.current_block):
                self._maybe_finalize(engine, auction)
            else:
                self._maybe_bid(engine, auction)

    # ------------------------------------------------------------------ #
    # Bite
    # ------------------------------------------------------------------ #
    def _bite_unsafe_vaults(self, engine: "SimulationEngine") -> None:
        """Start auctions for unsafe vaults this keeper notices."""
        for borrower in engine.makerdao_opportunities():
            if self.rng.random() > self.profile.detection_probability:
                continue

            def action(borrower=borrower) -> object:
                return self.makerdao.bite(self.address, borrower)

            engine.chain.submit_call(
                sender=self.address,
                action=action,
                gas_price=self._choose_gas_price(engine),
                gas_limit=AUCTION_BID_GAS,
                kind=TxKind.AUCTION_INITIATE,
                metadata={"platform": self.makerdao.name, "borrower": borrower.value, "keeper": self.address.value},
            )

    # ------------------------------------------------------------------ #
    # Bidding
    # ------------------------------------------------------------------ #
    def _maybe_bid(self, engine: "SimulationEngine", auction: TendDentAuction) -> None:
        """Submit a bid transaction whose exact amount is decided at execution."""
        if self.rng.random() > self.profile.detection_probability:
            return
        if auction.winning_bidder == self.address:
            return
        aggressiveness = float(self.rng.uniform(0.6, 0.98))

        def action(auction_id=auction.auction_id, aggressiveness=aggressiveness) -> object:
            return self._execute_bid(engine, auction_id, aggressiveness)

        engine.chain.submit_call(
            sender=self.address,
            action=action,
            gas_price=self._choose_gas_price(engine),
            gas_limit=AUCTION_BID_GAS,
            kind=TxKind.AUCTION_BID,
            metadata={
                "platform": self.makerdao.name,
                "auction_id": auction.auction_id,
                "keeper": self.address.value,
            },
        )

    def _execute_bid(self, engine: "SimulationEngine", auction_id: int, aggressiveness: float) -> object:
        """Compute and place the next rational bid against the live auction state."""
        auction = self.makerdao.auction(auction_id)
        if auction.phase is AuctionPhase.FINALIZED:
            raise TransactionReverted("auction already finalized")
        if auction.winning_bidder == self.address:
            raise TransactionReverted("keeper already holds the winning bid")
        prices = self.makerdao.prices()
        collateral_price = prices.get(auction.collateral_symbol, 0.0)
        dai_price = prices.get("DAI", 1.0)
        if collateral_price <= 0 or dai_price <= 0:
            raise TransactionReverted("no price available for the auction pair")
        collateral_value_usd = auction.collateral_lot * collateral_price
        if auction.phase is AuctionPhase.TEND:
            # The most DAI this keeper is willing to commit for the full lot.
            max_tend = collateral_value_usd / (1.0 + self.profile.profit_margin) / dai_price
            current = auction.current_debt_bid
            minimum_next = current * (1.0 + self.makerdao.auction_config.min_bid_increase) if current > 0 else 0.0
            cap = min(max_tend, auction.debt_target)
            if cap <= minimum_next:
                raise TransactionReverted("auction price already exceeds the keeper's margin")
            if current <= 0:
                # Opening bids are low-ball: without competition (e.g. during
                # the March 2020 congestion) the auction settles here, which
                # is what produces the "negligible cost" keeper wins.
                bid = cap * self.profile.first_bid_fraction * aggressiveness
            else:
                bid = cap
            bid = max(bid, minimum_next)
            return self.makerdao.tend(self.address, auction_id, bid)
        # Dent phase: the least collateral this keeper will accept for the debt.
        debt_value_usd = auction.debt_target * dai_price
        floor = debt_value_usd * (1.0 + self.profile.profit_margin) / collateral_price
        maximum = auction.current_collateral_bid * (1.0 - self.makerdao.auction_config.min_dent_decrease)
        if maximum <= floor:
            raise TransactionReverted("dent price already exceeds the keeper's margin")
        bid = max(floor, maximum * aggressiveness)
        bid = min(bid, maximum)
        return self.makerdao.dent(self.address, auction_id, bid)

    # ------------------------------------------------------------------ #
    # Finalization
    # ------------------------------------------------------------------ #
    def _maybe_finalize(self, engine: "SimulationEngine", auction: TendDentAuction) -> None:
        """Call ``deal`` on an expired auction (the winner usually does it)."""
        winner = auction.winning_bidder
        if winner is not None and winner != self.address:
            return
        if self.rng.random() < self.profile.finalize_delay_probability:
            # Occasionally a winner forgets to finalize for a long time,
            # producing Figure 7's long-duration outliers.
            return

        def action(auction_id=auction.auction_id) -> object:
            settlement = self.makerdao.deal(self.address, auction_id)
            self._realise_proceeds(engine, settlement)
            return settlement

        engine.chain.submit_call(
            sender=self.address,
            action=action,
            gas_price=self._choose_gas_price(engine),
            gas_limit=AUCTION_BID_GAS,
            kind=TxKind.AUCTION_FINALIZE,
            metadata={
                "platform": self.makerdao.name,
                "auction_id": auction.auction_id,
                "keeper": self.address.value,
            },
        )

    def _realise_proceeds(self, engine: "SimulationEngine", settlement) -> None:
        """Sell won collateral back into DAI so capital is available for new bids."""
        if settlement.winner != self.address or settlement.collateral_won <= 0:
            return
        auction = self.makerdao.auction(settlement.auction_id)
        symbol = auction.collateral_symbol
        if symbol == "DAI":
            return
        token = engine.registry.get(symbol)
        balance = token.balance_of(self.address)
        amount = min(balance, settlement.collateral_won)
        if amount > 0:
            engine.market_maker.convert(self.address, symbol, "DAI", amount)

    # ------------------------------------------------------------------ #
    # Gas bidding
    # ------------------------------------------------------------------ #
    def _choose_gas_price(self, engine: "SimulationEngine") -> int:
        """Keepers estimate gas from the *uncongested* price level.

        This is the crucial failure mode of March 2020: when the network
        congests, the keepers' estimates lag the market and their bids are
        priced out of blocks.
        """
        market = engine.chain.gas_market
        if self.profile.uses_market_gas:
            reference_gwei = market.base_gas_price_gwei
        else:
            reference_gwei = market.uncongested_gas_price_gwei
        multiplier = float(
            self.rng.lognormal(mean=np.log(self.profile.gas_multiplier_mean), sigma=self.profile.gas_multiplier_sigma)
        )
        return max(int(reference_gwei * 1e9 * multiplier), 1)
