"""Lender agents: passive liquidity providers.

Lenders deposit assets into the pool-based protocols so that borrowers have
something to borrow (Figure 1's "Lenders" arrow).  Their behaviour is simple
— provide a configured amount of liquidity once the protocol is live — but
modelling them separately keeps the pool-utilization (and therefore interest
rate) mechanics honest.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..protocols.base import LendingProtocol, ProtocolError
from .base import Agent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simulation.engine import SimulationEngine


class LenderAgent(Agent):
    """Supplies pool liquidity in one or more assets."""

    def __init__(
        self,
        label: str,
        rng: np.random.Generator,
        protocol: LendingProtocol,
        supplies_usd: dict[str, float],
    ) -> None:
        super().__init__(label, rng)
        self.protocol = protocol
        self.supplies_usd = supplies_usd
        self.supplied = False

    def act(self, engine: "SimulationEngine") -> None:
        """Deposit the configured liquidity once the protocol is active."""
        if self.supplied or not engine.is_active(self.protocol):
            return
        prices = self.protocol.prices()
        for symbol, usd_value in self.supplies_usd.items():
            if symbol not in self.protocol.markets:
                continue
            price = prices.get(symbol, self.protocol.oracle.price(symbol))
            if price <= 0:
                continue
            amount = usd_value / price
            token = engine.registry.ensure(symbol)
            token.mint(self.address, amount)
            try:
                self.protocol.supply_liquidity(self.address, symbol, amount)
            except ProtocolError:
                continue
        self.supplied = True
