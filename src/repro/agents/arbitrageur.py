"""Arbitrageur agent keeping AMM pools aligned with the oracle price.

The constant-product pools (Section 2.2.1's on-chain oracles) would drift
arbitrarily far from the market price without arbitrage.  This agent performs
the canonical arbitrage trade each step: it computes the reserve ratio that
matches the external (oracle) price and trades the pool to that point,
pocketing the difference.  Its capital is minted on demand — it abstracts the
entire external arbitrage market rather than a single trader.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

from ..amm.pool import ConstantProductPool
from .base import Agent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simulation.engine import SimulationEngine


class ArbitrageurAgent(Agent):
    """Trades every registered AMM pool back towards the oracle price."""

    def __init__(self, label: str, rng: np.random.Generator, tolerance: float = 0.005) -> None:
        super().__init__(label, rng)
        self.tolerance = tolerance

    def act(self, engine: "SimulationEngine") -> None:
        """Re-align every pool whose spot price deviates beyond the tolerance."""
        for pool in engine.amm.pools.values():
            self._arbitrage_pool(engine, pool)

    def _arbitrage_pool(self, engine: "SimulationEngine", pool: ConstantProductPool) -> None:
        reserve_a = pool.reserve_a
        reserve_b = pool.reserve_b
        if reserve_a <= 0 or reserve_b <= 0:
            return
        price_a = engine.oracle.price(pool.token_a.symbol)
        price_b = engine.oracle.price(pool.token_b.symbol)
        if price_a <= 0 or price_b <= 0:
            return
        # Target price of token_a denominated in token_b.
        target = price_a / price_b
        spot = reserve_b / reserve_a
        if abs(spot - target) / target < self.tolerance:
            return
        invariant = reserve_a * reserve_b
        target_reserve_a = math.sqrt(invariant / target)
        if target_reserve_a > reserve_a:
            # Pool should hold more of token_a: sell token_a into the pool.
            amount_in = target_reserve_a - reserve_a
            token_in = pool.token_a
        else:
            # Pool should hold more of token_b: sell token_b into the pool.
            target_reserve_b = math.sqrt(invariant * target)
            amount_in = target_reserve_b - reserve_b
            token_in = pool.token_b
        if amount_in <= 0:
            return
        token_in.mint(self.address, amount_in)
        pool.swap(self.address, token_in.symbol, amount_in)
