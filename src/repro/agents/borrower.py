"""Borrower agents.

Borrowers open leveraged positions on a lending protocol and manage them with
varying degrees of attention.  Three behavioural traits drive the study's
headline phenomena:

* *attentiveness* — attentive borrowers top up collateral when their health
  factor approaches 1, inattentive ones do not and get liquidated when prices
  fall (the bulk of Figure 4's liquidation volume);
* *diversification* — Aave V2 borrowers prefer multi-asset collateral, which
  is what makes Aave V2 less sensitive to single-currency declines in
  Figure 8 (Section 4.5.1);
* *dust positions* — a population of very small positions whose excess
  collateral cannot cover a closing transaction fee, producing Table 2's
  Type II bad debt.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..protocols.base import LendingProtocol, ProtocolError
from .base import Agent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simulation.engine import SimulationEngine


@dataclass
class BorrowerProfile:
    """Behavioural parameters of one borrower."""

    collateral_symbols: tuple[str, ...] = ("ETH",)
    debt_symbol: str = "DAI"
    collateral_usd: float = 50_000.0
    target_health_factor: float = 1.25
    attentive: bool = True
    topup_trigger: float = 1.08
    entry_step: int = 0


class BorrowerAgent(Agent):
    """A borrower managing a single position on one protocol."""

    def __init__(
        self,
        label: str,
        rng: np.random.Generator,
        protocol: LendingProtocol,
        profile: BorrowerProfile,
    ) -> None:
        super().__init__(label, rng)
        self.protocol = protocol
        self.profile = profile
        self.opened = False
        self.closed = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def act(self, engine: "SimulationEngine") -> None:
        """Open the position at the entry step, then manage it."""
        if self.closed:
            return
        if not self.opened:
            if engine.step_index >= self.profile.entry_step and engine.is_active(self.protocol):
                self._open_position(engine)
            return
        if self.profile.attentive:
            self._manage_position(engine)

    def _open_position(self, engine: "SimulationEngine") -> None:
        """Deposit collateral and borrow up to the target health factor."""
        prices = self.protocol.prices()
        thresholds = self.protocol.liquidation_thresholds()
        weights = self._collateral_weights()
        deposited_value = 0.0
        capacity = 0.0
        for symbol, weight in weights.items():
            if symbol not in self.protocol.markets or not self.protocol.markets[symbol].collateral_enabled:
                continue
            price = prices.get(symbol)
            if not price or price <= 0:
                continue
            value = self.profile.collateral_usd * weight
            amount = value / price
            token = engine.registry.ensure(symbol)
            token.mint(self.address, amount)
            try:
                self.protocol.deposit(self.address, symbol, amount)
            except ProtocolError:
                continue
            deposited_value += value
            capacity += value * thresholds.get(symbol, 0.0)
        if deposited_value <= 0 or capacity <= 0:
            self.closed = True
            return
        debt_symbol = self.profile.debt_symbol
        debt_price = prices.get(debt_symbol, self.protocol.oracle.price(debt_symbol))
        target_debt_usd = capacity / self.profile.target_health_factor
        borrow_amount = target_debt_usd / debt_price
        try:
            self.protocol.borrow(self.address, debt_symbol, borrow_amount)
        except ProtocolError:
            # Not enough pool liquidity or capacity rounding: try a smaller loan.
            try:
                self.protocol.borrow(self.address, debt_symbol, borrow_amount * 0.9)
            except ProtocolError:
                self.closed = True
                return
        self.opened = True

    def _manage_position(self, engine: "SimulationEngine") -> None:
        """Top up collateral when the health factor nears the liquidation point."""
        position = self.protocol.position_of(self.address)
        if not position.has_debt:
            return
        prices = self.protocol.prices()
        thresholds = self.protocol.liquidation_thresholds()
        health = position.health_factor(prices, thresholds)
        if health >= self.profile.topup_trigger:
            return
        # Restore the target health factor by adding more of the main collateral.
        main_symbol = self.profile.collateral_symbols[0]
        if main_symbol not in self.protocol.markets:
            return
        price = prices.get(main_symbol, 0.0)
        if price <= 0:
            return
        debt_usd = position.total_debt_usd(prices)
        capacity_needed = debt_usd * self.profile.target_health_factor
        capacity_now = position.borrowing_capacity(prices, thresholds)
        shortfall_usd = max(capacity_needed - capacity_now, 0.0)
        threshold = thresholds.get(main_symbol, 0.0)
        if threshold <= 0 or shortfall_usd <= 0:
            return
        amount = shortfall_usd / threshold / price
        token = engine.registry.ensure(main_symbol)
        token.mint(self.address, amount)
        try:
            self.protocol.deposit(self.address, main_symbol, amount)
        except ProtocolError:
            pass

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _collateral_weights(self) -> dict[str, float]:
        """Normalised collateral allocation across the profile's symbols."""
        symbols = self.profile.collateral_symbols
        if len(symbols) == 1:
            return {symbols[0]: 1.0}
        raw = self.rng.dirichlet(np.ones(len(symbols)) * 2.0)
        return {symbol: float(weight) for symbol, weight in zip(symbols, raw)}
