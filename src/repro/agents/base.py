"""Agent framework for the scenario simulation.

Agents are the behavioural counterparts of the paper's measured populations:
borrowers and lenders interacting with the pools, liquidation bots competing
on gas, and MakerDAO auction keepers.  Each agent owns an address, a private
random stream (spawned from the scenario seed so runs are reproducible), and
an :meth:`Agent.act` hook called once per simulation step with the engine as
context.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

import numpy as np

from ..chain.types import Address, make_address

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simulation.engine import SimulationEngine


class Agent(abc.ABC):
    """Base class of every simulated actor."""

    def __init__(self, label: str, rng: np.random.Generator) -> None:
        self.address: Address = make_address(label)
        self.label = label
        self.rng = rng

    @abc.abstractmethod
    def act(self, engine: "SimulationEngine") -> None:
        """Perform this step's actions against the engine."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.label}>"


def spawn_rngs(seed: int, count: int) -> list[np.random.Generator]:
    """Create ``count`` independent generators derived from ``seed``."""
    children = np.random.SeedSequence(seed).spawn(count)
    return [np.random.default_rng(child) for child in children]
