"""Simulation agents: borrowers, lenders, liquidation bots, keepers, arbitrageurs."""

from .arbitrageur import ArbitrageurAgent
from .base import Agent, spawn_rngs
from .borrower import BorrowerAgent, BorrowerProfile
from .keeper import AuctionKeeperAgent, KeeperProfile
from .lender import LenderAgent
from .liquidator import LiquidatorAgent, LiquidatorProfile

__all__ = [
    "Agent",
    "ArbitrageurAgent",
    "AuctionKeeperAgent",
    "BorrowerAgent",
    "BorrowerProfile",
    "KeeperProfile",
    "LenderAgent",
    "LiquidatorAgent",
    "LiquidatorProfile",
    "spawn_rngs",
]
