"""The ``repro`` command line interface.

Wires the named scenario registry to the experiment runner and the campaign
subsystem::

    python -m repro list --tag fast --json        # scenario table
    python -m repro reports                       # report ids
    python -m repro run --scenario march-2020-only --seed 7 --report table1
    python -m repro watch march-2020-only --hf-below 1.1 --follow
    python -m repro trace march-2020-only --chrome trace.json
    python -m repro sweep --scenario march-2020-only --seeds 8 --workers 4
    python -m repro serve --port 9464 --store runs --workers 4
    python -m repro compare

``run`` builds one scenario through
:class:`~repro.scenarios.ScenarioBuilder`, simulates it, and renders the
requested table/figure reports to stdout (or ``--output``).  ``watch`` is
the live monitoring loop: it streams at-risk positions, settled
liquidations and fired incidents to stdout while the world advances
(optionally teeing the full typed event stream to ``--jsonl``).  ``sweep``
fans a multi-seed campaign out over a worker pool, persisting every run to
the on-disk store (``runs/`` by default) so re-running the same sweep
resumes instead of re-simulating; ``compare`` renders cross-seed statistics
(mean / stddev / 95 % CI per scalar field) from the store.  ``serve`` turns
the same machinery into a long-running service: an asyncio supervisor
executing submitted run/sweep jobs in worker subprocesses, with job
submission and dashboards over HTTP (``POST /jobs``, ``GET /jobs``,
``/alerts``, ``/metrics``) and graceful drain on SIGINT/SIGTERM — see
:mod:`repro.service`.  Progress lines
go to stderr so reports stay pipeable.  Installed via ``pip install -e .``
the same interface is available as the ``repro`` console script.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Sequence

from . import scenarios
from .experiments.runner import EXPERIMENT_IDS, EXPERIMENTS, render_all, run_all, run_one


def _status(message: str) -> None:
    print(message, file=sys.stderr)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'An Empirical Study of DeFi Liquidations' (IMC 2021).",
    )
    sub = parser.add_subparsers(dest="command")

    run_parser = sub.add_parser("run", help="simulate a named scenario and render reports")
    run_parser.add_argument("--scenario", default="small", help="registered scenario name (see `repro list`)")
    run_parser.add_argument("--seed", type=int, default=None, help="override the scenario's seed")
    run_parser.add_argument(
        "--report",
        action="append",
        default=None,
        metavar="ID",
        help="report id (repeatable) or 'all'; default: table1",
    )
    run_parser.add_argument("--end-block", type=int, default=None, help="truncate the simulated window")
    run_parser.add_argument("--blocks-per-step", type=int, default=None, help="override the engine stride")
    run_parser.add_argument("--output", default=None, metavar="FILE", help="write the report to FILE instead of stdout")

    watch_parser = sub.add_parser(
        "watch", help="live-monitor a scenario: stream at-risk positions and liquidations"
    )
    watch_parser.add_argument("scenario", nargs="?", default="small", help="registered scenario name")
    watch_parser.add_argument("--seed", type=int, default=None, help="override the scenario's seed")
    watch_parser.add_argument(
        "--hf-below",
        type=float,
        default=1.05,
        metavar="HF",
        help="alert when a position's health factor drops below HF (default: 1.05)",
    )
    watch_parser.add_argument(
        "--follow", action="store_true", help="also print one progress line per block stride"
    )
    watch_parser.add_argument(
        "--jsonl",
        default=None,
        metavar="FILE",
        help="tee the full typed event stream as JSON lines to FILE ('-' for stdout)",
    )
    watch_parser.add_argument("--end-block", type=int, default=None, help="truncate the simulated window")
    watch_parser.add_argument("--blocks-per-step", type=int, default=None, help="override the engine stride")
    watch_parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve a live Prometheus /metrics exposition on PORT while watching (0 = ephemeral)",
    )

    trace_parser = sub.add_parser(
        "trace", help="profile a scenario run: per-phase span timings and a Chrome trace"
    )
    trace_parser.add_argument("scenario", nargs="?", default="small", help="registered scenario name")
    trace_parser.add_argument("--seed", type=int, default=None, help="override the scenario's seed")
    trace_parser.add_argument("--end-block", type=int, default=None, help="truncate the simulated window")
    trace_parser.add_argument("--blocks-per-step", type=int, default=None, help="override the engine stride")
    trace_parser.add_argument(
        "--chrome",
        default=None,
        metavar="FILE",
        help="write Chrome trace-event JSON to FILE (load in chrome://tracing or Perfetto)",
    )
    trace_parser.add_argument(
        "--metrics", action="store_true", help="append the Prometheus exposition to the report"
    )
    trace_parser.add_argument("--output", default=None, metavar="FILE", help="write the report to FILE")

    list_parser = sub.add_parser("list", help="list registered scenarios")
    list_parser.add_argument("--tag", default=None, help="only scenarios carrying this tag")
    list_parser.add_argument("--json", action="store_true", help="machine-readable output")

    reports_parser = sub.add_parser("reports", help="list report ids accepted by `run --report`")
    reports_parser.add_argument("--json", action="store_true", help="machine-readable output")

    sweep_parser = sub.add_parser(
        "sweep", help="run a multi-seed campaign in parallel, persisting to the run store"
    )
    sweep_parser.add_argument("--scenario", default="small", help="registered scenario name")
    sweep_parser.add_argument("--seeds", type=int, default=4, metavar="N", help="number of independent seeds")
    sweep_parser.add_argument("--base-seed", type=int, default=0, help="SeedSequence entropy for the seed range")
    sweep_parser.add_argument("--workers", type=int, default=1, metavar="W", help="worker processes (1 = serial)")
    sweep_parser.add_argument(
        "--backend",
        default="auto",
        choices=("auto", "serial", "spawn", "persistent"),
        help="execution backend (default: auto — serial when --workers 1, persistent otherwise)",
    )
    sweep_parser.add_argument("--store", default="runs", metavar="DIR", help="run store root (default: runs/)")
    sweep_parser.add_argument("--campaign", default=None, help="campaign name (default: the scenario name)")
    sweep_parser.add_argument(
        "--set",
        action="append",
        default=None,
        dest="overrides",
        metavar="KEY=VALUE",
        help="fixed builder override (repeatable), e.g. --set close_factor=0.5",
    )
    sweep_parser.add_argument(
        "--grid",
        action="append",
        default=None,
        metavar="KEY=V1,V2,...",
        help="swept builder override axis (repeatable); axes are crossed",
    )
    sweep_parser.add_argument(
        "--report",
        action="append",
        default=None,
        metavar="ID",
        help="experiment id to compute per run (repeatable); default: all",
    )

    serve_parser = sub.add_parser(
        "serve",
        help="run the simulation service: concurrent job execution with an HTTP job/alert/metrics surface",
    )
    serve_parser.add_argument(
        "--port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve /jobs, /alerts, /health and /metrics on PORT (0 = ephemeral)",
    )
    serve_parser.add_argument("--store", default="runs", metavar="DIR", help="run store root (default: runs/)")
    serve_parser.add_argument(
        "--workers", type=int, default=4, metavar="W", help="concurrent worker subprocesses (default: 4)"
    )
    serve_parser.add_argument(
        "--backend",
        default="stream",
        choices=("stream", "serial", "spawn", "persistent"),
        help=(
            "how sweep jobs execute (default: stream — one streaming subprocess "
            "per run); campaign backends reuse warm workers but do not stream events"
        ),
    )
    serve_parser.add_argument(
        "--run",
        action="append",
        default=None,
        metavar="SCENARIO[:SEED]",
        help="submit a single-run job at startup (repeatable)",
    )
    serve_parser.add_argument(
        "--sweep",
        default=None,
        metavar="SCENARIO",
        help="submit a sweep job at startup (uses --seeds/--base-seed/--grid)",
    )
    serve_parser.add_argument("--seeds", type=int, default=4, metavar="N", help="seeds for the --sweep job")
    serve_parser.add_argument("--base-seed", type=int, default=0, help="SeedSequence entropy for the --sweep job")
    serve_parser.add_argument(
        "--set",
        action="append",
        default=None,
        dest="overrides",
        metavar="KEY=VALUE",
        help="builder override applied to startup jobs (repeatable)",
    )
    serve_parser.add_argument(
        "--grid",
        action="append",
        default=None,
        metavar="KEY=V1,V2,...",
        help="swept override axis for the --sweep job (repeatable)",
    )
    serve_parser.add_argument(
        "--report",
        action="append",
        default=None,
        metavar="ID",
        help="experiment id computed per run (repeatable); default: all",
    )
    serve_parser.add_argument("--campaign", default=None, help="campaign name for startup jobs")
    serve_parser.add_argument(
        "--hf-warning", type=float, default=1.05, metavar="HF", help="warning-tier health factor (default: 1.05)"
    )
    serve_parser.add_argument(
        "--hf-critical", type=float, default=1.0, metavar="HF", help="critical-tier health factor (default: 1.0)"
    )
    serve_parser.add_argument(
        "--cooldown-blocks",
        type=int,
        default=7200,
        metavar="N",
        help="blocks between repeat alerts for one position/tier (default: 7200, ~1 day)",
    )
    serve_parser.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="grace period for in-flight runs after SIGINT/SIGTERM before workers are terminated",
    )
    serve_parser.add_argument(
        "--exit-when-idle",
        action="store_true",
        help="exit once every submitted job has finished (instead of serving forever)",
    )
    serve_parser.add_argument(
        "--no-resume",
        action="store_true",
        help="do not re-enqueue incomplete journalled jobs from a previous service run",
    )

    # ``lint`` owns its full argument surface in repro.devtools.cli; main()
    # delegates before this parser ever sees the arguments.  The stub makes
    # the subcommand discoverable in ``repro --help``.
    sub.add_parser(
        "lint",
        add_help=False,
        help="repo-specific static analysis (determinism & invariant rules; see `repro lint --explain`)",
    )

    compare_parser = sub.add_parser("compare", help="cross-run statistics from the run store")
    compare_parser.add_argument("--store", default="runs", metavar="DIR", help="run store root (default: runs/)")
    compare_parser.add_argument(
        "--campaign", default=None, help="campaign name (default: the store's only campaign)"
    )
    compare_parser.add_argument(
        "--experiment",
        action="append",
        default=None,
        metavar="ID",
        help="restrict to these experiment ids (repeatable)",
    )
    compare_parser.add_argument("--json", action="store_true", help="emit the aggregate as JSON")
    compare_parser.add_argument("--output", default=None, metavar="FILE", help="write the report to FILE")
    return parser


def _dedupe(report_ids: Sequence[str]) -> list[str]:
    """Drop duplicate report ids, keeping first-occurrence order."""
    return list(dict.fromkeys(report_ids))


def _validate_reports(report_ids: Sequence[str], *, allow_all: bool = True) -> list[str] | None:
    """Return the unknown ids (``None`` means all valid)."""
    known = set(EXPERIMENTS)
    if allow_all:
        known.add("all")
    unknown = [report_id for report_id in report_ids if report_id not in known]
    return unknown or None


def _cmd_list(args: argparse.Namespace) -> int:
    definitions = scenarios.all_scenarios()
    names = sorted(definitions)
    if args.tag is not None:
        names = [name for name in names if args.tag in definitions[name].tags]
    if args.json:
        print(
            json.dumps(
                [
                    {
                        "name": name,
                        "description": definitions[name].description,
                        "tags": list(definitions[name].tags),
                    }
                    for name in names
                ],
                indent=2,
            )
        )
        return 0
    width = max((len(name) for name in names), default=0)
    for name in names:
        definition = definitions[name]
        tags = f"  [{', '.join(definition.tags)}]" if definition.tags else ""
        print(f"{name.ljust(width)}  {definition.description}{tags}")
    return 0


def _cmd_reports(args: argparse.Namespace) -> int:
    if args.json:
        print(
            json.dumps(
                [
                    {"id": experiment_id, "title": EXPERIMENTS[experiment_id].title}
                    for experiment_id in EXPERIMENT_IDS
                ],
                indent=2,
            )
        )
        return 0
    width = max(len(experiment_id) for experiment_id in EXPERIMENT_IDS)
    print(f"{'all'.ljust(width)}  every report below, in paper order")
    for experiment_id in EXPERIMENT_IDS:
        print(f"{experiment_id.ljust(width)}  {EXPERIMENTS[experiment_id].title}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        definition = scenarios.get(args.scenario)
    except scenarios.UnknownScenarioError as error:
        _status(f"error: {error.args[0]}")
        return 2

    report_ids = _dedupe(args.report or ["table1"])
    run_everything = "all" in report_ids
    unknown = _validate_reports(report_ids)
    if unknown:
        _status(f"error: unknown report id(s) {', '.join(unknown)}; known: all, {', '.join(EXPERIMENT_IDS)}")
        return 2

    builder = definition.builder(args.seed)
    if args.end_block is not None or args.blocks_per_step is not None:
        builder.with_window(end_block=args.end_block, blocks_per_step=args.blocks_per_step)
    config = builder.config
    _status(
        f"scenario {definition.name!r} (seed {config.seed}): "
        f"blocks {config.start_block:,} – {config.end_block:,}, {config.n_steps:,} steps"
    )
    started = time.perf_counter()
    result = builder.run()
    _status(f"simulated in {time.perf_counter() - started:.1f}s; rendering {', '.join(report_ids)}")

    if run_everything:
        text = render_all(run_all(result))
    else:
        records = result.records
        sections = [run_one(result, report_id, records).report for report_id in report_ids]
        text = "\n\n".join(sections) + "\n"

    _emit(text, args.output)
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    from .observers.watch import watch_run
    from .service.signals import termination_as_interrupt

    try:
        definition = scenarios.get(args.scenario)
    except scenarios.UnknownScenarioError as error:
        _status(f"error: {error.args[0]}")
        return 2

    builder = definition.builder(args.seed)
    if args.end_block is not None or args.blocks_per_step is not None:
        builder.with_window(end_block=args.end_block, blocks_per_step=args.blocks_per_step)
    config = builder.config
    _status(
        f"watching {definition.name!r} (seed {config.seed}): "
        f"blocks {config.start_block:,} – {config.end_block:,}, "
        f"alerting below HF {args.hf_below}"
    )
    jsonl = sys.stdout if args.jsonl == "-" else args.jsonl
    # With the JSON stream on stdout, narration moves to stderr so the
    # advertised jq-able stream stays valid JSONL.
    emit = _status if jsonl is sys.stdout else print
    started = time.perf_counter()
    try:
        # SIGTERM gets the same graceful path as Ctrl-C: sinks flushed,
        # probes finalized, exit 0 — so supervisors (systemd, CI, the
        # service) can stop a watch without losing its stream.
        with termination_as_interrupt():
            summary = watch_run(
                builder,
                hf_below=args.hf_below,
                follow=args.follow,
                jsonl=jsonl,
                emit=emit,
                metrics_port=args.metrics_port,
            )
    except KeyboardInterrupt:
        # Interrupted before the engine even started (e.g. during build).
        _status("watch interrupted")
        return 0
    streamed = (
        f", {summary.events_streamed} events streamed to {args.jsonl}"
        if summary.events_streamed is not None
        else ""
    )
    finished = "watch interrupted" if summary.interrupted else "watch finished"
    _status(
        f"{finished} at block {summary.result.final_block:,} in "
        f"{time.perf_counter() - started:.1f}s: {summary.alerts} at-risk alerts, "
        f"{summary.liquidations} liquidations{streamed}"
    )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .observers.probes import LiquidationRecorder, MetricsAccumulator
    from .telemetry import Telemetry, TelemetryProbe, enabled, render_phase_report

    try:
        definition = scenarios.get(args.scenario)
    except scenarios.UnknownScenarioError as error:
        _status(f"error: {error.args[0]}")
        return 2

    builder = definition.builder(args.seed)
    if args.end_block is not None or args.blocks_per_step is not None:
        builder.with_window(end_block=args.end_block, blocks_per_step=args.blocks_per_step)
    config = builder.config
    _status(
        f"tracing {definition.name!r} (seed {config.seed}): "
        f"blocks {config.start_block:,} – {config.end_block:,}, {config.n_steps:,} steps"
    )

    telemetry = Telemetry(name=definition.name)
    builder.with_probes(
        lambda engine: LiquidationRecorder(),
        lambda engine: MetricsAccumulator(),
        lambda engine: TelemetryProbe(telemetry.registry),
    )
    started = time.perf_counter()
    with enabled(telemetry):
        builder.run()
    wall = time.perf_counter() - started
    _status(f"simulated in {wall:.1f}s; {len(telemetry.tracer.records)} spans recorded")

    text = render_phase_report(telemetry.tracer.records, wall_seconds=wall)
    if args.metrics:
        text += "\n" + telemetry.registry.exposition()
    _emit(text, args.output)
    if args.chrome:
        telemetry.tracer.write_chrome_trace(args.chrome)
        _status(f"chrome trace written to {args.chrome} (load in chrome://tracing or Perfetto)")
    return 0


def _parse_override(item: str) -> tuple[str, str]:
    key, separator, value = item.partition("=")
    if not separator or not key or not value:
        raise ValueError(f"expected KEY=VALUE, got {item!r}")
    return key.strip(), value.strip()


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .campaigns import CampaignExecutor, CampaignSpec, RunStore

    try:
        scenarios.get(args.scenario)
    except scenarios.UnknownScenarioError as error:
        _status(f"error: {error.args[0]}")
        return 2

    report_ids = _dedupe(args.report) if args.report else ["all"]
    unknown = _validate_reports(report_ids)
    if unknown:
        _status(f"error: unknown report id(s) {', '.join(unknown)}; known: all, {', '.join(EXPERIMENT_IDS)}")
        return 2
    if "all" in report_ids:
        report_ids = list(EXPERIMENT_IDS)

    try:
        overrides = dict(_parse_override(item) for item in (args.overrides or []))
        grid = {
            key: [value for value in values.split(",") if value]
            for key, values in (_parse_override(item) for item in (args.grid or []))
        }
        spec = CampaignSpec(
            scenario=args.scenario,
            seeds=args.seeds,
            base_seed=args.base_seed,
            overrides=overrides,
            grid=grid,
            experiments=tuple(report_ids),
            name=args.campaign,
        )
    except (KeyError, ValueError) as error:
        _status(f"error: {error.args[0]}")
        return 2

    from .campaigns import WorkerConfig

    worker_config = WorkerConfig.resolve(backend=args.backend, workers=args.workers)
    total = len(spec.runs())
    _status(
        f"campaign {spec.campaign!r}: scenario {spec.scenario!r}, "
        f"{len(spec.variants())} variant(s) × {spec.seeds} seed(s) = {total} runs, "
        f"{worker_config.backend} backend × {worker_config.workers} worker(s), store {args.store}"
    )

    def progress(done: int, run_total: int, run_id: str, status: str, elapsed: float) -> None:
        timing = f" ({elapsed:.1f}s)" if status != "resumed" else ""
        _status(f"[{done}/{run_total}] {status} {run_id}{timing}")

    executor = CampaignExecutor(spec, RunStore(args.store), backend=worker_config, progress=progress)
    result = executor.execute()
    failures = f", {len(result.failed)} failed" if result.failed else ""
    _status(
        f"campaign {result.campaign!r} done in {result.elapsed_seconds:.1f}s: "
        f"{len(result.executed)} executed, {len(result.resumed)} resumed{failures} "
        f"from {result.store_root}"
    )
    for run_id, error in result.failed.items():
        _status(f"  failed {run_id}: {error}")
    return 1 if result.failed else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .service import AlertPolicy, ServiceConfig, ServiceSupervisor
    from .service.jobs import SubmissionError

    report_ids = _dedupe(args.report) if args.report else None
    if report_ids:
        unknown = _validate_reports(report_ids, allow_all=False)
        if unknown:
            _status(f"error: unknown report id(s) {', '.join(unknown)}; known: {', '.join(EXPERIMENT_IDS)}")
            return 2

    try:
        overrides = dict(_parse_override(item) for item in (args.overrides or []))
        grid = {
            key: [value for value in values.split(",") if value]
            for key, values in (_parse_override(item) for item in (args.grid or []))
        }
        policy = AlertPolicy(
            warning_hf=args.hf_warning,
            critical_hf=args.hf_critical,
            cooldown_blocks=args.cooldown_blocks,
        )
    except ValueError as error:
        _status(f"error: {error.args[0]}")
        return 2

    if args.port is None and not args.run and not args.sweep:
        _status("error: nothing to do — pass --port for the submission API and/or --run/--sweep startup jobs")
        return 2

    supervisor = ServiceSupervisor(
        ServiceConfig(
            store_root=args.store,
            workers=args.workers,
            backend=args.backend,
            policy=policy,
            drain_timeout=args.drain_timeout,
            resume=not args.no_resume,
        )
    )
    try:
        for item in args.run or []:
            scenario, _, seed = item.partition(":")
            payload: dict = {"kind": "run", "scenario": scenario, "overrides": overrides}
            if seed:
                payload["seed"] = int(seed)
            if report_ids:
                payload["experiments"] = report_ids
            if args.campaign:
                payload["campaign"] = args.campaign
            summary = supervisor.submit(payload)
            _status(f"queued {summary['job_id']}: run {scenario}")
        if args.sweep:
            payload = {
                "kind": "sweep",
                "scenario": args.sweep,
                "seeds": args.seeds,
                "base_seed": args.base_seed,
                "overrides": overrides,
                "grid": grid,
            }
            if report_ids:
                payload["experiments"] = report_ids
            if args.campaign:
                payload["campaign"] = args.campaign
            summary = supervisor.submit(payload)
            _status(f"queued {summary['job_id']}: sweep {args.sweep} ({summary['runs']['total']} runs)")
    except SubmissionError as error:
        _status(f"error: {error.args[0]}")
        return 2

    _status(
        f"service: store {args.store}, {args.workers} worker(s), "
        f"{args.backend} sweep backend, "
        f"alerts warn<{policy.warning_hf} crit<{policy.critical_hf} "
        f"cooldown {policy.cooldown_blocks} blocks"
    )
    try:
        result = asyncio.run(
            supervisor.serve(
                http_port=args.port,
                exit_when_idle=args.exit_when_idle,
                announce=_status,
            )
        )
    except KeyboardInterrupt:
        # Signal landed outside the loop's handlers (e.g. during startup).
        _status("serve interrupted")
        return 0
    return 1 if result.failed_runs else 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .campaigns import RunStore, aggregate_campaign, render_comparison
    from .serialize import to_jsonable

    store = RunStore(args.store)
    campaign = args.campaign
    if campaign is None:
        candidates = store.campaigns()
        if len(candidates) == 1:
            campaign = candidates[0]
        elif not candidates:
            _status(f"error: no campaigns under {store.root}; run `repro sweep` first")
            return 2
        else:
            _status(f"error: multiple campaigns under {store.root}; pass --campaign ({', '.join(candidates)})")
            return 2

    experiment_ids = _dedupe(args.experiment) if args.experiment else None
    if experiment_ids:
        unknown = _validate_reports(experiment_ids, allow_all=False)
        if unknown:
            _status(f"error: unknown experiment id(s) {', '.join(unknown)}; known: {', '.join(EXPERIMENT_IDS)}")
            return 2

    try:
        aggregate = aggregate_campaign(store, campaign, experiment_ids)
    except FileNotFoundError as error:
        _status(f"error: {error.args[0]}")
        return 2

    if args.json:
        text = json.dumps(to_jsonable(aggregate), indent=2, sort_keys=True) + "\n"
    else:
        text = render_comparison(aggregate)
    _emit(text, args.output)
    return 0


def _emit(text: str, output: str | None) -> None:
    """Write ``text`` to ``output`` (reporting to stderr) or print it."""
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text)
        _status(f"report written to {output}")
    else:
        print(text)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "lint":
        # The lint CLI owns its own parser (rule codes, baseline modes,
        # the mypy gate) — hand the remaining arguments straight through.
        from .devtools.cli import main as lint_main

        return lint_main(argv[1:])
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "watch":
        return _cmd_watch(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "reports":
        return _cmd_reports(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "compare":
        return _cmd_compare(args)
    parser.print_help()
    return 2


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    raise SystemExit(main())
