"""The ``repro`` command line interface.

Wires the named scenario registry to the experiment runner::

    python -m repro list                       # scenario table
    python -m repro reports                    # report ids
    python -m repro run --scenario march-2020-only --seed 7 --report table1
    python -m repro run --scenario paper-medium --report all --output report.txt

``run`` builds the scenario through :class:`~repro.scenarios.ScenarioBuilder`,
simulates it, and renders the requested table/figure reports to stdout (or
``--output``).  Progress lines go to stderr so the report itself stays
pipeable.  Installed via ``pip install -e .`` the same interface is available
as the ``repro`` console script.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from . import scenarios
from .analytics.records import extract_liquidations
from .experiments.runner import EXPERIMENT_IDS, EXPERIMENTS, render_all, run_all, run_one


def _status(message: str) -> None:
    print(message, file=sys.stderr)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'An Empirical Study of DeFi Liquidations' (IMC 2021).",
    )
    sub = parser.add_subparsers(dest="command")

    run_parser = sub.add_parser("run", help="simulate a named scenario and render reports")
    run_parser.add_argument("--scenario", default="small", help="registered scenario name (see `repro list`)")
    run_parser.add_argument("--seed", type=int, default=None, help="override the scenario's seed")
    run_parser.add_argument(
        "--report",
        action="append",
        default=None,
        metavar="ID",
        help="report id (repeatable) or 'all'; default: table1",
    )
    run_parser.add_argument("--end-block", type=int, default=None, help="truncate the simulated window")
    run_parser.add_argument("--blocks-per-step", type=int, default=None, help="override the engine stride")
    run_parser.add_argument("--output", default=None, metavar="FILE", help="write the report to FILE instead of stdout")

    sub.add_parser("list", help="list registered scenarios")
    sub.add_parser("reports", help="list report ids accepted by `run --report`")
    return parser


def _cmd_list() -> int:
    definitions = scenarios.all_scenarios()
    width = max((len(name) for name in definitions), default=0)
    for name in sorted(definitions):
        definition = definitions[name]
        tags = f"  [{', '.join(definition.tags)}]" if definition.tags else ""
        print(f"{name.ljust(width)}  {definition.description}{tags}")
    return 0


def _cmd_reports() -> int:
    width = max(len(experiment_id) for experiment_id in EXPERIMENT_IDS)
    print(f"{'all'.ljust(width)}  every report below, in paper order")
    for experiment_id in EXPERIMENT_IDS:
        print(f"{experiment_id.ljust(width)}  {EXPERIMENTS[experiment_id].title}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        definition = scenarios.get(args.scenario)
    except scenarios.UnknownScenarioError as error:
        _status(f"error: {error.args[0]}")
        return 2

    report_ids = args.report or ["table1"]
    run_everything = "all" in report_ids
    unknown = [report_id for report_id in report_ids if report_id != "all" and report_id not in EXPERIMENTS]
    if unknown:
        _status(f"error: unknown report id(s) {', '.join(unknown)}; known: all, {', '.join(EXPERIMENT_IDS)}")
        return 2

    builder = definition.builder(args.seed)
    if args.end_block is not None or args.blocks_per_step is not None:
        builder.with_window(end_block=args.end_block, blocks_per_step=args.blocks_per_step)
    config = builder.config
    _status(
        f"scenario {definition.name!r} (seed {config.seed}): "
        f"blocks {config.start_block:,} – {config.end_block:,}, {config.n_steps:,} steps"
    )
    started = time.perf_counter()
    result = builder.run()
    _status(f"simulated in {time.perf_counter() - started:.1f}s; rendering {', '.join(report_ids)}")

    if run_everything:
        text = render_all(run_all(result))
    else:
        records = extract_liquidations(result)
        sections = [run_one(result, report_id, records).report for report_id in report_ids]
        text = "\n\n".join(sections) + "\n"

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        _status(f"report written to {args.output}")
    else:
        print(text)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "list":
        return _cmd_list()
    if args.command == "reports":
        return _cmd_reports()
    parser.print_help()
    return 2


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    raise SystemExit(main())
