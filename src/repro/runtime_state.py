"""Per-run reset registry for module-global mutable state.

The serial-vs-parallel byte-identity contract of the campaign executor
requires every run to start from the same process state no matter how many
runs the process executed before.  Module-global counters (deterministic
address/hash sequences in :mod:`repro.chain.types`) are the only such
state this codebase permits — and each one must register a resetter here
so :func:`reset_run_state` can rewind all of them in one call at the top
of every run.  The PKL003 lint rule enforces the registration.

Registration is keyed by a dotted name; re-registering a name replaces the
previous resetter (modules may be reloaded under test runners).  Resetters
run in sorted-name order so the reset itself is deterministic.
"""

from __future__ import annotations

from typing import Callable, Dict

__all__ = ["register_reset", "registered_resets", "reset_run_state"]

_RESETTERS: Dict[str, Callable[[], None]] = {}


def register_reset(name: str, fn: Callable[[], None]) -> None:
    """Register ``fn`` to run on every :func:`reset_run_state` call.

    ``name`` is a dotted identifier for the state being reset, e.g.
    ``"repro.chain.types.id_counters"``.
    """
    if not name:
        raise ValueError("reset registration needs a non-empty name")
    _RESETTERS[name] = fn


def registered_resets() -> tuple[str, ...]:
    """The names currently registered, in execution order."""
    return tuple(sorted(_RESETTERS))


def reset_run_state() -> None:
    """Rewind all registered module-global state to its import-time value."""
    for name in sorted(_RESETTERS):
        _RESETTERS[name]()
