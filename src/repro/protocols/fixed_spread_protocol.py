"""Shared fixed spread liquidation flow for Aave, Compound and dYdX.

The three pool-based protocols differ in parameters (close factor, spread per
market) and event names, but share the atomic liquidation flow of
Section 3.2.2: a liquidator repays part of the debt and instantly receives
discounted collateral, settled within a single transaction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..chain.transaction import TransactionReverted
from ..chain.types import Address
from ..core.fixed_spread import FixedSpreadQuote, LiquidationError, apply_liquidation, quote_liquidation
from ..core.position import Position
from .base import LendingProtocol, ProtocolError


@dataclass(frozen=True)
class LiquidationResult:
    """Outcome of an executed fixed spread liquidation call."""

    platform: str
    liquidator: Address
    borrower: Address
    quote: FixedSpreadQuote
    block_number: int
    used_flash_loan: bool = False


class FixedSpreadProtocol(LendingProtocol):
    """A lending pool with atomic fixed spread liquidations."""

    def liquidation_mechanism(self) -> str:
        """Fixed spread protocols settle liquidations atomically."""
        return "fixed-spread"

    # ------------------------------------------------------------------ #
    # Liquidation
    # ------------------------------------------------------------------ #
    def quote_liquidation_call(
        self,
        borrower: Address,
        debt_symbol: str,
        collateral_symbol: str,
        repay_amount: float,
    ) -> FixedSpreadQuote:
        """Preview a liquidation without executing it (what bots do off-chain)."""
        position = self.position_of(borrower)
        params = self.params_for(collateral_symbol)
        return quote_liquidation(
            position,
            debt_symbol.upper(),
            collateral_symbol.upper(),
            repay_amount,
            params,
            self.prices(),
            self.liquidation_thresholds(),
        )

    def liquidation_call(
        self,
        liquidator: Address,
        borrower: Address,
        debt_symbol: str,
        collateral_symbol: str,
        repay_amount: float,
        used_flash_loan: bool = False,
    ) -> LiquidationResult:
        """Execute a fixed spread liquidation (Aave's ``liquidationCall`` et al.).

        The liquidator transfers ``repay_amount`` of the debt asset to the
        pool and receives the discounted collateral.  Rule violations revert
        the transaction.
        """
        debt_symbol = debt_symbol.upper()
        collateral_symbol = collateral_symbol.upper()
        position = self.position_of(borrower)
        params = self.params_for(collateral_symbol)
        try:
            quote = quote_liquidation(
                position,
                debt_symbol,
                collateral_symbol,
                repay_amount,
                params,
                self.prices(),
                self.liquidation_thresholds(),
            )
        except LiquidationError as exc:
            raise TransactionReverted(f"{self.name} liquidation reverted: {exc}") from exc
        debt_token = self.registry.get(debt_symbol)
        collateral_token = self.registry.get(collateral_symbol)
        if debt_token.balance_of(liquidator) + 1e-9 < quote.repay_amount:
            raise TransactionReverted(
                f"liquidator lacks {quote.repay_amount:.4f} {debt_symbol} to repay the debt"
            )
        if collateral_token.balance_of(self.address) + 1e-9 < quote.collateral_amount:
            # The seized collateral was lent out: the pool is fully utilized
            # in that asset and the seize cannot be paid out.
            raise TransactionReverted(
                f"{self.name} pool lacks {quote.collateral_amount:.4f} {collateral_symbol} "
                f"liquidity to pay out the seized collateral"
            )
        debt_token.transfer(liquidator, self.address, quote.repay_amount)
        collateral_token.transfer(self.address, liquidator, quote.collateral_amount)
        apply_liquidation(position, quote)
        result = LiquidationResult(
            platform=self.name,
            liquidator=liquidator,
            borrower=borrower,
            quote=quote,
            block_number=self.chain.current_block,
            used_flash_loan=used_flash_loan,
        )
        self.chain.emit_event(
            self.LIQUIDATION_EVENT,
            emitter=self.address,
            data={
                "platform": self.name,
                "liquidator": liquidator.value,
                "borrower": borrower.value,
                "debt_symbol": debt_symbol,
                "collateral_symbol": collateral_symbol,
                "repay_amount": quote.repay_amount,
                "repay_usd": quote.repay_usd,
                "collateral_amount": quote.collateral_amount,
                "collateral_usd": quote.collateral_usd,
                "profit_usd": quote.profit_usd,
                "used_flash_loan": used_flash_loan,
                "mechanism": "fixed-spread",
            },
        )
        return result

    def quote_best_opportunity(self, borrower: Address) -> FixedSpreadQuote | None:
        """Quote the liquidation a rational bot would attempt on ``borrower``.

        Picks the largest (debt, collateral) pair, caps the repayment at the
        close factor and previews the call; returns ``None`` when there is
        nothing (or nothing valid) to liquidate.  For many candidates at
        once prefer :meth:`quote_opportunities`, which shares one oracle
        sweep across the whole batch.
        """
        return self._quote_best(
            self.position_of(borrower), self.prices(), self.liquidation_thresholds()
        )

    def quote_opportunities(
        self, positions: Iterable[Position]
    ) -> list[tuple[Position, FixedSpreadQuote]]:
        """Batched :meth:`quote_best_opportunity` over candidate positions.

        Fetches ``prices()`` / ``liquidation_thresholds()`` once and reuses
        them for every candidate — prices cannot move within a block stride,
        so the result is exactly the per-candidate quotes, minus the
        repeated oracle sweeps that dominate post-crash strides when
        hundreds of rows are flagged.  Candidates with nothing (or nothing
        valid) to liquidate are dropped.
        """
        positions = list(positions)
        if not positions:
            return []
        prices = self.prices()
        thresholds = self.liquidation_thresholds()
        quoted: list[tuple[Position, FixedSpreadQuote]] = []
        for position in positions:
            quote = self._quote_best(position, prices, thresholds)
            if quote is not None:
                quoted.append((position, quote))
        return quoted

    def _quote_best(
        self,
        position: Position,
        prices: Mapping[str, float],
        thresholds: Mapping[str, float],
    ) -> FixedSpreadQuote | None:
        """The shared single-candidate quote against pre-fetched prices."""
        debt_values = position.debt_values(prices)
        collateral_values = position.collateral_values(prices)
        if not debt_values or not collateral_values:
            return None
        debt_symbol = max(debt_values, key=debt_values.get)
        collateral_symbol = max(collateral_values, key=collateral_values.get)
        repay_amount = position.debt.get(debt_symbol, 0.0) * self.close_factor
        if repay_amount <= 0:
            return None
        try:
            return quote_liquidation(
                position,
                debt_symbol,
                collateral_symbol,
                repay_amount,
                self.params_for(collateral_symbol),
                prices,
                thresholds,
            )
        except LiquidationError:
            return None

    def best_liquidation_pair(self, borrower: Address) -> tuple[str, str] | None:
        """The (debt, collateral) pair with the largest outstanding values.

        This is the pair a rational liquidator targets; ``None`` if the
        position carries no debt or no collateral.
        """
        position = self.position_of(borrower)
        prices = self.prices()
        debt_values = position.debt_values(prices)
        collateral_values = position.collateral_values(prices)
        if not debt_values or not collateral_values:
            return None
        debt_symbol = max(debt_values, key=debt_values.get)
        collateral_symbol = max(collateral_values, key=collateral_values.get)
        return debt_symbol, collateral_symbol

    def max_repay_amount(self, borrower: Address, debt_symbol: str) -> float:
        """Close-factor cap of the borrower's outstanding ``debt_symbol`` debt."""
        position = self.position_of(borrower)
        return position.debt.get(debt_symbol.upper(), 0.0) * self.close_factor

    def ensure_market(self, symbol: str) -> None:
        """Raise unless ``symbol`` has a configured market."""
        if symbol.upper() not in self.markets:
            raise ProtocolError(f"{self.name} has no {symbol} market")
