"""The four studied lending protocols: Aave (V1/V2), Compound, dYdX, MakerDAO."""

from .aave import (
    AAVE_CLOSE_FACTOR,
    AAVE_MARKETS,
    AAVE_V1_INCEPTION_BLOCK,
    AAVE_V2_INCEPTION_BLOCK,
    AaveProtocol,
    make_aave_v1,
    make_aave_v2,
)
from .base import LendingProtocol, MarketConfig, ProtocolError
from .compound import (
    COMPOUND_CLOSE_FACTOR,
    COMPOUND_INCEPTION_BLOCK,
    COMPOUND_LIQUIDATION_SPREAD,
    COMPOUND_MARKETS,
    CompoundProtocol,
    make_compound,
)
from .dydx import (
    DYDX_CLOSE_FACTOR,
    DYDX_INCEPTION_BLOCK,
    DYDX_LIQUIDATION_SPREAD,
    DYDX_MARKETS,
    DydxProtocol,
    make_dydx,
)
from .fixed_spread_protocol import FixedSpreadProtocol, LiquidationResult
from .interest import BLOCKS_PER_YEAR, KinkedRateModel, StabilityFeeModel
from .makerdao import (
    AuctionSettlement,
    MAKERDAO_COLLATERAL,
    MAKERDAO_INCEPTION_BLOCK,
    MakerDAOProtocol,
    make_makerdao,
)

__all__ = [
    "AAVE_CLOSE_FACTOR",
    "AAVE_MARKETS",
    "AAVE_V1_INCEPTION_BLOCK",
    "AAVE_V2_INCEPTION_BLOCK",
    "AaveProtocol",
    "AuctionSettlement",
    "BLOCKS_PER_YEAR",
    "COMPOUND_CLOSE_FACTOR",
    "COMPOUND_INCEPTION_BLOCK",
    "COMPOUND_LIQUIDATION_SPREAD",
    "COMPOUND_MARKETS",
    "CompoundProtocol",
    "DYDX_CLOSE_FACTOR",
    "DYDX_INCEPTION_BLOCK",
    "DYDX_LIQUIDATION_SPREAD",
    "DYDX_MARKETS",
    "DydxProtocol",
    "FixedSpreadProtocol",
    "KinkedRateModel",
    "LendingProtocol",
    "LiquidationResult",
    "MAKERDAO_COLLATERAL",
    "MAKERDAO_INCEPTION_BLOCK",
    "MakerDAOProtocol",
    "MarketConfig",
    "ProtocolError",
    "StabilityFeeModel",
    "make_aave_v1",
    "make_aave_v2",
    "make_compound",
    "make_dydx",
    "make_makerdao",
]
