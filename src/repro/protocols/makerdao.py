"""MakerDAO (Section 3.3): collateralized debt positions and tend-dent auctions.

MakerDAO is not a pool-based lender: a user locks collateral (e.g. ETH) in a
CDP and *mints* DAI against it, with a minimum collateralization ratio of
150 % for most collateral types (equivalently a liquidation threshold of
1/1.5 ≈ 0.667).  When a CDP becomes unsafe anyone can ``bite`` it, starting a
two-phase tend-dent auction (Section 3.2.1); after the auction terminates,
``deal`` finalizes the liquidation and settles the transfers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..chain.chain import Blockchain
from ..chain.transaction import TransactionReverted
from ..chain.types import Address
from ..core.auction import AuctionConfig, AuctionError, AuctionPhase, TendDentAuction
from ..oracle.chainlink import PriceOracle
from ..tokens.registry import TokenRegistry
from .base import LendingProtocol, MarketConfig, ProtocolError
from .interest import StabilityFeeModel

#: MakerDAO's inception block in the study window (footnote 5 of the paper).
MAKERDAO_INCEPTION_BLOCK = 8_040_587

#: Collateral types and their liquidation thresholds.  ETH-A style vaults
#: require a 150 % collateralization ratio ⇒ LT = 1/1.5; USDC-style vaults
#: use tighter ratios.
MAKERDAO_COLLATERAL: dict[str, float] = {
    "ETH": 1.0 / 1.50,
    "WBTC": 1.0 / 1.50,
    "USDC": 1.0 / 1.20,
    "BAT": 1.0 / 1.50,
    "LINK": 1.0 / 1.75,
    "UNI": 1.0 / 1.75,
    "ZRX": 1.0 / 1.75,
    "MANA": 1.0 / 1.75,
    "KNC": 1.0 / 1.75,
    "TUSD": 1.0 / 1.20,
    "USDT": 1.0 / 1.50,
    "COMP": 1.0 / 1.75,
    "AAVE": 1.0 / 1.75,
    "BAL": 1.0 / 1.75,
}


@dataclass(frozen=True)
class AuctionSettlement:
    """Outcome of a finalized MakerDAO auction."""

    auction_id: int
    borrower: Address
    winner: Address | None
    debt_repaid: float
    collateral_won: float
    collateral_returned: float
    duration_blocks: int


class MakerDAOProtocol(LendingProtocol):
    """MakerDAO-style CDP engine with tend-dent auction liquidations."""

    LIQUIDATION_EVENT = "Bite"

    def __init__(
        self,
        chain: Blockchain,
        oracle: PriceOracle,
        registry: TokenRegistry,
        collateral_types: dict[str, float] | None = None,
        auction_config: AuctionConfig | None = None,
        stability_fee: float = 0.02,
        inception_block: int = MAKERDAO_INCEPTION_BLOCK,
    ) -> None:
        super().__init__(
            name="MakerDAO",
            chain=chain,
            oracle=oracle,
            registry=registry,
            close_factor=1.0,
            inception_block=inception_block,
        )
        self.auction_config = auction_config or AuctionConfig()
        self.stability_fee_model = StabilityFeeModel(annual_rate=stability_fee)
        self.auctions: dict[int, TendDentAuction] = {}
        self.settlements: list[AuctionSettlement] = []
        self._next_auction_id = 1
        self.dai = registry.ensure("DAI")
        for symbol, threshold in (collateral_types or MAKERDAO_COLLATERAL).items():
            registry.ensure(symbol)
            self.add_market(
                MarketConfig(
                    symbol=symbol,
                    liquidation_threshold=threshold,
                    liquidation_spread=0.0,  # the auction discovers the discount
                    borrow_enabled=False,
                )
            )
        # DAI itself is the debt asset: it cannot be collateral on MakerDAO.
        self.add_market(
            MarketConfig(
                symbol="DAI",
                liquidation_threshold=0.0,
                liquidation_spread=0.0,
                collateral_enabled=False,
                borrow_enabled=True,
            )
        )

    def liquidation_mechanism(self) -> str:
        """MakerDAO liquidates through English auctions."""
        return "auction"

    # ------------------------------------------------------------------ #
    # CDP actions: DAI is minted on borrow and burned on repay
    # ------------------------------------------------------------------ #
    def borrow(self, user: Address, symbol: str, amount: float) -> None:
        """Mint DAI against the caller's vault collateral."""
        if symbol.upper() != "DAI":
            raise ProtocolError("MakerDAO vaults can only mint DAI")
        if amount <= 0:
            raise ProtocolError("borrow amount must be positive")
        prices = self.prices()
        thresholds = self.liquidation_thresholds()
        position = self.position_of(user)
        prospective = position.copy()
        prospective.add_debt("DAI", amount)
        if prospective.health_factor(prices, thresholds) < 1.0:
            raise ProtocolError("minting would exceed the vault's borrowing capacity")
        self.dai.mint(user, amount)
        position.add_debt("DAI", amount)
        self.chain.emit_event(
            "Borrow",
            emitter=self.address,
            data={"platform": self.name, "user": user.value, "symbol": "DAI", "amount": amount},
        )

    def repay(self, user: Address, symbol: str, amount: float, payer: Address | None = None) -> float:
        """Burn DAI to reduce the vault's debt."""
        if symbol.upper() != "DAI":
            raise ProtocolError("MakerDAO debt is denominated in DAI")
        position = self.position_of(user)
        owed = position.debt.get("DAI", 0.0)
        if owed <= 0:
            raise ProtocolError(f"{user} owes no DAI")
        repay_amount = min(amount, owed)
        source = payer or user
        self.dai.burn(source, repay_amount)
        position.reduce_debt("DAI", repay_amount)
        self.chain.emit_event(
            "Repay",
            emitter=self.address,
            data={"platform": self.name, "user": user.value, "symbol": "DAI", "amount": repay_amount},
        )
        return repay_amount

    def accrue_interest(self, to_block: int | None = None) -> None:
        """Apply the stability fee to every vault's DAI debt."""
        block = self.chain.current_block if to_block is None else to_block
        elapsed = block - self._last_accrual_block
        if elapsed <= 0:
            return
        factor = self.stability_fee_model.accrual_factor(0.0, elapsed)
        factors = {"DAI": factor}
        # Debt-free vaults are skipped via the book's debt columns (a no-op
        # for them either way); see LendingProtocol._accrual_positions.
        for position in self._accrual_positions():
            position.scale_debts(factors)
        self._last_accrual_block = block

    # ------------------------------------------------------------------ #
    # Auction liquidation: bite → tend/dent → deal
    # ------------------------------------------------------------------ #
    def bite(self, initiator: Address, borrower: Address, collateral_symbol: str | None = None) -> TendDentAuction:
        """Start a collateral auction for an unsafe vault (the public ``bite``)."""
        position = self.position_of(borrower)
        prices = self.prices()
        thresholds = self.liquidation_thresholds()
        if not position.is_liquidatable(prices, thresholds):
            raise TransactionReverted("vault is safe; cannot bite")
        if collateral_symbol is None:
            collateral_values = position.collateral_values(prices)
            if not collateral_values:
                raise TransactionReverted("vault holds no collateral")
            collateral_symbol = max(collateral_values, key=collateral_values.get)
        collateral_symbol = collateral_symbol.upper()
        collateral_lot = position.collateral.get(collateral_symbol, 0.0)
        if collateral_lot <= 0:
            raise TransactionReverted(f"vault holds no {collateral_symbol} collateral")
        debt_target = position.debt.get("DAI", 0.0)
        if debt_target <= 0:
            raise TransactionReverted("vault owes no DAI")
        auction = TendDentAuction(
            auction_id=self._next_auction_id,
            borrower=borrower,
            collateral_symbol=collateral_symbol,
            debt_symbol="DAI",
            collateral_lot=collateral_lot,
            debt_target=debt_target,
            start_block=self.chain.current_block,
            config=self.auction_config,
        )
        self._next_auction_id += 1
        self.auctions[auction.auction_id] = auction
        # The collateral is escrowed (removed from the vault) for the
        # duration of the auction; the debt stays until the deal settles.
        position.remove_collateral(collateral_symbol, collateral_lot)
        self.chain.emit_event(
            "Bite",
            emitter=self.address,
            data={
                "platform": self.name,
                "auction_id": auction.auction_id,
                "borrower": borrower.value,
                "collateral_symbol": collateral_symbol,
                "collateral_lot": collateral_lot,
                "debt_target": debt_target,
                "initiator": initiator.value,
                "mechanism": "auction",
            },
        )
        return auction

    def auction(self, auction_id: int) -> TendDentAuction:
        """Look up an auction by id."""
        try:
            return self.auctions[auction_id]
        except KeyError as exc:
            raise ProtocolError(f"no auction with id {auction_id}") from exc

    def open_auctions(self) -> list[TendDentAuction]:
        """Auctions that have not been finalized yet."""
        return [auction for auction in self.auctions.values() if auction.phase is not AuctionPhase.FINALIZED]

    def tend(self, bidder: Address, auction_id: int, debt_bid: float) -> None:
        """Place a tend-phase bid: repay ``debt_bid`` DAI for the whole lot."""
        auction = self.auction(auction_id)
        try:
            auction.place_tend_bid(bidder, debt_bid, self.chain.current_block)
        except AuctionError as exc:
            raise TransactionReverted(str(exc)) from exc
        self.chain.emit_event(
            "Tend",
            emitter=self.address,
            data={
                "platform": self.name,
                "auction_id": auction_id,
                "bidder": bidder.value,
                "debt_bid": debt_bid,
            },
        )

    def dent(self, bidder: Address, auction_id: int, collateral_bid: float) -> None:
        """Place a dent-phase bid: accept only ``collateral_bid`` for the full debt."""
        auction = self.auction(auction_id)
        try:
            auction.place_dent_bid(bidder, collateral_bid, self.chain.current_block)
        except AuctionError as exc:
            raise TransactionReverted(str(exc)) from exc
        self.chain.emit_event(
            "Dent",
            emitter=self.address,
            data={
                "platform": self.name,
                "auction_id": auction_id,
                "bidder": bidder.value,
                "collateral_bid": collateral_bid,
            },
        )

    def deal(self, caller: Address, auction_id: int) -> AuctionSettlement:
        """Finalize a terminated auction and settle the transfers."""
        auction = self.auction(auction_id)
        try:
            winning_bid = auction.finalize(self.chain.current_block)
        except AuctionError as exc:
            raise TransactionReverted(str(exc)) from exc
        borrower_position = self.position_of(auction.borrower)
        collateral_token = self.registry.get(auction.collateral_symbol)
        if winning_bid is None:
            # Nobody bid: the collateral goes back to the vault untouched.
            borrower_position.add_collateral(auction.collateral_symbol, auction.collateral_lot)
            settlement = AuctionSettlement(
                auction_id=auction_id,
                borrower=auction.borrower,
                winner=None,
                debt_repaid=0.0,
                collateral_won=0.0,
                collateral_returned=auction.collateral_lot,
                duration_blocks=auction.duration_blocks() or 0,
            )
        else:
            winner = winning_bid.bidder
            debt_repaid = winning_bid.debt_bid
            collateral_won = winning_bid.collateral_bid
            collateral_returned = auction.collateral_lot - collateral_won
            # The winner burns DAI to cover the repaid debt and receives the
            # escrowed collateral; leftover collateral returns to the vault.
            self.dai.burn(winner, debt_repaid)
            collateral_token.mint(winner, 0.0)  # ensure ledger entry exists
            collateral_token_balance_source = self.address
            # Collateral was escrowed off the vault but remains in protocol
            # custody on the token ledger; transfer it out now.
            collateral_token.transfer(collateral_token_balance_source, winner, collateral_won)
            if collateral_returned > 0:
                borrower_position.add_collateral(auction.collateral_symbol, collateral_returned)
            borrower_position.reduce_debt("DAI", min(debt_repaid, borrower_position.debt.get("DAI", 0.0)))
            settlement = AuctionSettlement(
                auction_id=auction_id,
                borrower=auction.borrower,
                winner=winner,
                debt_repaid=debt_repaid,
                collateral_won=collateral_won,
                collateral_returned=collateral_returned,
                duration_blocks=auction.duration_blocks() or 0,
            )
        self.settlements.append(settlement)
        self.chain.emit_event(
            "Deal",
            emitter=self.address,
            data={
                "platform": self.name,
                "auction_id": auction_id,
                "caller": caller.value,
                "winner": settlement.winner.value if settlement.winner else None,
                "borrower": auction.borrower.value,
                "collateral_symbol": auction.collateral_symbol,
                "debt_repaid": settlement.debt_repaid,
                "collateral_won": settlement.collateral_won,
                "collateral_returned": settlement.collateral_returned,
                "duration_blocks": settlement.duration_blocks,
                "n_bids": auction.n_bids,
                "n_tend_bids": auction.n_tend_bids,
                "n_dent_bids": auction.n_dent_bids,
                "n_bidders": auction.n_bidders,
                "first_bid_delay_blocks": auction.first_bid_delay_blocks(),
                "bid_interval_blocks": auction.bid_interval_blocks(),
                "terminated_in_tend": auction.terminated_in_tend,
                "mechanism": "auction",
            },
        )
        return settlement

    def reconfigure_auctions(self, config: AuctionConfig) -> None:
        """Change the auction parameters for *future* auctions.

        MakerDAO did exactly this after the March 2020 incident, which is why
        Figure 7 shows the configured bid duration / auction length shifting.
        """
        self.auction_config = config
        self.chain.emit_event(
            "AuctionParamsChanged",
            emitter=self.address,
            data={
                "platform": self.name,
                "auction_length_blocks": config.auction_length_blocks,
                "bid_duration_blocks": config.bid_duration_blocks,
            },
        )


def make_makerdao(chain: Blockchain, oracle: PriceOracle, registry: TokenRegistry) -> MakerDAOProtocol:
    """MakerDAO with the paper's collateral types and inception block."""
    return MakerDAOProtocol(chain, oracle, registry)
