"""Utilization-based interest rate models.

"The interest rate of an Aave pool is decided algorithmically by the smart
contract and depends on the available funds within the lending pool.  The
more users borrow an asset, the higher its interest rate rises."
(Section 3.3.)  The kinked model below is the standard two-slope curve used
by Aave and Compound; MakerDAO's stability fee is modelled as a flat rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..chain.types import BLOCKS_PER_DAY

#: Approximate number of blocks per year used to convert annual rates into
#: per-block factors.
BLOCKS_PER_YEAR = BLOCKS_PER_DAY * 365


@dataclass(frozen=True)
class KinkedRateModel:
    """Two-slope ("kinked") utilization curve.

    The borrow APR rises with pool utilization: gently up to the optimal
    utilization (``kink``), then steeply beyond it, which is what pushes
    borrowers to repay when liquidity becomes scarce.
    """

    base_rate: float = 0.0
    slope_low: float = 0.04
    slope_high: float = 0.75
    kink: float = 0.8

    def borrow_apr(self, utilization: float) -> float:
        """Annual borrow rate at the given utilization (clamped to [0, 1])."""
        utilization = min(max(utilization, 0.0), 1.0)
        if utilization <= self.kink:
            return self.base_rate + self.slope_low * (utilization / self.kink if self.kink else 0.0)
        excess = (utilization - self.kink) / (1.0 - self.kink)
        return self.base_rate + self.slope_low + self.slope_high * excess

    def supply_apr(self, utilization: float, reserve_factor: float = 0.1) -> float:
        """Annual supply rate: borrow interest flows to lenders minus reserves."""
        return self.borrow_apr(utilization) * utilization * (1.0 - reserve_factor)

    def per_block_factor(self, utilization: float) -> float:
        """Multiplicative debt growth factor for a single block."""
        return 1.0 + self.borrow_apr(utilization) / BLOCKS_PER_YEAR

    def accrual_factor(self, utilization: float, n_blocks: int) -> float:
        """Multiplicative debt growth factor over ``n_blocks`` blocks."""
        if n_blocks <= 0:
            return 1.0
        return (1.0 + self.borrow_apr(utilization) / BLOCKS_PER_YEAR) ** n_blocks


@dataclass(frozen=True)
class StabilityFeeModel:
    """MakerDAO-style flat stability fee, independent of utilization."""

    annual_rate: float = 0.02

    def borrow_apr(self, utilization: float = 0.0) -> float:
        """Annual borrow rate (constant)."""
        return self.annual_rate

    def accrual_factor(self, utilization: float, n_blocks: int) -> float:
        """Multiplicative debt growth factor over ``n_blocks`` blocks."""
        if n_blocks <= 0:
            return 1.0
        return (1.0 + self.annual_rate / BLOCKS_PER_YEAR) ** n_blocks
