"""Aave V1 and V2 (Section 3.3).

Aave is a pool-based protocol with a 50 % close factor and per-market
liquidation spreads between 5 % and 15 %, priced by an external Chainlink
oracle.  V2 (December 2020) kept the core protocol "nearly unchanged"; the
two versions are modelled as separate protocol instances with different
inception blocks and market mixes (V2 borrowers prefer multi-asset
collateral, which is what makes Aave V2 less sensitive in Figure 8a).
"""

from __future__ import annotations

from ..chain.chain import Blockchain
from ..oracle.chainlink import PriceOracle
from ..tokens.registry import TokenRegistry
from .base import MarketConfig
from .fixed_spread_protocol import FixedSpreadProtocol

#: The inception blocks reported in footnote 5 of the paper.
AAVE_V1_INCEPTION_BLOCK = 9_241_022
#: Aave V2 launched in December 2020.
AAVE_V2_INCEPTION_BLOCK = 11_360_000

#: Default Aave market parameters: (liquidation threshold, liquidation spread).
AAVE_MARKETS: dict[str, tuple[float, float]] = {
    "ETH": (0.80, 0.05),
    "WBTC": (0.75, 0.10),
    "DAI": (0.80, 0.05),
    "USDC": (0.85, 0.05),
    "USDT": (0.80, 0.05),
    "TUSD": (0.80, 0.05),
    "LINK": (0.70, 0.10),
    "UNI": (0.65, 0.10),
    "AAVE": (0.65, 0.10),
    "YFI": (0.55, 0.15),
    "SNX": (0.40, 0.10),
    "KNC": (0.65, 0.10),
    "MANA": (0.60, 0.10),
    "ZRX": (0.65, 0.10),
    "BAT": (0.65, 0.10),
    "ENJ": (0.60, 0.10),
    "REN": (0.60, 0.125),
    "CRV": (0.45, 0.15),
    "BAL": (0.45, 0.10),
    "MKR": (0.65, 0.10),
}

#: Aave allows at most 50 % of the outstanding debt per liquidation call.
AAVE_CLOSE_FACTOR = 0.5


class AaveProtocol(FixedSpreadProtocol):
    """Aave-style pool with per-market spreads and a 50 % close factor."""

    LIQUIDATION_EVENT = "LiquidationCall"

    def __init__(
        self,
        chain: Blockchain,
        oracle: PriceOracle,
        registry: TokenRegistry,
        version: int = 2,
        markets: dict[str, tuple[float, float]] | None = None,
        inception_block: int | None = None,
    ) -> None:
        if version not in (1, 2):
            raise ValueError("Aave version must be 1 or 2")
        name = f"Aave V{version}"
        if inception_block is None:
            inception_block = AAVE_V1_INCEPTION_BLOCK if version == 1 else AAVE_V2_INCEPTION_BLOCK
        super().__init__(
            name=name,
            chain=chain,
            oracle=oracle,
            registry=registry,
            close_factor=AAVE_CLOSE_FACTOR,
            inception_block=inception_block,
        )
        self.version = version
        for symbol, (threshold, spread) in (markets or AAVE_MARKETS).items():
            registry.ensure(symbol)
            self.add_market(
                MarketConfig(
                    symbol=symbol,
                    liquidation_threshold=threshold,
                    liquidation_spread=spread,
                )
            )


def make_aave_v1(chain: Blockchain, oracle: PriceOracle, registry: TokenRegistry) -> AaveProtocol:
    """Aave V1 with the paper's inception block and a reduced market mix."""
    v1_markets = {
        symbol: params
        for symbol, params in AAVE_MARKETS.items()
        if symbol in {"ETH", "DAI", "USDC", "USDT", "WBTC", "LINK", "BAT", "ZRX", "KNC", "MKR", "SNX"}
    }
    return AaveProtocol(chain, oracle, registry, version=1, markets=v1_markets)


def make_aave_v2(chain: Blockchain, oracle: PriceOracle, registry: TokenRegistry) -> AaveProtocol:
    """Aave V2 with the full market mix of Figure 8a."""
    return AaveProtocol(chain, oracle, registry, version=2, markets=AAVE_MARKETS)
