"""dYdX (Section 3.3).

dYdX supports only the WETH/USDC/DAI markets, uses a fixed 5 % spread, and —
crucially for the paper's comparison — has *no* close factor: "dYdX's close
factor is 100 %, allowing the liquidators to liquidate the entire collateral
within one liquidation."  dYdX also maintains an external insurance fund that
writes off Type I bad debt, which is why Table 2 reports no Type I bad debt
for dYdX.
"""

from __future__ import annotations

from ..chain.chain import Blockchain
from ..chain.types import Address, make_address
from ..oracle.chainlink import PriceOracle
from ..tokens.registry import TokenRegistry
from .base import MarketConfig
from .fixed_spread_protocol import FixedSpreadProtocol

#: dYdX's inception block (footnote 5 of the paper).
DYDX_INCEPTION_BLOCK = 7_575_711

#: dYdX operates at a fixed spread of 5 %.
DYDX_LIQUIDATION_SPREAD = 0.05

#: dYdX has no close factor: the full debt may be repaid at once.
DYDX_CLOSE_FACTOR = 1.0

#: dYdX markets (the paper: WETH/USDC, WETH/DAI and USDC/DAI markets) with
#: their margin requirement expressed as a liquidation threshold.
DYDX_MARKETS: dict[str, float] = {
    "ETH": 0.869565,  # 115 % margin requirement ⇒ LT = 1 / 1.15
    "USDC": 0.869565,
    "DAI": 0.869565,
}


class DydxProtocol(FixedSpreadProtocol):
    """dYdX-style margin protocol: 3 markets, 5 % spread, CF = 100 %."""

    LIQUIDATION_EVENT = "LogLiquidate"

    def __init__(
        self,
        chain: Blockchain,
        oracle: PriceOracle,
        registry: TokenRegistry,
        markets: dict[str, float] | None = None,
        inception_block: int = DYDX_INCEPTION_BLOCK,
    ) -> None:
        super().__init__(
            name="dYdX",
            chain=chain,
            oracle=oracle,
            registry=registry,
            close_factor=DYDX_CLOSE_FACTOR,
            inception_block=inception_block,
        )
        self.insurance_fund: Address = make_address("dYdX-insurance-fund")
        self._insurance_written_off_usd = 0.0
        for symbol, threshold in (markets or DYDX_MARKETS).items():
            registry.ensure(symbol)
            self.add_market(
                MarketConfig(
                    symbol=symbol,
                    liquidation_threshold=threshold,
                    liquidation_spread=DYDX_LIQUIDATION_SPREAD,
                )
            )

    # ------------------------------------------------------------------ #
    # Insurance fund
    # ------------------------------------------------------------------ #
    @property
    def insurance_written_off_usd(self) -> float:
        """Cumulative USD value of Type I bad debt written off by the fund."""
        return self._insurance_written_off_usd

    def write_off_bad_debt(self) -> float:
        """Close every under-collateralized position at the insurance fund's expense.

        Returns the USD value written off in this call.  The scenario engine
        invokes this periodically, reproducing why "dYdX does not have any
        Type I bad debt at block 12344944" (Section 4.4.2).
        """
        written_off = 0.0
        # The columnar book flags CR < 1 candidates (with a safety margin);
        # each is confirmed with the scalar ratio before being written off,
        # so the set matches a scalar sweep over every indebted position.
        # With book aggregates on, the candidate pass and the written-off
        # values come from the block's shared (cached) valuation, whose
        # pinned per-row values are bit-identical to the scalar formulas.
        if self.uses_book_aggregates():
            valuation = self.valuation()
            prices = valuation.prices
            rows = valuation.under_collateralized_rows()
            row_values = valuation.pinned_row_values
        else:
            prices = self.prices()
            scan = self.book.scan(prices, self.liquidation_thresholds())
            rows = scan.under_collateralized_rows()
            row_values = None
        for row in rows.tolist():
            position = self.book.position_at(row)
            if not position.is_under_collateralized(prices):
                continue
            if row_values is not None:
                collateral_usd, debt_usd = row_values(row)
            else:
                debt_usd = position.total_debt_usd(prices)
                collateral_usd = position.total_collateral_usd(prices)
            written_off += debt_usd - collateral_usd
            # The fund absorbs the shortfall: debt and collateral are cleared.
            position.clear()
            self.chain.emit_event(
                "InsuranceWriteOff",
                emitter=self.address,
                data={
                    "platform": self.name,
                    "borrower": position.owner.value,
                    "shortfall_usd": debt_usd - collateral_usd,
                },
            )
        self._insurance_written_off_usd += written_off
        return written_off


def make_dydx(chain: Blockchain, oracle: PriceOracle, registry: TokenRegistry) -> DydxProtocol:
    """dYdX with the paper's market mix and parameters."""
    return DydxProtocol(chain, oracle, registry)
