"""Shared lending-pool machinery used by all four protocol implementations.

The paper's system model (Figure 1) has lenders/borrowers interacting with a
pool contract, a price oracle feeding prices, and liquidators closing
unhealthy positions.  :class:`LendingProtocol` implements the pool: asset
custody through the token ledgers, per-market configuration, interest
accrual, position accounting, and the health-factor queries the analytics
layer and the agents need.  Protocol-specific liquidation flows live in the
subclasses.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from .. import sanitize
from ..chain.chain import Blockchain
from ..chain.types import Address, make_address
from ..core.position import DUST, Position
from ..core.position_book import BookScan, BookValuation, PositionBook
from ..core.terminology import LiquidationParams
from ..oracle.chainlink import PriceOracle
from ..telemetry import runtime as telemetry
from ..tokens.registry import TokenRegistry
from .interest import KinkedRateModel


class ProtocolError(Exception):
    """Raised on user actions that the protocol rules forbid."""


@dataclass
class MarketConfig:
    """Per-asset market parameters of a lending pool.

    Attributes
    ----------
    symbol:
        Asset symbol of the market.
    liquidation_threshold:
        LT for this asset when used as collateral.
    liquidation_spread:
        LS paid to liquidators seizing this collateral.
    collateral_enabled / borrow_enabled:
        Whether the asset may be used as collateral / borrowed.
    """

    symbol: str
    liquidation_threshold: float
    liquidation_spread: float
    collateral_enabled: bool = True
    borrow_enabled: bool = True
    interest_model: KinkedRateModel = field(default_factory=KinkedRateModel)


class LendingProtocol(abc.ABC):
    """Base class of the four studied lending protocols."""

    #: Name of the liquidation event emitted by the concrete protocol.
    LIQUIDATION_EVENT = "Liquidation"

    def __init__(
        self,
        name: str,
        chain: Blockchain,
        oracle: PriceOracle,
        registry: TokenRegistry,
        close_factor: float,
        inception_block: int | None = None,
    ) -> None:
        self.name = name
        self.chain = chain
        self.oracle = oracle
        self.registry = registry
        self.close_factor = close_factor
        self.address = make_address(name)
        self.markets: dict[str, MarketConfig] = {}
        self.positions: dict[Address, Position] = {}
        #: Columnar mirror of every position for vectorized health scans.
        self.book = PositionBook()
        #: ``"vectorized"`` (default) routes aggregate valuations (totals,
        #: snapshots, utilization, analytics sweeps) through the book's
        #: :class:`~repro.core.position_book.BookValuation`; ``"scalar"``
        #: keeps the legacy per-position walks.  Both backends produce
        #: bit-identical outputs (``tests/test_valuation_equivalence.py``).
        self.aggregate_backend: str = "vectorized"
        self._valuation_cache: BookValuation | None = None
        self._valuation_key: tuple[int, int, int] | None = None
        self._valuation_hits = 0
        self.inception_block = chain.current_block if inception_block is None else inception_block
        self._total_borrowed_usd_estimate = 0.0
        self._last_accrual_block = self.chain.current_block
        chain.register_snapshot_provider(self.name, self.snapshot)

    # ------------------------------------------------------------------ #
    # Market configuration
    # ------------------------------------------------------------------ #
    def add_market(self, market: MarketConfig) -> MarketConfig:
        """Register a market (idempotent per symbol)."""
        self.markets[market.symbol.upper()] = market
        # Pre-register the asset column so the book's matrices do not need
        # to grow mid-run when the first deposit of the asset arrives.
        self.book.ensure_asset(market.symbol)
        return market

    def market(self, symbol: str) -> MarketConfig:
        """Return the market config for ``symbol`` or raise :class:`ProtocolError`."""
        try:
            return self.markets[symbol.upper()]
        except KeyError as exc:
            raise ProtocolError(f"{self.name} has no {symbol} market") from exc

    def liquidation_thresholds(self) -> dict[str, float]:
        """Per-asset LT mapping used by health-factor computations."""
        return {symbol: market.liquidation_threshold for symbol, market in self.markets.items()}

    def params_for(self, collateral_symbol: str) -> LiquidationParams:
        """Liquidation parameters applicable when seizing ``collateral_symbol``."""
        market = self.market(collateral_symbol)
        return LiquidationParams(
            liquidation_threshold=market.liquidation_threshold,
            liquidation_spread=market.liquidation_spread,
            close_factor=self.close_factor,
        )

    # ------------------------------------------------------------------ #
    # Prices
    # ------------------------------------------------------------------ #
    def prices(self) -> dict[str, float]:
        """Latest oracle prices for every configured market."""
        return {symbol: self.oracle.price(symbol) for symbol in self.markets}

    # ------------------------------------------------------------------ #
    # Positions
    # ------------------------------------------------------------------ #
    def position_of(self, user: Address) -> Position:
        """Return (creating if needed) the position of ``user``."""
        position = self.positions.get(user)
        if position is None:
            position = Position(owner=user)
            self.positions[user] = position
            self.book.attach(position)
        return position

    def open_positions(self) -> list[Position]:
        """Positions that still carry debt or collateral."""
        return [position for position in self.positions.values() if not position.is_empty]

    def positions_with_debt(self) -> list[Position]:
        """Positions that still owe debt."""
        return [position for position in self.positions.values() if position.has_debt]

    def health_factor(self, user: Address) -> float:
        """Current health factor of ``user``'s position."""
        return self.position_of(user).health_factor(self.prices(), self.liquidation_thresholds())

    def is_liquidatable(self, user: Address) -> bool:
        """Whether ``user``'s position can currently be liquidated."""
        return self.position_of(user).is_liquidatable(self.prices(), self.liquidation_thresholds())

    def liquidatable_positions(self) -> list[Position]:
        """All positions whose health factor is below 1 at current prices."""
        return self.liquidatable_candidates()

    def book_scan(self) -> BookScan:
        """One vectorized valuation of every position at current prices."""
        return self.book.scan(self.prices(), self.liquidation_thresholds())

    def uses_book_aggregates(self) -> bool:
        """Whether aggregate valuations run through the book (the default).

        Raises :class:`ValueError` on an unknown :attr:`aggregate_backend`.
        """
        backend = self.aggregate_backend
        if backend == "vectorized":
            return True
        if backend == "scalar":
            return False
        raise ValueError(f"unknown aggregate backend {backend!r}")

    def valuation(self) -> BookValuation:
        """The :class:`BookValuation` of every position at current prices.

        Cached per ``(block, oracle price version, book revision)``: within
        one block, the snapshot providers, the analytics sweeps and the
        health-factor watcher all share a single sync + vectorized pass
        instead of refetching prices and revaluing the book each time.
        Any position mutation (book revision), posted price (oracle
        version) or block advance invalidates the cache, so a hit is
        exactly as fresh as a recomputation.  Market parameters
        (liquidation thresholds) are fixed at construction time — nothing
        in the simulation mutates them mid-run.
        """
        key = (
            self.chain.current_block,
            getattr(self.oracle, "version", 0),
            self.book.revision,
        )
        active = telemetry.active()
        cached = self._valuation_cache
        if cached is not None and self._valuation_key == key:
            if active is not None:
                active.counter(
                    "repro_valuation_cache_total",
                    "BookValuation cache lookups, by outcome",
                    ("platform", "outcome"),
                ).labels(platform=self.name, outcome="hit").inc()
            if sanitize.enabled():
                self._check_valuation_coherence(cached)
            return cached
        if active is not None:
            active.counter(
                "repro_valuation_cache_total",
                "BookValuation cache lookups, by outcome",
                ("platform", "outcome"),
            ).labels(platform=self.name, outcome="build").inc()
        with telemetry.span("protocol.valuation", {"platform": self.name}):
            valuation = self.book.valuation(self.prices(), self.liquidation_thresholds())
        # Re-read the revision: the sync inside ``valuation`` may have
        # registered new asset columns, which bumps it.
        self._valuation_key = (key[0], key[1], self.book.revision)
        self._valuation_cache = valuation
        return valuation

    def _check_valuation_coherence(self, cached: BookValuation) -> None:
        """Sanitizer: a cache hit must be as fresh as a recomputation.

        Cheap checks on every hit: the cached valuation was built at the
        book's *current* revision (a stale hit means some mutation path
        forgot to bump the revision) and no dirty rows are pending behind
        an unchanged revision (someone touched ``_dirty`` directly).  Every
        sanitize-stride-th hit additionally rebuilds the valuation from the
        live book and compares the value matrices bitwise — the strongest
        statement that the cache key really covers every input.
        """
        if cached._built_at_revision != self.book.revision:
            raise sanitize.SanitizerError(
                f"{self.name} valuation cache hit is stale: cached at book "
                f"revision {cached._built_at_revision}, book is at "
                f"{self.book.revision}; a mutation path skipped the revision bump"
            )
        if self.book.dirty_rows:
            raise sanitize.SanitizerError(
                f"{self.name} valuation cache hit with {len(self.book.dirty_rows)} "
                "dirty rows pending behind an unchanged revision: rows were "
                "marked dirty without notifying the revision counter"
            )
        self._valuation_hits += 1
        if self._valuation_hits % sanitize.stride() == 0:
            rebuilt = self.book.valuation(self.prices(), self.liquidation_thresholds())
            if not (
                np.array_equal(rebuilt.collateral_values, cached.collateral_values)
                and np.array_equal(rebuilt.debt_values, cached.debt_values)
            ):
                raise sanitize.SanitizerError(
                    f"{self.name} cached valuation is not bitwise equal to a "
                    "fresh rebuild at the same cache key: an input the key "
                    "does not cover has changed (prices, thresholds or book rows)"
                )

    def liquidatable_candidates(self, require_collateral: bool = False) -> list[Position]:
        """Positions with HF < 1, found by the columnar scan.

        The book flags candidate rows with a safety margin and each flagged
        row is confirmed with the scalar health factor, so the result is
        exactly the set (and order) a scalar sweep over ``positions`` finds.

        This stays on the lean :class:`BookScan` (two matrix-vector
        products) rather than the full :meth:`valuation` materialization:
        the per-stride opportunity scan runs on *every* block, while the
        aggregate consumers that amortize a shared valuation (snapshots,
        analytics, the watcher) only run on some.
        """
        prices = self.prices()
        thresholds = self.liquidation_thresholds()
        scan = self.book.scan(prices, thresholds)
        candidates: list[Position] = []
        for row in scan.candidate_rows(require_collateral=require_collateral):
            position = self.book.position_at(int(row))
            if position.is_liquidatable(prices, thresholds):
                candidates.append(position)
        return candidates

    # ------------------------------------------------------------------ #
    # User actions (Figure 1: collateralize / borrow / repay / withdraw)
    # ------------------------------------------------------------------ #
    def deposit(self, user: Address, symbol: str, amount: float) -> None:
        """Deposit ``amount`` of ``symbol`` as collateral."""
        market = self.market(symbol)
        if not market.collateral_enabled:
            raise ProtocolError(f"{symbol} cannot be used as collateral on {self.name}")
        if amount <= 0:
            raise ProtocolError("deposit amount must be positive")
        token = self.registry.get(symbol)
        token.transfer(user, self.address, amount)
        self.position_of(user).add_collateral(market.symbol, amount)
        self.chain.emit_event(
            "Deposit",
            emitter=self.address,
            data={"platform": self.name, "user": user.value, "symbol": market.symbol, "amount": amount},
        )

    def borrow(self, user: Address, symbol: str, amount: float) -> None:
        """Borrow ``amount`` of ``symbol`` against the caller's collateral."""
        market = self.market(symbol)
        if not market.borrow_enabled:
            raise ProtocolError(f"{symbol} cannot be borrowed on {self.name}")
        if amount <= 0:
            raise ProtocolError("borrow amount must be positive")
        token = self.registry.get(symbol)
        if token.balance_of(self.address) < amount:
            raise ProtocolError(f"{self.name} lacks {symbol} liquidity for the requested borrow")
        prices = self.prices()
        thresholds = self.liquidation_thresholds()
        position = self.position_of(user)
        prospective = position.copy()
        prospective.add_debt(market.symbol, amount)
        if prospective.health_factor(prices, thresholds) < 1.0:
            raise ProtocolError("borrow would exceed the borrowing capacity")
        token.transfer(self.address, user, amount)
        position.add_debt(market.symbol, amount)
        self._total_borrowed_usd_estimate += amount * prices.get(market.symbol, 0.0)
        self.chain.emit_event(
            "Borrow",
            emitter=self.address,
            data={"platform": self.name, "user": user.value, "symbol": market.symbol, "amount": amount},
        )

    def repay(self, user: Address, symbol: str, amount: float, payer: Address | None = None) -> float:
        """Repay up to ``amount`` of the user's ``symbol`` debt; returns the amount repaid."""
        market = self.market(symbol)
        position = self.position_of(user)
        owed = position.debt.get(market.symbol, 0.0)
        if owed <= DUST:
            raise ProtocolError(f"{user} owes no {symbol} on {self.name}")
        repay_amount = min(amount, owed)
        source = payer or user
        token = self.registry.get(symbol)
        token.transfer(source, self.address, repay_amount)
        position.reduce_debt(market.symbol, repay_amount)
        self.chain.emit_event(
            "Repay",
            emitter=self.address,
            data={"platform": self.name, "user": user.value, "symbol": market.symbol, "amount": repay_amount},
        )
        return repay_amount

    def withdraw(self, user: Address, symbol: str, amount: float) -> None:
        """Withdraw collateral, provided the position stays healthy."""
        market = self.market(symbol)
        position = self.position_of(user)
        held = position.collateral.get(market.symbol, 0.0)
        if amount > held + DUST:
            raise ProtocolError(f"cannot withdraw {amount} {symbol}; only {held} deposited")
        prospective = position.copy()
        prospective.remove_collateral(market.symbol, amount)
        if prospective.has_debt and prospective.health_factor(self.prices(), self.liquidation_thresholds()) < 1.0:
            raise ProtocolError("withdrawal would make the position liquidatable")
        token = self.registry.get(symbol)
        token.transfer(self.address, user, amount)
        position.remove_collateral(market.symbol, amount)
        self.chain.emit_event(
            "Withdraw",
            emitter=self.address,
            data={"platform": self.name, "user": user.value, "symbol": market.symbol, "amount": amount},
        )

    def supply_liquidity(self, lender: Address, symbol: str, amount: float) -> None:
        """Lender-side deposit: adds pool liquidity without opening a position."""
        market = self.market(symbol)
        token = self.registry.get(symbol)
        token.transfer(lender, self.address, amount)
        self.chain.emit_event(
            "Supply",
            emitter=self.address,
            data={"platform": self.name, "user": lender.value, "symbol": market.symbol, "amount": amount},
        )

    # ------------------------------------------------------------------ #
    # Interest
    # ------------------------------------------------------------------ #
    def utilization(self, symbol: str) -> float:
        """Borrowed share of the pool's liquidity for ``symbol`` (rough estimate).

        The per-symbol outstanding total comes from the book's debt column
        (bit-identical to the per-position walk — non-holders contribute
        exact zeros), so the per-market accrual sweep no longer crawls the
        whole population once per market.
        """
        token = self.registry.get(symbol)
        available = token.balance_of(self.address)
        if self.uses_book_aggregates():
            borrowed = self.book.debt_total(symbol.upper())
        else:
            # repro: lint-ok(SUM002 scalar reference backend: this walk *is* the pinned order)
            borrowed = sum(position.debt.get(symbol.upper(), 0.0) for position in self.positions.values())
        total = available + borrowed
        if total <= 0:
            return 0.0
        return borrowed / total

    def accrue_interest(self, to_block: int | None = None) -> None:
        """Grow every outstanding debt by the per-market accrual factor."""
        block = self.chain.current_block if to_block is None else to_block
        elapsed = block - self._last_accrual_block
        if elapsed <= 0:
            return
        factors = {
            symbol: market.interest_model.accrual_factor(self.utilization(symbol), elapsed)
            for symbol, market in self.markets.items()
        }
        for position in self._accrual_positions():
            position.scale_debts(factors)
        self._last_accrual_block = block

    def _accrual_positions(self) -> list[Position]:
        """The positions an accrual sweep must touch.

        With book aggregates on, debt-free positions are skipped via the
        book's debt columns; ``scale_debts`` is a no-op on every skipped
        position, so both backends mutate identical state.
        """
        if self.uses_book_aggregates():
            return self.book.positions_with_debt_entries()
        return list(self.positions.values())

    # ------------------------------------------------------------------ #
    # Aggregates and snapshots
    # ------------------------------------------------------------------ #
    def total_collateral_usd(self) -> float:
        """Total USD value of collateral locked in the protocol.

        Book-backed (one vectorized pass, pinned reduction) by default;
        bit-identical to the legacy per-position walk either way.
        """
        if self.uses_book_aggregates():
            return self.valuation().pinned_total_collateral_usd()
        prices = self.prices()
        # The 0.0 start keeps the all-empty edge a float, matching the
        # pinned reduction's JSON token (sum alone would return int 0).
        # repro: lint-ok(SUM002 scalar reference backend: this walk *is* the pinned order)
        return sum((position.total_collateral_usd(prices) for position in self.positions.values()), 0.0)

    def total_debt_usd(self) -> float:
        """Total USD value of outstanding debt (book-backed by default)."""
        if self.uses_book_aggregates():
            return self.valuation().pinned_total_debt_usd()
        prices = self.prices()
        # repro: lint-ok(SUM002 scalar reference backend: this walk *is* the pinned order)
        return sum((position.total_debt_usd(prices) for position in self.positions.values()), 0.0)

    def collateral_volume_usd(self, symbols: Iterable[str] | None = None) -> float:
        """USD value of collateral, optionally restricted to ``symbols``."""
        prices = self.prices()
        wanted = {symbol.upper() for symbol in symbols} if symbols is not None else None
        total = 0.0
        for position in self.positions.values():
            for symbol, amount in position.collateral.items():
                if wanted is not None and symbol not in wanted:
                    continue
                total += amount * prices.get(symbol, 0.0)
        return total

    def snapshot(self) -> dict[str, object]:
        """Archive snapshot of positions and aggregates at the current block.

        With book aggregates on (the default), the totals and every
        position's health factor come from one shared
        :meth:`valuation` — the price vector is fetched once per snapshot
        instead of once per aggregate — and the pinned accessors keep the
        archived numbers bit-identical to the scalar walk.
        """
        if self.uses_book_aggregates():
            valuation = self.valuation()
            prices = valuation.prices
            thresholds = valuation.thresholds
            total_collateral = valuation.pinned_total_collateral_usd()
            total_debt = valuation.pinned_total_debt_usd()
            health_factors = valuation.pinned_health_factors()
            open_rows = np.flatnonzero(valuation.has_debt | valuation.has_collateral)
            valued_positions = [
                (self.book.position_at(row), health_factors[row]) for row in open_rows.tolist()
            ]
        else:
            prices = self.prices()
            thresholds = self.liquidation_thresholds()
            total_collateral = self.total_collateral_usd()
            total_debt = self.total_debt_usd()
            valued_positions = [
                (position, position.health_factor(prices, thresholds))
                for position in self.open_positions()
            ]
        return {
            "block": self.chain.current_block,
            "platform": self.name,
            "prices": dict(prices),
            "thresholds": dict(thresholds),
            "total_collateral_usd": total_collateral,
            "total_debt_usd": total_debt,
            "positions": [
                {
                    "owner": position.owner.value,
                    "collateral": dict(position.collateral),
                    "debt": dict(position.debt),
                    "health_factor": health_factor,
                }
                for position, health_factor in valued_positions
            ],
        }

    # ------------------------------------------------------------------ #
    # Liquidation (protocol specific)
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def liquidation_mechanism(self) -> str:
        """Return ``"fixed-spread"`` or ``"auction"``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r} positions={len(self.positions)}>"


def thresholds_from_markets(markets: Mapping[str, MarketConfig]) -> dict[str, float]:
    """Utility mirroring :meth:`LendingProtocol.liquidation_thresholds` for raw maps."""
    return {symbol: market.liquidation_threshold for symbol, market in markets.items()}
