"""Compound (Section 3.3).

Compound operates like Aave — a pool with a 50 % close factor — but with a
single protocol-wide liquidation incentive of 8 % and its own price oracle.
That oracle is the source of the November 2020 incident: "an irregular DAI
price provided by the Compound price oracle … triggers a large volume of
cryptocurrencies to be liquidated" (Section 4.2), which the scenario layer
reproduces through an oracle override.
"""

from __future__ import annotations

from ..chain.chain import Blockchain
from ..oracle.chainlink import PriceOracle
from ..tokens.registry import TokenRegistry
from .base import MarketConfig
from .fixed_spread_protocol import FixedSpreadProtocol

#: Compound's inception block (footnote 5 of the paper).
COMPOUND_INCEPTION_BLOCK = 7_710_733

#: Compound's protocol-wide liquidation incentive is 8 % (Table 3: LS = 8 %).
COMPOUND_LIQUIDATION_SPREAD = 0.08

#: Compound allows at most 50 % of the outstanding debt per liquidation.
COMPOUND_CLOSE_FACTOR = 0.5

#: Compound markets and collateral factors (used as liquidation thresholds),
#: covering the assets of Figure 8b.
COMPOUND_MARKETS: dict[str, float] = {
    "ETH": 0.75,
    "WBTC": 0.60,
    "DAI": 0.75,
    "USDC": 0.75,
    "USDT": 0.0,  # USDT is borrow-only on Compound (no collateral factor)
    "BAT": 0.60,
    "ZRX": 0.60,
    "REP": 0.40,
    "UNI": 0.60,
    "COMP": 0.60,
}


class CompoundProtocol(FixedSpreadProtocol):
    """Compound-style pool with a flat 8 % liquidation incentive."""

    LIQUIDATION_EVENT = "LiquidateBorrow"

    def __init__(
        self,
        chain: Blockchain,
        oracle: PriceOracle,
        registry: TokenRegistry,
        markets: dict[str, float] | None = None,
        liquidation_spread: float = COMPOUND_LIQUIDATION_SPREAD,
        inception_block: int = COMPOUND_INCEPTION_BLOCK,
    ) -> None:
        super().__init__(
            name="Compound",
            chain=chain,
            oracle=oracle,
            registry=registry,
            close_factor=COMPOUND_CLOSE_FACTOR,
            inception_block=inception_block,
        )
        self.liquidation_spread = liquidation_spread
        for symbol, threshold in (markets or COMPOUND_MARKETS).items():
            registry.ensure(symbol)
            self.add_market(
                MarketConfig(
                    symbol=symbol,
                    liquidation_threshold=threshold,
                    liquidation_spread=liquidation_spread,
                    collateral_enabled=threshold > 0,
                )
            )


def make_compound(chain: Blockchain, oracle: PriceOracle, registry: TokenRegistry) -> CompoundProtocol:
    """Compound with the paper's market mix and parameters."""
    return CompoundProtocol(chain, oracle, registry)
