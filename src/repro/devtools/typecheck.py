"""The mypy strict gate over the fully-typed packages.

``repro.core``, ``repro.chain`` and ``repro.telemetry`` carry complete
annotations and a ``py.typed`` marker; ``pyproject.toml`` pins the strict
flag set for exactly those packages (everything else is grandfathered via
``ignore_errors``).  This module shells out to mypy so ``repro lint
--mypy`` and the CI ``static-analysis`` job run one entry point.

mypy is a dev-only dependency (``requirements-dev.txt``); when it is not
installed the gate reports that clearly instead of crashing, and plain
``repro lint`` never requires it.
"""

from __future__ import annotations

import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path

__all__ = ["TypecheckResult", "mypy_available", "run_mypy"]

#: Packages under the strict contract (matched by pyproject overrides).
STRICT_PACKAGES = ("repro/core", "repro/chain", "repro/telemetry")


@dataclass(frozen=True)
class TypecheckResult:
    """Outcome of one mypy run (or the reason it could not run)."""

    available: bool
    returncode: int
    output: str

    @property
    def ok(self) -> bool:
        return self.available and self.returncode == 0


def mypy_available() -> bool:
    try:
        import mypy  # noqa: F401
    except ImportError:
        return False
    return True


def run_mypy(repo_root: Path | str) -> TypecheckResult:
    """Run mypy over ``src/repro`` with the pyproject-pinned config.

    The whole package is passed (not just the strict targets) so that the
    per-module overrides in ``pyproject.toml`` stay the single source of
    truth for which packages are strict and which are grandfathered.
    """
    repo_root = Path(repo_root)
    if not mypy_available():
        return TypecheckResult(
            available=False,
            returncode=1,
            output=(
                "mypy is not installed in this environment; install the dev "
                "requirements (pip install -r requirements-dev.txt) to run "
                "the strict typecheck gate"
            ),
        )
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml", "src/repro"],
        cwd=repo_root,
        capture_output=True,
        text=True,
        check=False,
    )
    return TypecheckResult(
        available=True,
        returncode=proc.returncode,
        output=(proc.stdout + proc.stderr).strip(),
    )
