"""SUM002 — float value sums route through the pinned summation helpers.

Float addition is not associative: ``np.sum`` reduces pairwise,
``math.fsum`` re-associates exactly, and a refactor that reorders a plain
``sum()`` changes the last ulp of every downstream report.  The repository
pins summation order once — ``BookValuation``'s pinned reductions for
position aggregates, :func:`repro.analytics.common.pinned_sum` for record
streams — and everything that feeds seed-pinned output must route through
those helpers.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..framework import FileContext, Rule, Violation, dotted_name

__all__ = ["PinnedFloatSummation"]

#: Identifier fragments marking a summand as monetary / float-valued.
_VALUE_PATTERN = re.compile(
    r"usd|value|profit|fee|amount|collateral|debt|loss|volume|repa[iy]|price|balance",
    re.IGNORECASE,
)

#: Reductions whose order differs from the scalar left-to-right walk.
_ALWAYS_FLAGGED = {
    "math.fsum": "math.fsum re-associates the summation exactly",
    "numpy.sum": "np.sum reduces pairwise, not left-to-right",
}


def _is_counting_sum(arg: ast.AST) -> bool:
    """``sum(1 for ... if ...)``-style counts: the summand is a constant."""
    if isinstance(arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
        return isinstance(arg.elt, ast.Constant)
    return False


def _mentions_value(node: ast.AST) -> bool:
    """Whether any identifier under ``node`` looks like a float value."""
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and _VALUE_PATTERN.search(child.id):
            return True
        if isinstance(child, ast.Attribute) and _VALUE_PATTERN.search(child.attr):
            return True
    return False


class PinnedFloatSummation(Rule):
    code = "SUM002"
    title = "float value sums route through the pinned summation helpers"
    rationale = """\
Protocol aggregates and analytics totals are seed-pinned outputs: their
float summation order is part of the bit-identity contract.  Raw ``sum()``
over value sequences invites silent re-ordering during refactors, and
``np.sum`` / ``math.fsum`` already sum in a different order than the scalar
walk.  Position aggregates route through the ``BookValuation`` pinned
accessors; record/series totals route through
``repro.analytics.common.pinned_sum`` (explicit left-to-right, float 0.0
start).  Counting sums (``sum(1 for ...)``) are fine."""
    example_bad = """\
total = sum(record.profit_usd for record in records)
tvl = np.sum(values)"""
    example_good = """\
from ..analytics.common import pinned_sum
total = pinned_sum(record.profit_usd for record in records)
tvl = protocol.valuation().pinned_total_collateral_usd()"""
    scopes = (
        "repro/protocols/",
        "repro/experiments/",
        "repro/analytics/",
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        aliases = ctx.import_aliases
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = dotted_name(func, aliases)
            if name in _ALWAYS_FLAGGED:
                yield self.violation(
                    ctx,
                    node,
                    f"`{name}` over float values: {_ALWAYS_FLAGGED[name]}; "
                    "route through pinned_sum / the BookValuation pinned accessors",
                )
            elif isinstance(func, ast.Name) and func.id == "sum":
                if (
                    node.args
                    and not _is_counting_sum(node.args[0])
                    and _mentions_value(node.args[0])
                ):
                    yield self.violation(
                        ctx,
                        node,
                        "raw sum() over float values; route through "
                        "repro.analytics.common.pinned_sum (or the BookValuation "
                        "pinned accessors) so summation order stays bit-reproducible",
                    )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "sum"
                and name is None  # a method call on an expression, i.e. ndarray.sum
            ):
                yield self.violation(
                    ctx,
                    node,
                    ".sum() on an array reduces in backend-defined order; "
                    "route through the BookValuation pinned accessors",
                )
            elif isinstance(func, ast.Attribute) and func.attr == "sum" and name is not None:
                # `something.sum(...)` where the receiver is a plain name
                # chain: still an array-style reduction unless it is one of
                # the helpers above (none of which are named `sum`).
                root = name.split(".", 1)[0]
                if root not in ("math", "numpy"):
                    yield self.violation(
                        ctx,
                        node,
                        ".sum() on an array reduces in backend-defined order; "
                        "route through the BookValuation pinned accessors",
                    )
