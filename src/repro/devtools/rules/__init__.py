"""The repo-specific rule set enforced by ``repro lint``."""

from __future__ import annotations

from ..framework import Rule
from .determinism import UnseededRandomness
from .events import ExhaustiveEventDispatch
from .pickling import PicklableCampaignPayloads
from .summation import PinnedFloatSummation
from .telemetry import TelemetryFacadeOnly

__all__ = ["ALL_RULES", "rule_by_code"]

#: Every enforced rule, in code order.
ALL_RULES: tuple[Rule, ...] = (
    UnseededRandomness(),
    PinnedFloatSummation(),
    PicklableCampaignPayloads(),
    ExhaustiveEventDispatch(),
    TelemetryFacadeOnly(),
)


def rule_by_code(code: str) -> Rule:
    """Look up a rule by its code (case-insensitive); raises ``KeyError``."""
    wanted = code.upper()
    for rule in ALL_RULES:
        if rule.code == wanted:
            return rule
    raise KeyError(f"unknown rule {code!r}; known: {', '.join(r.code for r in ALL_RULES)}")
