"""EVT004 — ``on_event`` dispatchers cover the full ``SimEvent`` taxonomy.

The event taxonomy in ``repro/observers/events.py`` grows (cascade events,
service health events are on the roadmap).  A probe that isinstance-matches
a subset of events silently drops any newly added kind — the stream keeps
flowing, the probe keeps "working", and the missing aggregate is only
noticed when a report disagrees.  This rule keeps every dispatcher honest:
a class whose ``on_event`` isinstance-matches event types must either
handle, or *explicitly* list as ignored, every concrete event class —
parsed fresh from ``events.py`` on every lint run, so extending the
taxonomy immediately fails any probe that has not decided what to do with
the new event.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from ..framework import FileContext, Rule, Violation

__all__ = ["ExhaustiveEventDispatch", "event_taxonomy"]

#: Class attribute declaring events a dispatcher deliberately ignores.
IGNORED_ATTR = "IGNORED_EVENTS"

#: src-root-relative path of the taxonomy module.
_EVENTS_MODULE = "repro/observers/events.py"


def event_taxonomy(src_root: Path) -> frozenset[str]:
    """The concrete ``SimEvent`` subclass names, parsed from ``events.py``.

    Parsing (rather than importing) keeps the lint runnable on a tree that
    does not import cleanly, and transitively collects subclasses of
    subclasses should the taxonomy ever gain intermediate bases.
    """
    source = (src_root / _EVENTS_MODULE).read_text(encoding="utf-8")
    tree = ast.parse(source, filename=_EVENTS_MODULE)
    known = {"SimEvent"}
    grew = True
    while grew:
        grew = False
        for node in tree.body:
            if not isinstance(node, ast.ClassDef) or node.name in known:
                continue
            bases = {base.id for base in node.bases if isinstance(base, ast.Name)}
            if bases & known:
                known.add(node.name)
                grew = True
    return frozenset(known - {"SimEvent"})


def _isinstance_matches(func_node: ast.AST, taxonomy: frozenset[str]) -> set[str]:
    """Event class names isinstance-matched anywhere under ``func_node``."""
    matched: set[str] = set()
    for node in ast.walk(func_node):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)):
            continue
        if node.func.id != "isinstance" or len(node.args) != 2:
            continue
        classes = node.args[1]
        candidates = classes.elts if isinstance(classes, ast.Tuple) else [classes]
        for candidate in candidates:
            if isinstance(candidate, ast.Name) and candidate.id in taxonomy:
                matched.add(candidate.id)
            elif isinstance(candidate, ast.Attribute) and candidate.attr in taxonomy:
                matched.add(candidate.attr)
    return matched


def _ignored_events(class_node: ast.ClassDef) -> tuple[set[str], list[ast.AST]]:
    """Names listed in the class's ``IGNORED_EVENTS`` declaration."""
    ignored: set[str] = set()
    nodes: list[ast.AST] = []
    for node in class_node.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not any(isinstance(t, ast.Name) and t.id == IGNORED_ATTR for t in targets):
            continue
        nodes.append(node)
        if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
            for element in value.elts:
                if isinstance(element, ast.Name):
                    ignored.add(element.id)
                elif isinstance(element, ast.Attribute):
                    ignored.add(element.attr)
    return ignored, nodes


class ExhaustiveEventDispatch(Rule):
    code = "EVT004"
    title = "on_event dispatchers cover the full SimEvent taxonomy"
    rationale = """\
A probe that isinstance-dispatches on event types must make a decision for
*every* concrete SimEvent subclass: handle it, or list it in a class-level
``IGNORED_EVENTS = (...)`` tuple.  The required set is parsed from
``repro/observers/events.py`` on every run, so adding an event to the
taxonomy fails every probe that has not looked at it yet — exactly the
failure mode that is otherwise silent.  Dispatchers with no isinstance
matching (uniform handlers like JsonlSink) are exempt; stale
``IGNORED_EVENTS`` entries (handled, or no longer in the taxonomy) are
flagged too."""
    example_bad = """\
class MyProbe:
    def on_event(self, event):
        if isinstance(event, LiquidationSettled):
            ...                      # 9 other event kinds silently dropped"""
    example_good = """\
class MyProbe:
    IGNORED_EVENTS = (RunStarted, StepStarted, IncidentFired, PriceUpdated,
                      InterestAccrued, SnapshotTaken, AuctionDealt,
                      BlockMined, RunCompleted)

    def on_event(self, event):
        if isinstance(event, LiquidationSettled):
            ..."""
    scopes = ("repro/",)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        # Resolve the taxonomy relative to the linted tree (src root is two
        # levels above e.g. repro/devtools/..., i.e. the parent of "repro").
        src_root = ctx.path
        for _ in ctx.relpath.split("/"):
            src_root = src_root.parent
        try:
            taxonomy = event_taxonomy(src_root)
        except FileNotFoundError:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            on_event = next(
                (
                    item
                    for item in node.body
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and item.name == "on_event"
                ),
                None,
            )
            if on_event is None:
                continue
            matched = _isinstance_matches(on_event, taxonomy)
            if not matched:
                continue  # uniform handler: every event takes the same path
            ignored, ignored_nodes = _ignored_events(node)
            missing = sorted(taxonomy - matched - ignored)
            if missing:
                yield self.violation(
                    ctx,
                    node,
                    f"on_event of `{node.name}` neither handles nor ignores: "
                    f"{', '.join(missing)}; handle them or add them to "
                    f"{IGNORED_ATTR}",
                )
            stale = sorted(ignored - taxonomy) + sorted(ignored & matched)
            if stale:
                anchor = ignored_nodes[0] if ignored_nodes else node
                yield self.violation(
                    ctx,
                    anchor,
                    f"stale {IGNORED_ATTR} entries on `{node.name}`: "
                    f"{', '.join(stale)} (handled, or no longer in the taxonomy)",
                )
