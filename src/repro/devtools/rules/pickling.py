"""PKL003 — campaign payloads stay picklable; global counters reset per run.

The campaign executor's serial-vs-parallel byte-identity rests on two
facts: only picklable, module-level values cross the process boundary
(spawn workers rebuild worlds from ``(scenario, overrides, seed)``
strings), and every module-global mutable counter is reset at the top of
each run through the :mod:`repro.runtime_state` registry.  A lambda handed
to the pool dies with ``PicklingError`` only at runtime — and only on the
parallel path the tests may not cover; an unregistered counter drifts with
process history and desynchronises identifier sequences between serial and
pooled execution.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..framework import FileContext, Rule, Violation, dotted_name

__all__ = ["PicklableCampaignPayloads"]

#: Pool submission APIs whose callable/iterable arguments cross the
#: process boundary and must therefore be module-level and picklable.
#: ``put`` / ``put_nowait`` cover the persistent backend's task queues —
#: its ``TaskBatch`` dispatch messages pickle exactly like pool arguments.
_POOL_METHODS = frozenset(
    {
        "map",
        "map_async",
        "imap",
        "imap_unordered",
        "apply",
        "apply_async",
        "starmap",
        "starmap_async",
        "put",
        "put_nowait",
    }
)

#: Spec constructors whose field values are persisted / shipped to workers
#: (``TaskBatch`` and ``WorkerConfig`` ride inside persistent-worker task
#: payloads and run manifests respectively).
_SPEC_CONSTRUCTORS = frozenset({"RunJob", "RunSpec", "CampaignSpec", "TaskBatch", "WorkerConfig"})


def _module_level_counters(tree: ast.Module, aliases: dict[str, str]) -> Iterator[ast.Assign]:
    """Module-level ``X = itertools.count(...)`` assignments."""
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if isinstance(value, ast.Call):
            name = dotted_name(value.func, aliases)
            if name in ("itertools.count", "count") and any(
                isinstance(target, ast.Name) for target in node.targets
            ):
                yield node


def _calls_register_reset(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id == "register_reset":
                return True
            if isinstance(func, ast.Attribute) and func.attr == "register_reset":
                return True
    return False


class PicklableCampaignPayloads(Rule):
    code = "PKL003"
    title = "campaign payloads stay picklable; global counters reset per run"
    rationale = """\
Everything handed to a worker pool, queued to a persistent worker
(``TaskBatch`` messages) or stored on a campaign spec must be a
module-level, picklable value — lambdas, closures and local classes fail to
pickle under the spawn start method (and do so only on the parallel path).
Separately, any module-global mutable counter (``itertools.count`` at
module level) must be registered with ``repro.runtime_state.register_reset``
so the per-run reset keeps identifier sequences independent of how many
runs the process executed before — the serial-vs-parallel byte-identity
contract of the run store."""
    example_bad = """\
pool.imap_unordered(lambda job: run(job), jobs)   # unpicklable lambda
_counter = itertools.count()                      # never reset per run"""
    example_good = """\
pool.imap_unordered(execute_job, jobs)            # module-level function

_counter = itertools.count(1)
def _reset() -> None:
    global _counter
    _counter = itertools.count(1)
register_reset("mymodule.counter", _reset)"""
    # Counter registration is checked everywhere in the package; the
    # pool/spec payload checks only fire in the campaign subsystem.
    scopes = ()

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        aliases = ctx.import_aliases
        if ctx.relpath.startswith("repro/devtools/"):
            return
        for assignment in _module_level_counters(ctx.tree, aliases):
            if not _calls_register_reset(ctx.tree):
                targets = ", ".join(
                    target.id for target in assignment.targets if isinstance(target, ast.Name)
                )
                yield self.violation(
                    ctx,
                    assignment,
                    f"module-global counter `{targets}` is not in the per-run reset "
                    "registry; call repro.runtime_state.register_reset with a "
                    "resetter so campaign runs stay independent of process history",
                )
        if not ctx.relpath.startswith("repro/campaigns/"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_pool_call = isinstance(func, ast.Attribute) and func.attr in _POOL_METHODS
            is_spec_call = isinstance(func, ast.Name) and func.id in _SPEC_CONSTRUCTORS
            if not (is_pool_call or is_spec_call):
                continue
            where = (
                f"pool.{func.attr}" if is_pool_call else func.id  # type: ignore[union-attr]
            )
            for arg in [*node.args, *(kw.value for kw in node.keywords)]:
                if isinstance(arg, ast.Lambda):
                    yield self.violation(
                        ctx,
                        arg,
                        f"lambda passed to {where}: it crosses the process "
                        "boundary and cannot pickle under spawn; use a "
                        "module-level function",
                    )
