"""TEL005 — clocks and metrics only via the telemetry facade in engine code.

The telemetry subsystem's bit-identity proof (telemetered runs equal bare
runs) and its <3 % overhead ceiling both depend on every timer and counter
in engine code flowing through one switchable facade
(:mod:`repro.telemetry.runtime` spans/counters,
:func:`repro.telemetry.clock.perf_seconds` for sanctioned wall timing).
An ad-hoc ``time.perf_counter()`` in a stride phase is unswitchable
overhead and invisible to the span report; a privately constructed
``Tracer``/``MetricsRegistry`` never reaches the exposition endpoint.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..framework import FileContext, Rule, Violation, dotted_name

__all__ = ["TelemetryFacadeOnly"]

#: Monotonic / CPU timers engine code must not call directly.
_AD_HOC_TIMERS = frozenset(
    {
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.thread_time",
        "time.thread_time_ns",
    }
)

#: Telemetry primitives that must come from the runtime facade instead of
#: being constructed ad hoc inside engine code.
_PRIVATE_PRIMITIVES = frozenset({"Tracer", "MetricsRegistry"})


class TelemetryFacadeOnly(Rule):
    code = "TEL005"
    title = "clocks and metrics only via the telemetry facade in engine code"
    rationale = """\
Engine code (simulation, chain, core, protocols, agents, observers,
campaigns) instruments itself exclusively through the telemetry runtime:
``telemetry.span(...)`` for timings, ``telemetry.active()`` counters for
metrics, and ``repro.telemetry.clock.perf_seconds()`` where a raw duration
is genuinely the datum (worker wall-clock accounting).  Direct
``time.perf_counter()`` calls and privately constructed
``Tracer``/``MetricsRegistry`` instances bypass the one switch that keeps
bare runs overhead-free and the exposition endpoint complete.  The CLI and
benchmarks are out of scope — user-facing timing output is their job."""
    example_bad = """\
started = time.perf_counter()
run_phase()
elapsed = time.perf_counter() - started   # invisible, unswitchable"""
    example_good = """\
with span("engine.phase"):
    run_phase()
# or, where the duration itself is the datum:
from ..telemetry.clock import perf_seconds
started = perf_seconds()"""
    scopes = (
        "repro/simulation/",
        "repro/chain/",
        "repro/core/",
        "repro/protocols/",
        "repro/agents/",
        "repro/observers/",
        "repro/campaigns/",
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        aliases = ctx.import_aliases
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func, aliases)
            if name is None:
                continue
            if name in _AD_HOC_TIMERS:
                yield self.violation(
                    ctx,
                    node,
                    f"ad-hoc timer `{name}()` in engine code; wrap the phase in "
                    "telemetry.span(...) or read repro.telemetry.clock.perf_seconds()",
                )
            else:
                attr = name.rsplit(".", 1)[-1]
                if attr in _PRIVATE_PRIMITIVES and not name.startswith("."):
                    # Relative in-package imports (leading dot) are the
                    # telemetry plumbing itself wiring things together.
                    yield self.violation(
                        ctx,
                        node,
                        f"`{attr}` constructed outside the telemetry runtime; "
                        "install a Telemetry via repro.telemetry.runtime instead",
                    )
