"""DET001 — no unseeded randomness or wall-clock reads in simulation code.

Seed-pinned bit-identity (the property every equivalence matrix in
``tests/`` asserts) only holds if *all* randomness in the simulated world
descends from the scenario ``SeedSequence`` and nothing branches on the
host's clock.  One stray ``random.random()`` or ``time.time()`` in an agent
or protocol silently breaks serial-vs-parallel byte-identity, campaign
resume, and every scan/valuation equivalence proof at once.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..framework import FileContext, Rule, Violation, dotted_name

__all__ = ["UnseededRandomness"]

#: ``np.random.<fn>()`` module-level calls draw from NumPy's *global* RNG —
#: unseeded per run.  Constructors and seed plumbing are explicitly fine.
_NP_RANDOM_ALLOWED = frozenset(
    {"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64"}
)

#: Wall-clock reads (host time leaking into the simulated world).
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "time.strftime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


class UnseededRandomness(Rule):
    code = "DET001"
    title = "no unseeded randomness or wall-clock reads in simulation code"
    rationale = """\
Simulation, chain, protocol, agent and scenario code must draw randomness
only from generators descending from the scenario seed (``np.random.default_rng``
/ ``SeedSequence.spawn``) and must never read host clocks: both break the
seed-pinned bit-identity the whole test strategy rests on.  Clocks are
telemetry-only (see TEL005); wall-clock timestamps inside the simulated
world come from block numbers, never from the host."""
    example_bad = """\
import random
jitter = random.random()          # global, unseeded RNG
stamp = time.time()               # host clock inside the world"""
    example_good = """\
rng = np.random.default_rng(child_seed)   # descends from the scenario seed
jitter = rng.random()
stamp = chain.timestamp_of_block(block)   # simulated time"""
    scopes = (
        "repro/simulation/",
        "repro/chain/",
        "repro/protocols/",
        "repro/agents/",
        "repro/scenarios/",
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        aliases = ctx.import_aliases
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    if name.name == "random" or name.name.startswith("random."):
                        yield self.violation(
                            ctx, node, "stdlib `random` is process-global and unseeded; use np.random.default_rng descended from the scenario seed"
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module == "random":
                    yield self.violation(
                        ctx, node, "stdlib `random` is process-global and unseeded; use np.random.default_rng descended from the scenario seed"
                    )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func, aliases)
                if name is None:
                    continue
                if name.startswith("numpy.random."):
                    attr = name.rsplit(".", 1)[1]
                    if attr not in _NP_RANDOM_ALLOWED:
                        yield self.violation(
                            ctx,
                            node,
                            f"`{attr}` on the numpy.random *module* draws from the global unseeded RNG; draw from a Generator descended from the scenario SeedSequence",
                        )
                elif name in _WALL_CLOCK:
                    yield self.violation(
                        ctx,
                        node,
                        f"wall-clock read `{name}()` in simulation code; simulated time comes from block numbers, host clocks are telemetry-only",
                    )
