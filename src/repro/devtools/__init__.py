"""Repo-specific static analysis: the ``repro lint`` framework.

Every performance PR in this repository is only shippable because of a web
of *determinism invariants* — exact float summation order, seeded-RNG-only
randomness, per-run id-counter resets, picklable campaign payloads,
exhaustive ``SimEvent`` handling, telemetry-facade-only clocks — that the
equivalence test matrices rely on but nothing enforces mechanically.  This
package is the mechanical enforcement: a small AST-based lint framework
(:mod:`repro.devtools.framework`) with repo-specific rules
(:mod:`repro.devtools.rules`), a grandfathering baseline that may shrink
but never grow (:mod:`repro.devtools.baseline`), and a CLI surfaced as
``repro lint`` and ``python -m repro.devtools``
(:mod:`repro.devtools.cli`), optionally chaining into mypy strict on the
fully-typed packages (:mod:`repro.devtools.typecheck`).

Rules (see ``repro lint --explain CODE`` for rationale and examples):

=========  ==================================================================
code       enforces
=========  ==================================================================
DET001     no unseeded randomness or wall-clock reads in simulation code
SUM002     float value sums route through the pinned summation helpers
PKL003     campaign payloads stay picklable; global counters are reset-registered
EVT004     ``on_event`` dispatchers cover the full ``SimEvent`` taxonomy
TEL005     clocks and metrics only via the telemetry facade in engine code
=========  ==================================================================

Intentional exemptions are annotated inline with
``# repro: lint-ok(CODE reason)`` — the reason is mandatory and surfaces in
``--explain`` listings, so every exemption documents itself.
"""

from __future__ import annotations

from .baseline import Baseline, load_baseline, write_baseline
from .framework import FileContext, LintReport, Rule, Violation, run_lint
from .rules import ALL_RULES, rule_by_code

__all__ = [
    "ALL_RULES",
    "Baseline",
    "FileContext",
    "LintReport",
    "Rule",
    "Violation",
    "load_baseline",
    "rule_by_code",
    "run_lint",
    "write_baseline",
]
