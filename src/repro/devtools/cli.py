"""The ``repro lint`` command line (also ``python -m repro.devtools``).

Exit codes: 0 — clean (all violations within the committed baseline);
1 — new violations, baseline regressions, or a failed mypy gate;
2 — usage errors (unknown rule code, malformed baseline).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from .baseline import load_baseline, write_baseline
from .framework import run_lint
from .rules import ALL_RULES, rule_by_code
from .typecheck import run_mypy

__all__ = ["build_parser", "main"]

#: src root (the directory holding ``repro/``) of this checkout.
_SRC_ROOT = Path(__file__).resolve().parents[2]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Repo-specific determinism & invariant lint (see --explain).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="src-root-relative files/directories to lint (default: repro/)",
    )
    parser.add_argument(
        "--explain",
        nargs="?",
        const="all",
        metavar="CODE",
        help="print rule rationale and examples (one CODE, or all) and exit",
    )
    parser.add_argument(
        "--src-root",
        type=Path,
        default=_SRC_ROOT,
        help="import root containing the repro/ package (default: this checkout)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline file (default: lint-baseline.json next to the src root)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline to the current violation counts and exit 0",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report every violation as a failure",
    )
    parser.add_argument(
        "--mypy",
        action="store_true",
        help="also run the mypy strict gate over the typed packages",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the summary line and warnings; print violations only",
    )
    return parser


def _explain(code: str) -> int:
    if code == "all":
        chunks = [rule.explain() for rule in ALL_RULES]
        print("\n\n".join(chunks))
        return 0
    try:
        rule = rule_by_code(code)
    except KeyError:
        print(f"unknown rule code {code!r}; known: {', '.join(r.code for r in ALL_RULES)}", file=sys.stderr)
        return 2
    print(rule.explain())
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.explain is not None:
        return _explain(args.explain)

    src_root = args.src_root.resolve()
    baseline_path = args.baseline or src_root.parent / "lint-baseline.json"
    paths = args.paths or ["repro"]

    report = run_lint(src_root, ALL_RULES, paths=paths)
    counts = report.counts()

    if args.write_baseline:
        baseline = write_baseline(baseline_path, counts)
        total = sum(baseline.entries.values())
        print(f"wrote {baseline_path} ({len(baseline.entries)} entries, {total} grandfathered violations)")
        return 0

    try:
        baseline = load_baseline(baseline_path)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    failed = False
    if args.no_baseline:
        for violation in report.violations:
            print(violation.render())
        failed = bool(report.violations)
    else:
        regressions, slack = baseline.compare(counts)
        if regressions:
            failed = True
            for violation in report.violations:
                if violation.baseline_key in regressions:
                    print(violation.render())
            for key, (current, allowed) in regressions.items():
                print(f"{key}: {current} violation(s), baseline allows {allowed}")
        if slack and not args.quiet:
            for key, allowed in slack.items():
                print(
                    f"notice: baseline entry {key} is stale "
                    f"({counts.get(key, 0)} current < {allowed} allowed); "
                    "re-tighten with --write-baseline"
                )

    if not args.quiet:
        for warning in report.warnings:
            print(f"warning: {warning}")

    mypy_failed = False
    if args.mypy:
        result = run_mypy(src_root.parent)
        if result.output and not args.quiet:
            print(result.output)
        elif result.output and not result.ok:
            print(result.output)
        mypy_failed = not result.ok

    if not args.quiet:
        verdict = "FAIL" if (failed or mypy_failed) else "ok"
        print(
            f"repro lint: {report.files_checked} files, "
            f"{len(report.violations)} violation(s), "
            f"{len(report.warnings)} warning(s) — {verdict}"
        )
    return 1 if (failed or mypy_failed) else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
