"""The grandfathering baseline: committed debt that may shrink, never grow.

``lint-baseline.json`` at the repository root records, per ``code:path``
key, how many violations existed when the rule landed.  A lint run fails
if any key's *current* count exceeds its baselined count — new debt is
rejected — while keys whose count dropped produce a notice asking for the
baseline to be re-tightened (``repro lint --write-baseline``).  Keys are
``code:path`` rather than exact locations because line numbers shift under
every unrelated edit; per-file counts are stable against that churn while
still pinning debt to where it lives.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

__all__ = ["Baseline", "load_baseline", "write_baseline"]

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class Baseline:
    """Grandfathered violation counts per ``code:path`` key."""

    entries: Mapping[str, int] = field(default_factory=dict)
    path: Path | None = None

    def allowance(self, key: str) -> int:
        return self.entries.get(key, 0)

    def compare(self, counts: Mapping[str, int]) -> tuple[dict[str, tuple[int, int]], dict[str, int]]:
        """Split ``counts`` against the baseline.

        Returns ``(regressions, slack)``: *regressions* maps keys whose
        current count exceeds the allowance to ``(current, allowed)``;
        *slack* maps baseline keys whose debt shrank (or vanished) to the
        stale allowance, i.e. entries the baseline file should drop.
        """
        regressions: dict[str, tuple[int, int]] = {}
        for key, current in sorted(counts.items()):
            allowed = self.allowance(key)
            if current > allowed:
                regressions[key] = (current, allowed)
        slack = {
            key: allowed
            for key, allowed in sorted(self.entries.items())
            if counts.get(key, 0) < allowed
        }
        return regressions, slack


def load_baseline(path: Path | str) -> Baseline:
    """Load ``lint-baseline.json``; a missing file is an empty baseline."""
    path = Path(path)
    if not path.exists():
        return Baseline(entries={}, path=path)
    payload = json.loads(path.read_text(encoding="utf-8"))
    version = payload.get("version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported baseline format version {version!r} "
            f"(this tool writes version {_FORMAT_VERSION})"
        )
    entries = payload.get("entries", {})
    if not isinstance(entries, dict) or not all(
        isinstance(k, str) and isinstance(v, int) and v > 0 for k, v in entries.items()
    ):
        raise ValueError(f"{path}: baseline entries must map 'CODE:path' to positive counts")
    return Baseline(entries=dict(entries), path=path)


def write_baseline(path: Path | str, counts: Mapping[str, int]) -> Baseline:
    """Write the current violation counts as the new baseline.

    Zero-count keys are dropped — the file only ever lists live debt, so an
    empty ``entries`` object *is* the clean-tree statement.
    """
    path = Path(path)
    entries = {key: count for key, count in sorted(counts.items()) if count > 0}
    payload = {"version": _FORMAT_VERSION, "entries": entries}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return Baseline(entries=entries, path=path)
