"""The lint framework: violations, rules, pragmas and the file walker.

A :class:`Rule` owns one invariant: a stable code (``DET001``), the
directory scopes it applies to, a rationale with a bad/good example pair
(rendered by ``repro lint --explain``), and a :meth:`Rule.check` that walks
one parsed file and yields :class:`Violation` s.

Suppression is *local and documented*: a violation is silenced only by an
inline ``# repro: lint-ok(CODE reason)`` pragma on the offending line (or
the line directly above it).  The framework tracks pragma usage, so stale
pragmas that no longer suppress anything are reported as warnings instead
of rotting silently.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence

__all__ = [
    "FileContext",
    "LintReport",
    "Pragma",
    "Rule",
    "Violation",
    "dotted_name",
    "harvest_import_aliases",
    "run_lint",
]

#: ``# repro: lint-ok(CODE reason)`` — CODE is one rule code, the reason is
#: free text (mandatory by convention; an empty reason draws a warning).
_PRAGMA_RE = re.compile(r"#\s*repro:\s*lint-ok\(\s*([A-Z]{3}\d{3})\b\s*([^)]*)\)")


@dataclass(frozen=True)
class Violation:
    """One rule violation at a specific source location."""

    code: str
    path: str  # src-root-relative posix path, e.g. "repro/simulation/engine.py"
    line: int
    column: int
    message: str

    @property
    def baseline_key(self) -> str:
        """Grouping key for the grandfathering baseline (line numbers shift
        too easily to key on, so the baseline counts per ``code:path``)."""
        return f"{self.code}:{self.path}"

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.column}: {self.code} {self.message}"


@dataclass(frozen=True)
class Pragma:
    """One parsed ``lint-ok`` pragma."""

    code: str
    reason: str
    line: int


class FileContext:
    """One parsed source file handed to every applicable rule."""

    def __init__(self, path: Path, relpath: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.relpath = relpath
        self.source = source
        self.tree = tree
        self.pragmas: list[Pragma] = [
            Pragma(code=match.group(1), reason=match.group(2).strip(), line=lineno)
            for lineno, text in enumerate(source.splitlines(), start=1)
            for match in _PRAGMA_RE.finditer(text)
        ]
        self._pragma_lines: dict[str, set[int]] = {}
        for pragma in self.pragmas:
            self._pragma_lines.setdefault(pragma.code, set()).add(pragma.line)
        self._used_pragmas: set[tuple[str, int]] = set()
        self.import_aliases = harvest_import_aliases(tree)

    def suppressed(self, code: str, line: int) -> bool:
        """Whether a ``code`` violation at ``line`` carries a pragma.

        The pragma may sit on the offending line itself or on the line
        directly above it (a comment-only line).
        """
        lines = self._pragma_lines.get(code)
        if not lines:
            return False
        for candidate in (line, line - 1):
            if candidate in lines:
                self._used_pragmas.add((code, candidate))
                return True
        return False

    def unused_pragmas(self) -> list[Pragma]:
        """Pragmas that suppressed nothing in this run (stale or typo'd)."""
        return [
            pragma
            for pragma in self.pragmas
            if (pragma.code, pragma.line) not in self._used_pragmas
        ]


def harvest_import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted origin they were imported as.

    ``import numpy as np`` → ``{"np": "numpy"}``;
    ``from datetime import datetime`` → ``{"datetime": "datetime.datetime"}``;
    ``from time import time as now`` → ``{"now": "time.time"}``.
    Relative imports keep their leading dots (``from ..telemetry import x``
    → ``{"x": "..telemetry.x"}``) so rules can recognise in-package imports.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                local = name.asname or name.name.split(".")[0]
                aliases[local] = name.name if name.asname else name.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            module = "." * node.level + (node.module or "")
            for name in node.names:
                if name.name == "*":
                    continue
                local = name.asname or name.name
                aliases[local] = f"{module}.{name.name}" if module else name.name
    return aliases


def dotted_name(node: ast.AST, aliases: Mapping[str, str] | None = None) -> str | None:
    """The dotted name of an attribute/name chain, alias-expanded.

    ``np.random.normal`` with ``{"np": "numpy"}`` → ``"numpy.random.normal"``;
    returns ``None`` for anything that is not a plain name chain.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = node.id
    if aliases and root in aliases:
        root = aliases[root]
    parts.append(root)
    return ".".join(reversed(parts))


class Rule:
    """Base class of one lint rule.

    Subclasses set the class attributes and implement :meth:`check`.
    ``scopes`` is a tuple of src-root-relative directory prefixes (e.g.
    ``("repro/simulation", "repro/chain")``); an empty tuple means the rule
    applies to every linted file.
    """

    code: str = "XXX000"
    title: str = ""
    rationale: str = ""
    example_bad: str = ""
    example_good: str = ""
    scopes: tuple[str, ...] = ()

    def applies_to(self, relpath: str) -> bool:
        if not self.scopes:
            return True
        return any(relpath.startswith(prefix) for prefix in self.scopes)

    def check(self, ctx: FileContext) -> Iterator[Violation]:  # pragma: no cover - abstract
        raise NotImplementedError

    def violation(self, ctx: FileContext, node: ast.AST, message: str) -> Violation:
        """Build a :class:`Violation` for ``node`` in ``ctx``."""
        return Violation(
            code=self.code,
            path=ctx.relpath,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            message=message,
        )

    def explain(self) -> str:
        """The ``--explain`` rendering: rationale plus a bad/good pair."""
        lines = [f"{self.code} — {self.title}", "", self.rationale.strip()]
        if self.example_bad:
            lines += ["", "Violation:", *(f"    {l}" for l in self.example_bad.strip().splitlines())]
        if self.example_good:
            lines += ["", "Fix:", *(f"    {l}" for l in self.example_good.strip().splitlines())]
        lines += [
            "",
            f"Intentional exemptions: # repro: lint-ok({self.code} <reason>) on the",
            "offending line or the line directly above it.",
        ]
        return "\n".join(lines)


@dataclass
class LintReport:
    """Everything one lint run found."""

    violations: list[Violation] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    files_checked: int = 0

    def counts(self) -> dict[str, int]:
        """Violations per baseline key (``code:path``)."""
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.baseline_key] = counts.get(violation.baseline_key, 0) + 1
        return counts


def iter_source_files(src_root: Path, paths: Sequence[str] | None = None) -> list[Path]:
    """The files one lint run covers, in stable sorted order.

    ``paths`` (src-root-relative files or directories) restricts the walk;
    the default is every ``.py`` file under the root.
    """
    if paths:
        out: list[Path] = []
        for item in paths:
            candidate = src_root / item
            if candidate.is_dir():
                out.extend(sorted(candidate.rglob("*.py")))
            else:
                out.append(candidate)
        return out
    return sorted(src_root.rglob("*.py"))


def run_lint(
    src_root: Path | str,
    rules: Iterable[Rule],
    paths: Sequence[str] | None = None,
) -> LintReport:
    """Run ``rules`` over the tree rooted at ``src_root``.

    ``src_root`` is the import root (the directory containing the
    ``repro/`` package), so rule scopes and violation paths read
    ``repro/simulation/engine.py``.  Pragma-suppressed violations are
    dropped here; grandfathering against a baseline happens in the CLI.
    """
    root = Path(src_root)
    rules = list(rules)
    report = LintReport()
    for path in iter_source_files(root, paths):
        if "__pycache__" in path.parts:
            continue
        relpath = path.relative_to(root).as_posix()
        applicable = [rule for rule in rules if rule.applies_to(relpath)]
        if not applicable:
            continue
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            report.violations.append(
                Violation(
                    code="AST000",
                    path=relpath,
                    line=exc.lineno or 1,
                    column=exc.offset or 0,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        ctx = FileContext(path=path, relpath=relpath, source=source, tree=tree)
        report.files_checked += 1
        for rule in applicable:
            for violation in rule.check(ctx):
                if not ctx.suppressed(violation.code, violation.line):
                    report.violations.append(violation)
        for pragma in ctx.unused_pragmas():
            report.warnings.append(
                f"{relpath}:{pragma.line}: unused pragma lint-ok({pragma.code}) — "
                "nothing suppressed here; remove it or fix the code reference"
            )
        for pragma in ctx.pragmas:
            if not pragma.reason:
                report.warnings.append(
                    f"{relpath}:{pragma.line}: pragma lint-ok({pragma.code}) has no reason — "
                    "document why the exemption is safe"
                )
    report.violations.sort(key=lambda v: (v.path, v.line, v.column, v.code))
    return report
