"""``python -m repro.devtools`` — same entry point as ``repro lint``."""

from .cli import main

raise SystemExit(main())
