"""Token registry and the default asset universe of the study.

The paper's measurements span the collateral/debt assets listed by the four
protocols (Figure 8 legends): ETH/WETH, WBTC, the major stablecoins (DAI,
USDC, USDT, TUSD, GUSD, PAX), governance tokens (UNI, AAVE, COMP, MKR, YFI…)
and a long tail of ERC-20s.  :func:`default_registry` instantiates the subset
that materially drives the results, with the rest available through
:meth:`TokenRegistry.ensure`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from .token import Token

#: Symbols the paper treats as USD-pegged stablecoins (Section 2.2.3, 4.5.2).
STABLECOIN_SYMBOLS = frozenset(
    {"DAI", "USDC", "USDT", "TUSD", "GUSD", "PAX", "BUSD", "SUSD"}
)

#: The assets used by the default 2-year scenario, with reference prices
#: (USD) at scenario inception (mid-2019 levels).
DEFAULT_ASSETS: dict[str, tuple[str, int, float]] = {
    # symbol: (name, decimals, inception price in USD)
    "ETH": ("Ether", 18, 270.0),
    "WBTC": ("Wrapped Bitcoin", 8, 9_500.0),
    "DAI": ("Dai Stablecoin", 18, 1.0),
    "USDC": ("USD Coin", 6, 1.0),
    "USDT": ("Tether USD", 6, 1.0),
    "TUSD": ("TrueUSD", 18, 1.0),
    "BAT": ("Basic Attention Token", 18, 0.30),
    "ZRX": ("0x Protocol", 18, 0.30),
    "LINK": ("Chainlink", 18, 3.0),
    "UNI": ("Uniswap", 18, 3.0),
    "COMP": ("Compound", 18, 60.0),
    "MKR": ("Maker", 18, 600.0),
    "AAVE": ("Aave", 18, 40.0),
    "YFI": ("yearn.finance", 18, 10_000.0),
    "SNX": ("Synthetix", 18, 1.0),
    "KNC": ("Kyber Network", 18, 0.20),
    "MANA": ("Decentraland", 18, 0.05),
    "REP": ("Augur", 18, 12.0),
    "ENJ": ("Enjin Coin", 18, 0.10),
    "REN": ("Ren", 18, 0.05),
    "CRV": ("Curve DAO", 18, 0.50),
    "BAL": ("Balancer", 18, 10.0),
}


class UnknownToken(KeyError):
    """Raised when a registry lookup references an unregistered symbol."""


@dataclass
class TokenRegistry:
    """A symbol-indexed collection of :class:`Token` instances."""

    _tokens: dict[str, Token] = field(default_factory=dict)

    def __contains__(self, symbol: str) -> bool:
        return symbol.upper() in self._tokens

    def __iter__(self) -> Iterator[Token]:
        return iter(self._tokens.values())

    def __len__(self) -> int:
        return len(self._tokens)

    def register(self, token: Token) -> Token:
        """Add ``token`` to the registry (idempotent for equal symbols)."""
        existing = self._tokens.get(token.symbol.upper())
        if existing is not None:
            return existing
        self._tokens[token.symbol.upper()] = token
        return token

    def get(self, symbol: str) -> Token:
        """Return the token registered under ``symbol``.

        Raises :class:`UnknownToken` for unregistered symbols so typos fail
        loudly instead of silently creating empty ledgers.
        """
        try:
            return self._tokens[symbol.upper()]
        except KeyError as exc:
            raise UnknownToken(symbol) from exc

    def ensure(self, symbol: str, name: str = "", decimals: int = 18) -> Token:
        """Return the token for ``symbol``, creating it if necessary."""
        key = symbol.upper()
        if key in self._tokens:
            return self._tokens[key]
        token = Token(
            symbol=key,
            name=name or key,
            decimals=decimals,
            is_stablecoin=key in STABLECOIN_SYMBOLS,
        )
        return self.register(token)

    def symbols(self) -> list[str]:
        """Sorted list of registered symbols."""
        return sorted(self._tokens)

    def stablecoins(self) -> list[Token]:
        """Registered tokens flagged as stablecoins."""
        return [token for token in self._tokens.values() if token.is_stablecoin]


def default_registry() -> TokenRegistry:
    """Create a registry pre-populated with the study's asset universe."""
    registry = TokenRegistry()
    for symbol, (name, decimals, _price) in DEFAULT_ASSETS.items():
        registry.register(
            Token(
                symbol=symbol,
                name=name,
                decimals=decimals,
                is_stablecoin=symbol in STABLECOIN_SYMBOLS,
            )
        )
    return registry


def inception_prices() -> dict[str, float]:
    """Reference USD prices of the default assets at scenario inception."""
    return {symbol: price for symbol, (_name, _decimals, price) in DEFAULT_ASSETS.items()}
