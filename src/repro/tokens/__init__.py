"""Token substrate: ERC-20-style ledgers and the study's asset universe."""

from .registry import (
    DEFAULT_ASSETS,
    STABLECOIN_SYMBOLS,
    TokenRegistry,
    UnknownToken,
    default_registry,
    inception_prices,
)
from .token import InsufficientBalance, Token

__all__ = [
    "DEFAULT_ASSETS",
    "InsufficientBalance",
    "STABLECOIN_SYMBOLS",
    "Token",
    "TokenRegistry",
    "UnknownToken",
    "default_registry",
    "inception_prices",
]
