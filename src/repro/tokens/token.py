"""ERC-20-style token ledger.

Every asset in the simulation (ETH, WBTC, DAI, USDC, …) is represented by a
:class:`Token` holding its own balance ledger.  Protocol contracts and agents
move funds with :meth:`Token.transfer` / :meth:`Token.mint` exactly as smart
contracts would through ERC-20 calls, which keeps conservation-of-value an
enforceable invariant (and a property the test suite checks with hypothesis).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..chain.types import Address


class InsufficientBalance(Exception):
    """Raised when a transfer or burn exceeds the holder's balance."""


@dataclass
class Token:
    """A fungible token with an internal balance ledger.

    Attributes
    ----------
    symbol:
        Ticker symbol, e.g. ``"ETH"`` or ``"DAI"``.
    name:
        Human-readable name.
    decimals:
        Number of decimals of the on-chain representation.  The simulator
        keeps balances as floats in whole-token units, so decimals are
        metadata only (used when formatting reports).
    is_stablecoin:
        Whether the token is designed to track 1 USD (Section 2.2.3).
    """

    symbol: str
    name: str = ""
    decimals: int = 18
    is_stablecoin: bool = False
    _balances: dict[Address, float] = field(default_factory=dict, repr=False)
    _total_supply: float = field(default=0.0, repr=False)

    # Tolerance for floating point dust when enforcing balances.
    _EPSILON = 1e-9

    def __post_init__(self) -> None:
        if not self.name:
            self.name = self.symbol

    def __hash__(self) -> int:
        return hash(self.symbol)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Token):
            return self.symbol == other.symbol
        return NotImplemented

    # ------------------------------------------------------------------ #
    # Balance queries
    # ------------------------------------------------------------------ #
    def balance_of(self, holder: Address) -> float:
        """Return the balance of ``holder`` (0 for unknown addresses)."""
        return self._balances.get(holder, 0.0)

    @property
    def total_supply(self) -> float:
        """Total minted supply of the token."""
        return self._total_supply

    def holders(self) -> list[Address]:
        """Addresses with a strictly positive balance."""
        return [holder for holder, balance in self._balances.items() if balance > self._EPSILON]

    # ------------------------------------------------------------------ #
    # Supply management
    # ------------------------------------------------------------------ #
    def mint(self, to: Address, amount: float) -> None:
        """Create ``amount`` new tokens and credit them to ``to``."""
        if amount < 0:
            raise ValueError("cannot mint a negative amount")
        self._balances[to] = self.balance_of(to) + amount
        self._total_supply += amount

    def burn(self, holder: Address, amount: float) -> None:
        """Destroy ``amount`` tokens held by ``holder``."""
        if amount < 0:
            raise ValueError("cannot burn a negative amount")
        balance = self.balance_of(holder)
        if amount > balance + self._EPSILON:
            raise InsufficientBalance(
                f"{holder} holds {balance:.6f} {self.symbol}, cannot burn {amount:.6f}"
            )
        self._balances[holder] = max(balance - amount, 0.0)
        self._total_supply = max(self._total_supply - amount, 0.0)

    # ------------------------------------------------------------------ #
    # Transfers
    # ------------------------------------------------------------------ #
    def transfer(self, sender: Address, recipient: Address, amount: float) -> None:
        """Move ``amount`` tokens from ``sender`` to ``recipient``."""
        if amount < 0:
            raise ValueError("cannot transfer a negative amount")
        balance = self.balance_of(sender)
        if amount > balance + self._EPSILON:
            raise InsufficientBalance(
                f"{sender} holds {balance:.6f} {self.symbol}, cannot transfer {amount:.6f}"
            )
        self._balances[sender] = max(balance - amount, 0.0)
        self._balances[recipient] = self.balance_of(recipient) + amount

    def transfer_all(self, sender: Address, recipient: Address) -> float:
        """Move the sender's entire balance and return the amount moved."""
        amount = self.balance_of(sender)
        if amount > 0:
            self.transfer(sender, recipient, amount)
        return amount
