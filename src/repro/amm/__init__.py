"""Automated market maker substrate (Uniswap-style constant product pools)."""

from .pool import ConstantProductPool, SwapError
from .router import AmmRouter

__all__ = ["AmmRouter", "ConstantProductPool", "SwapError"]
