"""Constant-product automated market maker (Uniswap V2 style).

Liquidators that do not want price exposure flip the seized collateral into
the debt currency immediately; in a flash-loan liquidation this swap happens
inside the same transaction (Section 4.4.4, step 3).  The AMM also doubles as
an *on-chain* price oracle (Section 2.2.1), which is "known to be vulnerable
to manipulation" — the manipulation test exercises exactly that property.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..chain.chain import Blockchain
from ..chain.types import Address, make_address
from ..tokens.token import Token


class SwapError(Exception):
    """Raised on invalid swaps (empty reserves, zero amounts, bad token)."""


@dataclass
class ConstantProductPool:
    """A two-asset x·y = k pool.

    Reserves are owned by the pool's own address on the underlying token
    ledgers, so the conservation invariant is enforced by the token layer as
    well as by the pool arithmetic.
    """

    token_a: Token
    token_b: Token
    fee: float = 0.003
    chain: Blockchain | None = None
    address: Address = field(default_factory=lambda: make_address("amm-pool"))

    def __post_init__(self) -> None:
        if self.token_a.symbol == self.token_b.symbol:
            raise ValueError("pool requires two distinct tokens")
        if not 0.0 <= self.fee < 1.0:
            raise ValueError("fee must lie in [0, 1)")

    # ------------------------------------------------------------------ #
    # Reserves and pricing
    # ------------------------------------------------------------------ #
    @property
    def reserve_a(self) -> float:
        """Reserve of ``token_a`` held by the pool."""
        return self.token_a.balance_of(self.address)

    @property
    def reserve_b(self) -> float:
        """Reserve of ``token_b`` held by the pool."""
        return self.token_b.balance_of(self.address)

    @property
    def invariant(self) -> float:
        """The constant-product invariant k = reserve_a · reserve_b."""
        return self.reserve_a * self.reserve_b

    def spot_price(self, of_symbol: str) -> float:
        """Marginal price of one unit of ``of_symbol`` in units of the other token."""
        if self.reserve_a <= 0 or self.reserve_b <= 0:
            raise SwapError("pool has no liquidity")
        if of_symbol.upper() == self.token_a.symbol:
            return self.reserve_b / self.reserve_a
        if of_symbol.upper() == self.token_b.symbol:
            return self.reserve_a / self.reserve_b
        raise SwapError(f"{of_symbol} is not in this pool")

    def _oriented(self, token_in_symbol: str) -> tuple[Token, Token]:
        symbol = token_in_symbol.upper()
        if symbol == self.token_a.symbol:
            return self.token_a, self.token_b
        if symbol == self.token_b.symbol:
            return self.token_b, self.token_a
        raise SwapError(f"{token_in_symbol} is not in this pool")

    def get_amount_out(self, token_in_symbol: str, amount_in: float) -> float:
        """Output amount for an exact-input swap, after fees."""
        if amount_in <= 0:
            raise SwapError("swap amount must be positive")
        token_in, token_out = self._oriented(token_in_symbol)
        reserve_in = token_in.balance_of(self.address)
        reserve_out = token_out.balance_of(self.address)
        if reserve_in <= 0 or reserve_out <= 0:
            raise SwapError("pool has no liquidity")
        effective_in = amount_in * (1.0 - self.fee)
        return reserve_out * effective_in / (reserve_in + effective_in)

    def price_impact(self, token_in_symbol: str, amount_in: float) -> float:
        """Relative slippage of an exact-input swap versus the spot price."""
        spot = self.spot_price(token_in_symbol)
        executed = self.get_amount_out(token_in_symbol, amount_in) / amount_in
        if spot <= 0:
            return 0.0
        return 1.0 - executed / spot

    # ------------------------------------------------------------------ #
    # Liquidity and swaps
    # ------------------------------------------------------------------ #
    def add_liquidity(self, provider: Address, amount_a: float, amount_b: float) -> None:
        """Deposit reserves into the pool (no LP-token accounting needed here)."""
        if amount_a < 0 or amount_b < 0:
            raise SwapError("liquidity amounts must be non-negative")
        self.token_a.transfer(provider, self.address, amount_a)
        self.token_b.transfer(provider, self.address, amount_b)

    def swap(self, trader: Address, token_in_symbol: str, amount_in: float) -> float:
        """Execute an exact-input swap and return the amount received."""
        token_in, token_out = self._oriented(token_in_symbol)
        amount_out = self.get_amount_out(token_in_symbol, amount_in)
        token_in.transfer(trader, self.address, amount_in)
        token_out.transfer(self.address, trader, amount_out)
        if self.chain is not None:
            self.chain.emit_event(
                "Swap",
                emitter=self.address,
                data={
                    "trader": trader.value,
                    "token_in": token_in.symbol,
                    "token_out": token_out.symbol,
                    "amount_in": amount_in,
                    "amount_out": amount_out,
                },
            )
        return amount_out
