"""AMM router: pool lookup and the AMM-derived on-chain price oracle."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..chain.types import Address
from .pool import ConstantProductPool, SwapError


@dataclass
class AmmRouter:
    """Registry of constant-product pools keyed by unordered symbol pair."""

    pools: dict[frozenset[str], ConstantProductPool] = field(default_factory=dict)

    def register(self, pool: ConstantProductPool) -> ConstantProductPool:
        """Add a pool to the router."""
        key = frozenset({pool.token_a.symbol, pool.token_b.symbol})
        self.pools[key] = pool
        return pool

    def pool_for(self, symbol_a: str, symbol_b: str) -> ConstantProductPool:
        """Find the pool trading the given pair."""
        key = frozenset({symbol_a.upper(), symbol_b.upper()})
        try:
            return self.pools[key]
        except KeyError as exc:
            raise SwapError(f"no pool for {symbol_a}/{symbol_b}") from exc

    def has_pool(self, symbol_a: str, symbol_b: str) -> bool:
        """Whether a pool exists for the pair."""
        return frozenset({symbol_a.upper(), symbol_b.upper()}) in self.pools

    def swap(self, trader: Address, token_in: str, token_out: str, amount_in: float) -> float:
        """Swap through the direct pool for the pair."""
        pool = self.pool_for(token_in, token_out)
        return pool.swap(trader, token_in, amount_in)

    def quote(self, token_in: str, token_out: str, amount_in: float) -> float:
        """Quote an exact-input swap without executing it."""
        pool = self.pool_for(token_in, token_out)
        return pool.get_amount_out(token_in, amount_in)

    def onchain_price(self, symbol: str, quote_symbol: str) -> float:
        """AMM-implied price of ``symbol`` denominated in ``quote_symbol``.

        This is the manipulable on-chain oracle of Section 2.2.1: anyone who
        trades against the pool moves this price within the same block.
        """
        pool = self.pool_for(symbol, quote_symbol)
        return pool.spot_price(symbol)
