"""Experiment E-S452 — Section 4.5.2: stability of the stablecoin strategy."""

from __future__ import annotations

from ..analytics.stablecoin_analysis import StablecoinStabilityReport, stablecoin_stability
from ..simulation.engine import SimulationResult


def compute(result: SimulationResult) -> StablecoinStabilityReport:
    """Measure pairwise stablecoin price differences over the last year of the run."""
    final_block = result.final_block
    one_year_blocks = 365 * 24 * 3600 // result.chain.config.seconds_per_block
    from_block = max(result.engine.feed.start_block, final_block - one_year_blocks)
    return stablecoin_stability(result, from_block=from_block, to_block=final_block)


def render(report: StablecoinStabilityReport) -> str:
    """Render the Section 4.5.2 statistics."""
    pair = " / ".join(report.max_difference_pair)
    return (
        "Section 4.5.2 — stablecoin stability\n"
        f"Blocks sampled: {report.blocks_measured}\n"
        f"Share of blocks with pairwise differences within {report.threshold:.0%}: "
        f"{report.within_threshold_share:.2%}\n"
        f"Maximum difference: {report.max_difference:.2%} ({pair}) at block {report.max_difference_block}\n"
        f"Stablecoin borrowing strategy stable: {report.is_strategy_stable}"
    )
