"""Experiment E-F4 — Figure 4: accumulative liquidated collateral per platform."""

from __future__ import annotations

from dataclasses import dataclass

from ..analytics.monthly import AccumulativeSeries, accumulative_collateral_series, total_liquidated_collateral_usd
from ..analytics.records import LiquidationRecord
from ..analytics.reporting import format_table
from ..analytics.common import usd


@dataclass(frozen=True)
class Fig4Data:
    """The cumulative series of Figure 4 and its headline total."""

    series: dict[str, AccumulativeSeries]
    total_liquidated_usd: float


def compute(records: list[LiquidationRecord]) -> Fig4Data:
    """Build the Figure 4 dataset from normalised liquidation records."""
    return Fig4Data(
        series=accumulative_collateral_series(records),
        total_liquidated_usd=total_liquidated_collateral_usd(records),
    )


def render(data: Fig4Data) -> str:
    """Render the per-platform end-of-window totals (the curve endpoints)."""
    rows = [
        (platform, series.final_value_usd and usd(series.final_value_usd), len(series.blocks))
        for platform, series in sorted(data.series.items())
    ]
    table = format_table(["Platform", "Accumulative collateral sold", "Liquidations"], rows)
    return f"Figure 4 — accumulative liquidated collateral\n{table}\nTotal: {usd(data.total_liquidated_usd)}"
