"""Experiment E-F8 — Figure 8: liquidation sensitivity to price declines."""

from __future__ import annotations

from ..analytics.reporting import format_table
from ..analytics.common import usd
from ..analytics.sensitivity_analysis import PlatformSensitivity, sensitivity_figure
from ..simulation.engine import SimulationResult


def compute(result: SimulationResult) -> dict[str, PlatformSensitivity]:
    """Build the four Figure 8 panels at the final block of the run."""
    return sensitivity_figure(result)


def render(figure: dict[str, PlatformSensitivity]) -> str:
    """Render each platform's ETH sensitivity curve plus the headline points."""
    sections: list[str] = ["Figure 8 — liquidation sensitivity to price declines"]
    for platform, panel in figure.items():
        eth_curve = panel.curve("ETH")
        rows = [
            (f"{point.decline:.0%}", usd(point.liquidatable_collateral_usd))
            for point in eth_curve
            if round(point.decline * 100) % 20 == 0
        ]
        table = format_table(["ETH decline", "Liquidatable collateral"], rows)
        at_43 = panel.liquidatable_at("ETH", 0.43)
        sections.append(
            f"\n{platform} (most sensitive currency: {panel.most_sensitive_symbol})\n"
            f"{table}\n"
            f"Liquidatable at a 43% ETH decline: {usd(at_43)}"
        )
    return "\n".join(sections)
