"""Experiment E-F9 — Figure 9: monthly profit-volume ratio (DAI/ETH market)."""

from __future__ import annotations

from ..analytics.profit_volume import ProfitVolumeReport, profit_volume_report
from ..analytics.records import LiquidationRecord
from ..analytics.reporting import format_table
from ..simulation.engine import SimulationResult


def compute(result: SimulationResult, records: list[LiquidationRecord]) -> ProfitVolumeReport:
    """Build the Figure 9 dataset (DAI debt, ETH collateral)."""
    return profit_volume_report(result, records)


def render(report: ProfitVolumeReport) -> str:
    """Render the per-platform ratio summary and the borrower-friendliness ranking."""
    rows = [
        (
            platform,
            f"{report.median_ratios.get(platform, 0.0):.3e}",
            f"{report.average_ratios.get(platform, 0.0):.3e}",
            len(report.platform_points(platform)),
        )
        for platform in sorted(report.median_ratios)
    ]
    table = format_table(["Platform", "Median monthly ratio", "Mean monthly ratio", "Months"], rows)
    ranking = " < ".join(report.ranking)
    return (
        "Figure 9 — monthly profit-volume ratio (DAI/ETH)\n"
        + table
        + f"\nBorrower-friendliness ranking (lower ratio is better for borrowers): {ranking}"
    )
