"""Run every experiment against one simulation result.

``run_all`` executes each table/figure harness and returns the computed data
keyed by experiment id; ``render_all`` produces the full text report.  The
``__main__`` hook runs the small scenario so that

    python -m repro.experiments.runner

prints a complete (reduced-scale) reproduction report without any setup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..analytics.records import extract_liquidations
from ..simulation.config import ScenarioConfig
from ..simulation.engine import SimulationResult
from ..simulation.scenarios import run_scenario
from . import (
    case_study,
    close_factor_ablation,
    configuration_sweep,
    fig4_accumulative,
    fig5_monthly_profit,
    fig6_gas_prices,
    fig7_auctions,
    fig8_sensitivity,
    fig9_profit_volume,
    mitigation,
    stablecoin,
    table1_overview,
    table2_bad_debt,
    table3_unprofitable,
    table4_flash_loans,
    table7_price_movement,
    table8_monthly,
)


@dataclass(frozen=True)
class ExperimentOutput:
    """One experiment's computed data and rendered report."""

    experiment_id: str
    title: str
    data: Any
    report: str


#: Experiment ids in the order they appear in the paper.
EXPERIMENT_IDS = (
    "fig4",
    "table1",
    "fig5",
    "fig6",
    "fig7",
    "table2",
    "table3",
    "table4",
    "fig8",
    "stablecoin",
    "fig9",
    "case_study",
    "mitigation",
    "table7",
    "table8",
    "configuration",
    "close_factor",
)


def run_all(result: SimulationResult) -> dict[str, ExperimentOutput]:
    """Execute every experiment harness against ``result``."""
    records = extract_liquidations(result)
    outputs: dict[str, ExperimentOutput] = {}

    def add(experiment_id: str, title: str, data: Any, renderer: Callable[[Any], str]) -> None:
        outputs[experiment_id] = ExperimentOutput(
            experiment_id=experiment_id, title=title, data=data, report=renderer(data)
        )

    add("fig4", "Figure 4 — accumulative liquidated collateral", fig4_accumulative.compute(records), fig4_accumulative.render)
    add("table1", "Table 1 — liquidation overview", table1_overview.compute(records), table1_overview.render)
    add("fig5", "Figure 5 — monthly liquidation profit", fig5_monthly_profit.compute(records), fig5_monthly_profit.render)
    add("fig6", "Figure 6 — liquidation gas prices", fig6_gas_prices.compute(result), fig6_gas_prices.render)
    add("fig7", "Figure 7 — MakerDAO auctions", fig7_auctions.compute(result), fig7_auctions.render)
    add("table2", "Table 2 — bad debts", table2_bad_debt.compute(result), table2_bad_debt.render)
    add("table3", "Table 3 — unprofitable liquidations", table3_unprofitable.compute(result), table3_unprofitable.render)
    add("table4", "Table 4 — flash loan usage", table4_flash_loans.compute(result), table4_flash_loans.render)
    add("fig8", "Figure 8 — liquidation sensitivity", fig8_sensitivity.compute(result), fig8_sensitivity.render)
    add("stablecoin", "Section 4.5.2 — stablecoin stability", stablecoin.compute(result), stablecoin.render)
    add("fig9", "Figure 9 — profit-volume ratio", fig9_profit_volume.compute(result, records), fig9_profit_volume.render)
    add("case_study", "Tables 5/6 — optimal strategy case study", case_study.compute(), case_study.render)
    add("mitigation", "Section 5.2.3 — mitigation", mitigation.compute(), mitigation.render)
    add("table7", "Table 7 — post-liquidation price movement", table7_price_movement.compute(result, records), table7_price_movement.render)
    add("table8", "Table 8 — monthly DAI/ETH liquidations", table8_monthly.compute(records), table8_monthly.render)
    add("configuration", "Appendix C — reasonable configurations", configuration_sweep.compute(), configuration_sweep.render)
    add("close_factor", "Ablation — close factor", close_factor_ablation.compute(), close_factor_ablation.render)
    return outputs


def render_all(outputs: dict[str, ExperimentOutput]) -> str:
    """Concatenate every experiment's rendered report."""
    sections = []
    for experiment_id in EXPERIMENT_IDS:
        output = outputs.get(experiment_id)
        if output is None:
            continue
        sections.append(output.report)
    return "\n\n" + "\n\n".join(sections) + "\n"


def main(config: ScenarioConfig | None = None) -> str:
    """Run the scenario, execute every experiment and return the full report."""
    result = run_scenario(config or ScenarioConfig.small())
    outputs = run_all(result)
    return render_all(outputs)


if __name__ == "__main__":  # pragma: no cover - CLI convenience
    print(main())
