"""Run every experiment against one simulation result.

Experiments are registered in the :data:`EXPERIMENTS` spec table with a
normalised ``compute(result, records)`` signature, so single experiments can
be executed on demand (:func:`run_one` — this is what the ``python -m repro``
CLI's ``--report`` flag drives) as well as all together (:func:`run_all`).
``render_all`` produces the full text report.  The ``__main__`` hook runs the
small scenario so that

    python -m repro.experiments.runner

prints a complete (reduced-scale) reproduction report without any setup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..analytics.records import LiquidationRecord
from ..serialize import to_jsonable
from ..simulation.config import ScenarioConfig
from ..simulation.engine import SimulationResult
from ..simulation.scenarios import run_scenario
from . import (
    case_study,
    close_factor_ablation,
    configuration_sweep,
    fig4_accumulative,
    fig5_monthly_profit,
    fig6_gas_prices,
    fig7_auctions,
    fig8_sensitivity,
    fig9_profit_volume,
    mitigation,
    stablecoin,
    table1_overview,
    table2_bad_debt,
    table3_unprofitable,
    table4_flash_loans,
    table7_price_movement,
    table8_monthly,
)


@dataclass(frozen=True)
class ExperimentOutput:
    """One experiment's computed data and rendered report."""

    experiment_id: str
    title: str
    data: Any
    report: str

    def json_payload(self) -> dict[str, Any]:
        """The campaign store's contract: this output as plain JSON data.

        ``data`` is normalised with :func:`repro.serialize.to_jsonable`, so
        the payload survives a ``json.dumps``/``json.loads`` round trip.
        """
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "data": to_jsonable(self.data),
            "report": self.report,
        }


@dataclass(frozen=True)
class ExperimentSpec:
    """A registered experiment: title plus normalised compute/render hooks."""

    experiment_id: str
    title: str
    compute: Callable[[SimulationResult, list[LiquidationRecord]], Any]
    render: Callable[[Any], str]


#: Experiment specs in the order they appear in the paper.
EXPERIMENTS: dict[str, ExperimentSpec] = {
    spec.experiment_id: spec
    for spec in (
        ExperimentSpec(
            "fig4",
            "Figure 4 — accumulative liquidated collateral",
            lambda result, records: fig4_accumulative.compute(records),
            fig4_accumulative.render,
        ),
        ExperimentSpec(
            "table1",
            "Table 1 — liquidation overview",
            lambda result, records: table1_overview.compute(records),
            table1_overview.render,
        ),
        ExperimentSpec(
            "fig5",
            "Figure 5 — monthly liquidation profit",
            lambda result, records: fig5_monthly_profit.compute(records),
            fig5_monthly_profit.render,
        ),
        ExperimentSpec(
            "fig6",
            "Figure 6 — liquidation gas prices",
            lambda result, records: fig6_gas_prices.compute(result),
            fig6_gas_prices.render,
        ),
        ExperimentSpec(
            "fig7",
            "Figure 7 — MakerDAO auctions",
            lambda result, records: fig7_auctions.compute(result),
            fig7_auctions.render,
        ),
        ExperimentSpec(
            "table2",
            "Table 2 — bad debts",
            lambda result, records: table2_bad_debt.compute(result),
            table2_bad_debt.render,
        ),
        ExperimentSpec(
            "table3",
            "Table 3 — unprofitable liquidations",
            lambda result, records: table3_unprofitable.compute(result),
            table3_unprofitable.render,
        ),
        ExperimentSpec(
            "table4",
            "Table 4 — flash loan usage",
            lambda result, records: table4_flash_loans.compute(result),
            table4_flash_loans.render,
        ),
        ExperimentSpec(
            "fig8",
            "Figure 8 — liquidation sensitivity",
            lambda result, records: fig8_sensitivity.compute(result),
            fig8_sensitivity.render,
        ),
        ExperimentSpec(
            "stablecoin",
            "Section 4.5.2 — stablecoin stability",
            lambda result, records: stablecoin.compute(result),
            stablecoin.render,
        ),
        ExperimentSpec(
            "fig9",
            "Figure 9 — profit-volume ratio",
            lambda result, records: fig9_profit_volume.compute(result, records),
            fig9_profit_volume.render,
        ),
        ExperimentSpec(
            "case_study",
            "Tables 5/6 — optimal strategy case study",
            lambda result, records: case_study.compute(),
            case_study.render,
        ),
        ExperimentSpec(
            "mitigation",
            "Section 5.2.3 — mitigation",
            lambda result, records: mitigation.compute(),
            mitigation.render,
        ),
        ExperimentSpec(
            "table7",
            "Table 7 — post-liquidation price movement",
            lambda result, records: table7_price_movement.compute(result, records),
            table7_price_movement.render,
        ),
        ExperimentSpec(
            "table8",
            "Table 8 — monthly DAI/ETH liquidations",
            lambda result, records: table8_monthly.compute(records),
            table8_monthly.render,
        ),
        ExperimentSpec(
            "configuration",
            "Appendix C — reasonable configurations",
            lambda result, records: configuration_sweep.compute(),
            configuration_sweep.render,
        ),
        ExperimentSpec(
            "close_factor",
            "Ablation — close factor",
            lambda result, records: close_factor_ablation.compute(),
            close_factor_ablation.render,
        ),
    )
}

#: Experiment ids in the order they appear in the paper.
EXPERIMENT_IDS = tuple(EXPERIMENTS)


def run_one(
    result: SimulationResult,
    experiment_id: str,
    records: list[LiquidationRecord] | None = None,
) -> ExperimentOutput:
    """Execute a single experiment harness against ``result``.

    ``records`` (the normalised liquidation records) may be passed in to
    avoid re-reading them per experiment; by default ``result.records`` is
    used — streamed by the run's :class:`LiquidationRecorder` probe when one
    was attached, crawled post-hoc otherwise.
    """
    try:
        spec = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known ids: {', '.join(EXPERIMENT_IDS)}"
        ) from None
    if records is None:
        records = result.records
    data = spec.compute(result, records)
    return ExperimentOutput(
        experiment_id=spec.experiment_id,
        title=spec.title,
        data=data,
        report=spec.render(data),
    )


def run_all(result: SimulationResult) -> dict[str, ExperimentOutput]:
    """Execute every experiment harness against ``result``."""
    records = result.records
    return {
        experiment_id: run_one(result, experiment_id, records)
        for experiment_id in EXPERIMENT_IDS
    }


def run_json(
    result: SimulationResult,
    experiment_ids: tuple[str, ...] | None = None,
) -> dict[str, dict[str, Any]]:
    """Execute experiments and return their JSON payloads, keyed by id.

    This is what campaign workers persist to the run store: every value is
    JSON-round-trippable plain Python.
    """
    ids = EXPERIMENT_IDS if experiment_ids is None else tuple(experiment_ids)
    records = result.records
    return {
        experiment_id: run_one(result, experiment_id, records).json_payload()
        for experiment_id in ids
    }


def render_all(outputs: dict[str, ExperimentOutput]) -> str:
    """Concatenate every experiment's rendered report."""
    sections = []
    for experiment_id in EXPERIMENT_IDS:
        output = outputs.get(experiment_id)
        if output is None:
            continue
        sections.append(output.report)
    return "\n\n" + "\n\n".join(sections) + "\n"


def main(config: ScenarioConfig | None = None) -> str:
    """Run the scenario, execute every experiment and return the full report."""
    result = run_scenario(config or ScenarioConfig.small())
    outputs = run_all(result)
    return render_all(outputs)


if __name__ == "__main__":  # pragma: no cover - CLI convenience
    print(main())
