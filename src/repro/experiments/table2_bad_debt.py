"""Experiment E-T2 — Table 2: Type I/II bad debts at the snapshot block."""

from __future__ import annotations

from ..analytics.bad_debt_analysis import PlatformBadDebt, bad_debt_table
from ..analytics.reporting import format_table
from ..analytics.common import usd
from ..simulation.engine import SimulationResult


def compute(result: SimulationResult) -> dict[str, PlatformBadDebt]:
    """Build Table 2 at the final block of the run."""
    return bad_debt_table(result)


def render(table: dict[str, PlatformBadDebt]) -> str:
    """Render Table 2: Type I plus Type II at 10 / 100 USD closing fees."""
    rows = []
    for platform, entry in table.items():
        type_ii_10 = entry.type_ii_by_fee.get(10.0)
        type_ii_100 = entry.type_ii_by_fee.get(100.0)
        rows.append(
            (
                platform,
                f"{entry.type_i_count} ({entry.type_i_share:.1%}) / {usd(entry.type_i_collateral_usd)}",
                f"{type_ii_10.type_ii_count if type_ii_10 else 0} / "
                f"{usd(type_ii_10.type_ii_collateral_usd) if type_ii_10 else '-'}",
                f"{type_ii_100.type_ii_count if type_ii_100 else 0} / "
                f"{usd(type_ii_100.type_ii_collateral_usd) if type_ii_100 else '-'}",
            )
        )
    table_text = format_table(
        ["Platform", "Type I (count / collateral)", "Type II ≤10 USD", "Type II ≤100 USD"], rows
    )
    return "Table 2 — Type I/II bad debts at the snapshot block\n" + table_text
