"""Experiment E-T5/T6 — Section 5.2.2's case study (Tables 5 and 6).

The paper replays the most profitable fixed spread liquidation it observes —
a Compound position holding 108.51 M DAI + 17.88 M USDC of collateral against
93.22 M DAI + 506.64 K USDC of debt — on a fork of the mainnet state, and
compares three strategies after the liquidator's DAI oracle update (1.08 →
1.095299 USD/DAI):

* the original liquidation (repaying 46.14 M USD of DAI debt),
* the up-to-close-factor strategy (repaying CF = 50 % of the DAI debt), and
* the optimal two-step strategy of Algorithm 2.

Here the same position is reconstructed inside the simulator's Compound
implementation and all three strategies are executed on identical state; the
closed-form results of Section 5.2.1 are evaluated alongside as a
cross-check.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analytics.reporting import format_table
from ..analytics.common import pinned_sum, usd
from ..chain.chain import Blockchain, ChainConfig
from ..chain.types import make_address
from ..core.optimal_strategy import (
    SimplePosition,
    StrategyOutcome,
    mitigation_analysis,
    optimal_strategy,
    up_to_close_factor_strategy,
)
from ..core.terminology import LiquidationParams
from ..oracle.chainlink import OracleConfig, PriceOracle
from ..oracle.feed import PriceFeed
from ..protocols.compound import CompoundProtocol
from ..tokens.registry import default_registry

#: Table 5's position, prices and parameters.
CASE_STUDY_BLOCK = 11_333_036
DAI_PRICE_BEFORE = 1.08
DAI_PRICE_AFTER = 1.095299
USDC_PRICE = 1.0
COLLATERAL_DAI = 108_510_000.0
COLLATERAL_USDC = 17_880_000.0
DEBT_DAI = 93_220_000.0
DEBT_USDC = 506_640.0
LIQUIDATION_THRESHOLD = 0.75
LIQUIDATION_SPREAD = 0.08
CLOSE_FACTOR = 0.5
#: The original liquidation repaid 46.14 M DAI of debt (Table 6's first row).
ORIGINAL_REPAY_DAI = 46_140_000.0


@dataclass(frozen=True)
class PositionStatus:
    """One column of Table 5 (before / after the oracle update)."""

    dai_price: float
    total_collateral_usd: float
    borrowing_capacity_usd: float
    total_debt_usd: float

    @property
    def health_factor(self) -> float:
        """BC / debt (Equation 4)."""
        return self.borrowing_capacity_usd / self.total_debt_usd


@dataclass(frozen=True)
class StrategyExecution:
    """One strategy's replayed outcome (a column group of Table 6)."""

    name: str
    repays_usd: tuple[float, ...]
    collateral_received_usd: float
    profit_usd: float


@dataclass(frozen=True)
class CaseStudyData:
    """Tables 5 and 6 plus the analytic cross-check."""

    before: PositionStatus
    after: PositionStatus
    executions: tuple[StrategyExecution, ...]
    analytic_up_to_close: StrategyOutcome
    analytic_optimal: StrategyOutcome
    optimal_extra_profit_usd: float
    mitigation_alpha_threshold: float


def _position_status(dai_price: float) -> PositionStatus:
    collateral = COLLATERAL_DAI * dai_price + COLLATERAL_USDC * USDC_PRICE
    debt = DEBT_DAI * dai_price + DEBT_USDC * USDC_PRICE
    return PositionStatus(
        dai_price=dai_price,
        total_collateral_usd=collateral,
        borrowing_capacity_usd=collateral * LIQUIDATION_THRESHOLD,
        total_debt_usd=debt,
    )


def _build_compound_fork() -> tuple[CompoundProtocol, PriceOracle]:
    """Reconstruct the case-study state on a fresh Compound instance."""
    registry = default_registry()
    feed = PriceFeed(
        start_block=CASE_STUDY_BLOCK,
        blocks_per_step=1,
        series={"DAI": [DAI_PRICE_BEFORE], "USDC": [USDC_PRICE], "ETH": [500.0]},
    )
    chain = Blockchain(ChainConfig(inception_block=CASE_STUDY_BLOCK))
    oracle = PriceOracle(chain, feed, OracleConfig(name="compound-open-oracle"))
    oracle.update_from_feed()
    compound = CompoundProtocol(
        chain,
        oracle,
        registry,
        markets={"DAI": LIQUIDATION_THRESHOLD, "USDC": LIQUIDATION_THRESHOLD, "ETH": 0.75},
        liquidation_spread=LIQUIDATION_SPREAD,
    )
    borrower = make_address("case-study-borrower")
    position = compound.position_of(borrower)
    position.add_collateral("DAI", COLLATERAL_DAI)
    position.add_collateral("USDC", COLLATERAL_USDC)
    position.add_debt("DAI", DEBT_DAI)
    position.add_debt("USDC", DEBT_USDC)
    # Custody: the pool holds the collateral tokens backing the position.
    registry.get("DAI").mint(compound.address, COLLATERAL_DAI)
    registry.get("USDC").mint(compound.address, COLLATERAL_USDC)
    return compound, oracle


def _execute_strategy(name: str, repay_plan_usd: list[float]) -> StrategyExecution:
    """Replay a strategy (a list of successive repay values) on fresh state."""
    compound, oracle = _build_compound_fork()
    # The liquidator first performs the oracle price update (Section 5.2.2).
    oracle.post_price("DAI", DAI_PRICE_AFTER)
    borrower = next(iter(compound.positions))
    liquidator = make_address(f"case-study-liquidator-{name}")
    dai = compound.registry.get("DAI")
    repays: list[float] = []
    received_usd = 0.0
    for repay_usd in repay_plan_usd:
        repay_amount = repay_usd / DAI_PRICE_AFTER
        # The analytic plan is expressed on the aggregate position (DAI +
        # USDC debt); the on-protocol close factor applies per currency, so a
        # liquidator caps each call at the DAI-debt limit.
        repay_amount = min(repay_amount, compound.max_repay_amount(borrower, "DAI"))
        dai.mint(liquidator, repay_amount)
        result = compound.liquidation_call(liquidator, borrower, "DAI", "DAI", repay_amount)
        repays.append(result.quote.repay_usd)
        received_usd += result.quote.collateral_usd
    return StrategyExecution(
        name=name,
        repays_usd=tuple(repays),
        collateral_received_usd=received_usd,
        profit_usd=received_usd - pinned_sum(repays),
    )


def compute() -> CaseStudyData:
    """Replay the case study and evaluate the closed-form strategy comparison."""
    before = _position_status(DAI_PRICE_BEFORE)
    after = _position_status(DAI_PRICE_AFTER)
    params = LiquidationParams(
        liquidation_threshold=LIQUIDATION_THRESHOLD,
        liquidation_spread=LIQUIDATION_SPREAD,
        close_factor=CLOSE_FACTOR,
    )
    simple = SimplePosition(collateral_usd=after.total_collateral_usd, debt_usd=after.total_debt_usd)
    analytic_close = up_to_close_factor_strategy(simple, params)
    analytic_optimal = optimal_strategy(simple, params)
    mitigation = mitigation_analysis(simple, params)

    executions = (
        _execute_strategy("original", [ORIGINAL_REPAY_DAI * DAI_PRICE_AFTER]),
        _execute_strategy("up-to-close-factor", [CLOSE_FACTOR * DEBT_DAI * DAI_PRICE_AFTER]),
        _execute_strategy("optimal", list(analytic_optimal.repays_usd)),
    )
    original_profit = executions[0].profit_usd
    optimal_profit = executions[2].profit_usd
    return CaseStudyData(
        before=before,
        after=after,
        executions=executions,
        analytic_up_to_close=analytic_close,
        analytic_optimal=analytic_optimal,
        optimal_extra_profit_usd=optimal_profit - original_profit,
        mitigation_alpha_threshold=mitigation.alpha_threshold,
    )


def render(data: CaseStudyData) -> str:
    """Render Tables 5 and 6."""
    table5 = format_table(
        ["", "Block 11333036", "After price update"],
        [
            ("DAI price (USD)", f"{data.before.dai_price:.6f}", f"{data.after.dai_price:.6f}"),
            ("Total collateral", usd(data.before.total_collateral_usd), usd(data.after.total_collateral_usd)),
            ("Borrowing capacity", usd(data.before.borrowing_capacity_usd), usd(data.after.borrowing_capacity_usd)),
            ("Total debt", usd(data.before.total_debt_usd), usd(data.after.total_debt_usd)),
            ("Health factor", f"{data.before.health_factor:.4f}", f"{data.after.health_factor:.4f}"),
        ],
    )
    table6 = format_table(
        ["Strategy", "Repay", "Receive", "Profit"],
        [
            (
                execution.name,
                " + ".join(usd(value) for value in execution.repays_usd),
                usd(execution.collateral_received_usd),
                usd(execution.profit_usd),
            )
            for execution in data.executions
        ],
    )
    return (
        "Table 5 — case-study position status\n"
        + table5
        + "\n\nTable 6 — liquidation strategy comparison\n"
        + table6
        + f"\n\nOptimal vs original additional profit: {usd(data.optimal_extra_profit_usd)}"
        + f"\nMitigation (one liquidation per block): optimal preferred only above "
        + f"{data.mitigation_alpha_threshold:.2%} mining power"
    )
