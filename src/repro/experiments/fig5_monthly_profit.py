"""Experiment E-F5 — Figure 5: monthly accumulated liquidation profit."""

from __future__ import annotations

from dataclasses import dataclass

from ..analytics.monthly import monthly_profit_by_platform, peak_month
from ..analytics.records import LiquidationRecord
from ..analytics.reporting import format_table
from ..analytics.common import sort_months, usd


@dataclass(frozen=True)
class Fig5Data:
    """Monthly profit series per platform plus each platform's outlier month."""

    monthly_profit: dict[str, dict[str, float]]
    peaks: dict[str, tuple[str, float]]


def compute(records: list[LiquidationRecord]) -> Fig5Data:
    """Build the Figure 5 dataset."""
    monthly = monthly_profit_by_platform(records)
    peaks = {}
    for platform, months in monthly.items():
        peak = peak_month(months)
        if peak is not None:
            peaks[platform] = peak
    return Fig5Data(monthly_profit=monthly, peaks=peaks)


def render(data: Fig5Data) -> str:
    """Render the monthly profit matrix (months × platforms)."""
    platforms = sorted(data.monthly_profit)
    months = sort_months({month for series in data.monthly_profit.values() for month in series})
    rows = []
    for month in months:
        rows.append([month] + [usd(data.monthly_profit[platform].get(month, 0.0)) for platform in platforms])
    table = format_table(["Month", *platforms], rows)
    peak_lines = [
        f"  {platform}: peak {usd(value)} in {month}" for platform, (month, value) in sorted(data.peaks.items())
    ]
    return "Figure 5 — monthly liquidation profit\n" + table + "\nOutlier months:\n" + "\n".join(peak_lines)
