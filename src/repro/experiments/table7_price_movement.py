"""Experiment E-T7 — Table 7 / Appendix A: post-liquidation price movements."""

from __future__ import annotations

from ..analytics.price_movement import PriceMovement, PriceMovementReport, price_movement_report
from ..analytics.records import LiquidationRecord
from ..analytics.reporting import format_table
from ..simulation.engine import SimulationResult


def compute(result: SimulationResult, records: list[LiquidationRecord]) -> PriceMovementReport:
    """Classify the post-liquidation collateral price path of every liquidation."""
    return price_movement_report(result, records)


def render(report: PriceMovementReport) -> str:
    """Render Table 7's counts and rise/fall magnitudes."""
    counts = report.counts()
    rows = []
    for movement in PriceMovement:
        count = counts.get(movement, 0)
        rows.append(
            (
                movement.value,
                count,
                f"{report.mean_max_rise(movement):.2%}" if count else "-",
                f"{report.mean_max_fall(movement):.2%}" if count else "-",
            )
        )
    table = format_table(["Price movement", "Liquidations", "Mean max rise", "Mean max fall"], rows)
    return (
        "Table 7 — post-liquidation collateral price movements\n"
        + table
        + f"\nShare of liquidations still below the liquidation price at the window end: "
        + f"{report.share_below_at_window_end:.2%}"
    )
