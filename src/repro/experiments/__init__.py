"""Experiment harnesses: one module per table/figure of the paper.

=================  =============================================================
Module             Paper artefact
=================  =============================================================
fig4_accumulative  Figure 4 — accumulative liquidated collateral
table1_overview    Table 1 — liquidations, liquidators, average profit
fig5_monthly_profit Figure 5 — monthly liquidation profit
fig6_gas_prices    Figure 6 — liquidation gas prices vs average
fig7_auctions      Figure 7 / §4.3.3 — MakerDAO auction durations and bidding
table2_bad_debt    Table 2 — Type I/II bad debts
table3_unprofitable Table 3 — unprofitable liquidation opportunities
table4_flash_loans Table 4 — flash-loan usage for liquidations
fig8_sensitivity   Figure 8 — liquidation sensitivity to price declines
stablecoin         §4.5.2 — stablecoin stability
fig9_profit_volume Figure 9 — monthly profit-volume ratio (DAI/ETH)
case_study         Tables 5/6 — optimal liquidation strategy case study
mitigation         §5.2.3 — one-liquidation-per-block mitigation
table7_price_movement Table 7 / Appendix A — post-liquidation price movements
table8_monthly     Table 8 / Appendix B — monthly DAI/ETH liquidations
configuration_sweep Appendix C — reasonable (LT, LS) configurations
close_factor_ablation Ablation — close factor vs over-liquidation (§4.4.1)
=================  =============================================================
"""

from . import (
    case_study,
    close_factor_ablation,
    configuration_sweep,
    fig4_accumulative,
    fig5_monthly_profit,
    fig6_gas_prices,
    fig7_auctions,
    fig8_sensitivity,
    fig9_profit_volume,
    mitigation,
    stablecoin,
    table1_overview,
    table2_bad_debt,
    table3_unprofitable,
    table4_flash_loans,
    table7_price_movement,
    table8_monthly,
)
from .runner import EXPERIMENT_IDS, ExperimentOutput, render_all, run_all

__all__ = [
    "EXPERIMENT_IDS",
    "ExperimentOutput",
    "case_study",
    "close_factor_ablation",
    "configuration_sweep",
    "fig4_accumulative",
    "fig5_monthly_profit",
    "fig6_gas_prices",
    "fig7_auctions",
    "fig8_sensitivity",
    "fig9_profit_volume",
    "mitigation",
    "render_all",
    "run_all",
    "stablecoin",
    "table1_overview",
    "table2_bad_debt",
    "table3_unprofitable",
    "table4_flash_loans",
    "table7_price_movement",
    "table8_monthly",
]
