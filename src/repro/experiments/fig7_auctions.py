"""Experiment E-F7 — Figure 7 and Section 4.3.3: MakerDAO auction dynamics."""

from __future__ import annotations

from ..analytics.auction_analysis import AuctionReport, auction_report
from ..analytics.reporting import format_table
from ..simulation.engine import SimulationResult


def compute(result: SimulationResult) -> AuctionReport:
    """Build the auction duration / bidding dataset."""
    return auction_report(result)


def render(report: AuctionReport) -> str:
    """Render the Section 4.3.3 auction statistics."""
    rows = [
        ("Settled auctions", report.settled_auctions),
        ("Terminated in tend phase", report.tend_terminations),
        ("Terminated in dent phase", report.dent_terminations),
        ("Mean bids per auction", f"{report.mean_bids_per_auction:.2f}"),
        ("Mean bidders per auction", f"{report.mean_bidders_per_auction:.2f}"),
        ("Mean duration (hours)", f"{report.mean_duration_hours:.2f}"),
        ("Std duration (hours)", f"{report.std_duration_hours:.2f}"),
        ("Max duration (hours)", f"{report.max_duration_hours:.2f}"),
        ("Mean first-bid delay (minutes)", f"{report.mean_first_bid_delay_minutes:.2f}"),
        ("Mean bid interval (minutes)", f"{report.mean_bid_interval_minutes:.2f}"),
        ("Auctions with more than one bid", report.auctions_with_multiple_bids),
    ]
    table = format_table(["Statistic", "Value"], rows)
    config_rows = [
        (change.block_number, f"{change.auction_length_hours:.1f}", f"{change.bid_duration_hours:.1f}")
        for change in report.config_changes
    ]
    config_table = format_table(["Configured at block", "Auction length (h)", "Bid duration (h)"], config_rows)
    return "Figure 7 / Section 4.3.3 — MakerDAO auctions\n" + table + "\n\nConfigured parameters:\n" + config_table
