"""Experiment E-F6 — Figure 6: gas prices paid by liquidators."""

from __future__ import annotations

from ..analytics.common import pinned_sum
from ..analytics.gas_analysis import GasReport, gas_report
from ..analytics.reporting import format_table
from ..simulation.engine import SimulationResult


def compute(result: SimulationResult) -> GasReport:
    """Build the Figure 6 dataset (liquidation gas bids vs the moving average)."""
    return gas_report(result)


def render(report: GasReport) -> str:
    """Render the headline statistics of Figure 6."""
    by_platform: dict[str, list[float]] = {}
    for point in report.points:
        by_platform.setdefault(point.platform, []).append(point.gas_price_gwei)
    rows = [
        (platform, len(values), f"{pinned_sum(values) / len(values):,.1f}", f"{max(values):,.1f}")
        for platform, values in sorted(by_platform.items())
    ]
    table = format_table(["Platform", "Liquidation txs", "Mean gas (gwei)", "Max gas (gwei)"], rows)
    return (
        "Figure 6 — liquidation gas prices\n"
        + table
        + f"\nShare of liquidations above the 1-day average gas price: {report.share_above_average:.2%}"
        + f"\nMaximum liquidation gas bid: {report.max_gas_price_gwei:,.1f} gwei"
    )
