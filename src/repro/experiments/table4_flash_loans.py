"""Experiment E-T4 — Table 4: flash-loan usage for liquidations."""

from __future__ import annotations

from ..analytics.flashloan_analysis import FlashLoanReport, flash_loan_report
from ..analytics.reporting import format_table
from ..analytics.common import usd
from ..simulation.engine import SimulationResult


def compute(result: SimulationResult) -> FlashLoanReport:
    """Build Table 4 from the chain's flash-loan events."""
    return flash_loan_report(result)


def render(report: FlashLoanReport) -> str:
    """Render Table 4: liquidation platform × flash-loan platform."""
    rows = [
        (row.liquidation_platform, row.flash_loan_platform, row.flash_loans, usd(row.accumulative_amount_usd))
        for row in report.rows
    ]
    table = format_table(
        ["Liquidation Platform", "Flash Loan Platform", "Flash Loans", "Accumulative Amount"], rows
    )
    return (
        "Table 4 — flash loan usages for liquidations\n"
        + table
        + f"\nTotal: {report.total_flash_loans} flash loans, {usd(report.total_amount_usd)}"
    )
