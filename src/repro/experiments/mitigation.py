"""Experiment E-MIT — Section 5.2.3: the one-liquidation-per-block mitigation.

Evaluates Equations 10–12 on the case-study position and on a grid of
collateralization ratios, showing that the mining-power threshold above which
a rational miner still prefers the optimal two-step strategy is close to
100 % (the paper reports 99.68 % for the case study), i.e. the mitigation is
effective.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analytics.reporting import format_table
from ..core.optimal_strategy import MitigationAnalysis, SimplePosition, mitigation_analysis
from ..core.terminology import LiquidationParams
from .case_study import CLOSE_FACTOR, LIQUIDATION_SPREAD, LIQUIDATION_THRESHOLD, _position_status, DAI_PRICE_AFTER


@dataclass(frozen=True)
class MitigationData:
    """The case-study threshold plus the threshold as a function of CR."""

    case_study: MitigationAnalysis
    thresholds_by_cr: dict[float, float]


def compute() -> MitigationData:
    """Evaluate the mitigation on the case study and over a CR sweep."""
    params = LiquidationParams(
        liquidation_threshold=LIQUIDATION_THRESHOLD,
        liquidation_spread=LIQUIDATION_SPREAD,
        close_factor=CLOSE_FACTOR,
    )
    after = _position_status(DAI_PRICE_AFTER)
    case = mitigation_analysis(
        SimplePosition(collateral_usd=after.total_collateral_usd, debt_usd=after.total_debt_usd), params
    )
    thresholds: dict[float, float] = {}
    for cr in np.arange(1.05, 1.0 / LIQUIDATION_THRESHOLD, 0.05):
        position = SimplePosition(collateral_usd=float(cr) * 1_000_000.0, debt_usd=1_000_000.0)
        if not position.is_liquidatable(LIQUIDATION_THRESHOLD):
            continue
        thresholds[round(float(cr), 2)] = mitigation_analysis(position, params).alpha_threshold
    return MitigationData(case_study=case, thresholds_by_cr=thresholds)


def render(data: MitigationData) -> str:
    """Render the mining-power thresholds."""
    rows = [(f"{cr:.2f}", f"{threshold:.2%}") for cr, threshold in sorted(data.thresholds_by_cr.items())]
    table = format_table(["Collateralization ratio", "Mining power threshold"], rows)
    return (
        "Section 5.2.3 — one-liquidation-per-block mitigation\n"
        f"Case study: optimal strategy preferred only above {data.case_study.alpha_threshold:.2%} mining power\n\n"
        + table
    )
