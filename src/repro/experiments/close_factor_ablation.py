"""Ablation — the effect of the close factor on borrower losses.

Section 4.4.1 argues that a 50 % (or 100 %) close factor over-liquidates: "a
debt can likely be rescued by selling less than 50 % of its value".  This
ablation quantifies that claim analytically: for a grid of close factors, it
computes the minimal repay needed to restore health (HF = 1) versus the repay
the close factor permits, and the resulting excess borrower loss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..analytics.reporting import format_table
from ..analytics.common import usd
from ..core.optimal_strategy import SimplePosition, liquidate_simple
from ..core.terminology import LiquidationParams


@dataclass(frozen=True)
class CloseFactorPoint:
    """Outcome of one close-factor setting on a representative position."""

    close_factor: float
    repay_allowed_usd: float
    repay_needed_usd: float
    borrower_loss_allowed_usd: float
    borrower_loss_needed_usd: float

    @property
    def excess_loss_usd(self) -> float:
        """Extra borrower loss attributable to the close factor's permissiveness."""
        return self.borrower_loss_allowed_usd - self.borrower_loss_needed_usd


@dataclass(frozen=True)
class CloseFactorAblation:
    """The full close-factor sweep for one representative position."""

    position: SimplePosition
    liquidation_threshold: float
    liquidation_spread: float
    points: tuple[CloseFactorPoint, ...]


def minimal_restoring_repay(position: SimplePosition, params: LiquidationParams) -> float:
    """The smallest repay value that restores HF = 1 (requires Appendix C's prerequisite).

    Solving ``(C − r(1+LS))·LT = D − r`` for ``r`` gives
    ``r = (D − LT·C) / (1 − LT(1+LS))`` — the same expression as the optimal
    strategy's first repay (Equation 6), because that repay is exactly the
    point at which the position stops being liquidatable.
    """
    lt = params.liquidation_threshold
    ls = params.liquidation_spread
    return (position.debt_usd - lt * position.collateral_usd) / (1.0 - lt * (1.0 + ls))


def compute(
    collateral_usd: float = 100_000.0,
    health_factor: float = 0.97,
    liquidation_threshold: float = 0.8,
    liquidation_spread: float = 0.08,
    close_factors: Sequence[float] = (0.25, 0.33, 0.5, 0.75, 1.0),
) -> CloseFactorAblation:
    """Sweep close factors on a representative just-unhealthy position."""
    debt_usd = collateral_usd * liquidation_threshold / health_factor
    position = SimplePosition(collateral_usd=collateral_usd, debt_usd=debt_usd)
    points: list[CloseFactorPoint] = []
    for close_factor in close_factors:
        params = LiquidationParams(
            liquidation_threshold=liquidation_threshold,
            liquidation_spread=liquidation_spread,
            close_factor=close_factor,
        )
        repay_needed = minimal_restoring_repay(position, params)
        repay_allowed = min(close_factor * position.debt_usd, position.debt_usd)
        # Borrower loss equals the liquidation spread on whatever is repaid.
        points.append(
            CloseFactorPoint(
                close_factor=close_factor,
                repay_allowed_usd=repay_allowed,
                repay_needed_usd=repay_needed,
                borrower_loss_allowed_usd=repay_allowed * liquidation_spread,
                borrower_loss_needed_usd=repay_needed * liquidation_spread,
            )
        )
    return CloseFactorAblation(
        position=position,
        liquidation_threshold=liquidation_threshold,
        liquidation_spread=liquidation_spread,
        points=tuple(points),
    )


def over_liquidation_ratio(point: CloseFactorPoint) -> float:
    """How many times more debt the close factor permits than health restoration needs."""
    if point.repay_needed_usd <= 0:
        return np.inf
    return point.repay_allowed_usd / point.repay_needed_usd


def render(data: CloseFactorAblation) -> str:
    """Render the close-factor sweep."""
    rows = [
        (
            f"{point.close_factor:.0%}",
            usd(point.repay_allowed_usd),
            usd(point.repay_needed_usd),
            f"{over_liquidation_ratio(point):.1f}x",
            usd(point.excess_loss_usd),
        )
        for point in data.points
    ]
    table = format_table(
        ["Close factor", "Repay allowed", "Repay needed (HF=1)", "Over-liquidation", "Excess borrower loss"],
        rows,
    )
    return (
        "Ablation — close factor and over-liquidation (Section 4.4.1)\n"
        f"Position: {usd(data.position.collateral_usd)} collateral, {usd(data.position.debt_usd)} debt, "
        f"LT={data.liquidation_threshold:.0%}, LS={data.liquidation_spread:.0%}\n" + table
    )
