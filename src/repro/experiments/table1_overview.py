"""Experiment E-T1 — Table 1: liquidations, liquidators and average profit."""

from __future__ import annotations

from ..analytics.profits import ProfitReport, profit_report
from ..analytics.records import LiquidationRecord
from ..analytics.reporting import format_table
from ..analytics.common import usd


def compute(records: list[LiquidationRecord]) -> ProfitReport:
    """Build Table 1 from the normalised liquidation records."""
    return profit_report(records)


def render(report: ProfitReport) -> str:
    """Render Table 1 plus the Section 4.3.1 headline statistics."""
    rows = [
        (row.platform, row.liquidations, row.liquidators, usd(row.average_profit_per_liquidator_usd))
        for row in report.rows
    ]
    rows.append(
        ("Total", report.total_liquidations, report.total_liquidators, usd(report.average_profit_per_liquidator_usd))
    )
    table = format_table(["Platform", "Liquidations", "Liquidators", "Average Profit"], rows)
    lines = [
        "Table 1 — liquidations, liquidators and average profit",
        table,
        f"Total liquidation profit: {usd(report.total_profit_usd)}",
        f"Unprofitable liquidations: {report.unprofitable_liquidations} "
        f"(loss {usd(abs(report.unprofitable_loss_usd))})",
    ]
    if report.most_active is not None:
        lines.append(
            f"Most active liquidator: {report.most_active.liquidations} liquidations, "
            f"{usd(report.most_active.total_profit_usd)} profit"
        )
    if report.most_profitable is not None:
        lines.append(
            f"Most profitable liquidator: {usd(report.most_profitable.total_profit_usd)} in "
            f"{report.most_profitable.liquidations} liquidations"
        )
    return "\n".join(lines)
