"""Experiment E-T8 — Table 8 / Appendix B: monthly DAI/ETH liquidation counts."""

from __future__ import annotations

from ..analytics.monthly import monthly_liquidation_counts, monthly_table
from ..analytics.records import LiquidationRecord
from ..analytics.reporting import format_table


def compute(records: list[LiquidationRecord]) -> dict[str, dict[str, int]]:
    """Monthly liquidation counts for the DAI-debt / ETH-collateral market."""
    return monthly_liquidation_counts(records, debt_symbol="DAI", collateral_symbol="ETH")


def render(counts: dict[str, dict[str, int]]) -> str:
    """Render Table 8 (months × platforms)."""
    platforms = sorted(counts)
    rows = monthly_table(counts, platforms)
    table = format_table(
        ["Month", *platforms],
        [[row["month"], *[row[platform] for platform in platforms]] for row in rows],
    )
    return "Table 8 — monthly DAI/ETH liquidations\n" + table
