"""Experiment E-APXC — Appendix C: reasonable fixed spread configurations."""

from __future__ import annotations

from dataclasses import dataclass

from ..analytics.reporting import format_table
from ..core.configuration import ConfigurationCheck, reasonable_fraction, sweep_configurations
from ..protocols.aave import AAVE_MARKETS
from ..protocols.compound import COMPOUND_LIQUIDATION_SPREAD, COMPOUND_MARKETS
from ..protocols.dydx import DYDX_LIQUIDATION_SPREAD, DYDX_MARKETS
from ..core.configuration import is_reasonable_configuration


@dataclass(frozen=True)
class ConfigurationData:
    """The (LT, LS) sweep plus a check of the production parameterisations."""

    checks: list[ConfigurationCheck]
    reasonable_share: float
    production_configs: dict[str, bool]


def compute() -> ConfigurationData:
    """Sweep the (LT, LS) grid and verify every production market is reasonable."""
    checks = sweep_configurations()
    production: dict[str, bool] = {}
    for symbol, (threshold, spread) in AAVE_MARKETS.items():
        production[f"Aave {symbol}"] = is_reasonable_configuration(threshold, spread)
    for symbol, threshold in COMPOUND_MARKETS.items():
        if threshold > 0:
            production[f"Compound {symbol}"] = is_reasonable_configuration(threshold, COMPOUND_LIQUIDATION_SPREAD)
    for symbol, threshold in DYDX_MARKETS.items():
        production[f"dYdX {symbol}"] = is_reasonable_configuration(threshold, DYDX_LIQUIDATION_SPREAD)
    return ConfigurationData(
        checks=checks,
        reasonable_share=reasonable_fraction(checks),
        production_configs=production,
    )


def render(data: ConfigurationData) -> str:
    """Render the sweep summary and any unreasonable production markets."""
    unreasonable = [name for name, reasonable in data.production_configs.items() if not reasonable]
    rows = [
        ("Grid points evaluated", len(data.checks)),
        ("Share satisfying 1 - LT(1+LS) > 0", f"{data.reasonable_share:.1%}"),
        ("Production markets checked", len(data.production_configs)),
        ("Unreasonable production markets", len(unreasonable)),
    ]
    table = format_table(["Statistic", "Value"], rows)
    details = ("\nUnreasonable markets: " + ", ".join(unreasonable)) if unreasonable else ""
    return "Appendix C — reasonable fixed spread configurations\n" + table + details
