"""Experiment E-T3 — Table 3: unprofitable liquidation opportunities."""

from __future__ import annotations

from ..analytics.reporting import format_table
from ..analytics.common import usd
from ..analytics.unprofitable_analysis import UnprofitableCell, unprofitable_table
from ..simulation.engine import SimulationResult


def compute(result: SimulationResult) -> dict[str, dict[float, UnprofitableCell]]:
    """Build Table 3 at the final block of the run."""
    return unprofitable_table(result)


def render(table: dict[str, dict[float, UnprofitableCell]]) -> str:
    """Render Table 3: unprofitable opportunities at 10 / 100 USD fees."""
    rows = []
    for platform, cells in table.items():
        cell_10 = cells.get(10.0)
        cell_100 = cells.get(100.0)

        def describe(cell: UnprofitableCell | None) -> str:
            if cell is None or cell.liquidatable_positions == 0:
                return "-"
            return (
                f"{cell.unprofitable_count} ({cell.unprofitable_share:.1%}) / "
                f"{usd(cell.unprofitable_collateral_usd)}"
            )

        rows.append((platform, describe(cell_10), describe(cell_100)))
    table_text = format_table(["Platform", "Fee ≤10 USD", "Fee ≤100 USD"], rows)
    return "Table 3 — unprofitable liquidation opportunities\n" + table_text
