"""Declarative campaign specifications.

A :class:`CampaignSpec` names *what* to simulate — a registered scenario, an
optional grid of builder overrides, and how many seeds — without building
anything.  It expands to a list of :class:`RunSpec` objects, each a fully
picklable ``(scenario, overrides, seed)`` triple that a worker process can
rebuild into a world on its own (nothing unpicklable ever crosses the
process boundary).

Seeds are derived with :class:`numpy.random.SeedSequence.spawn`, so the runs
of a campaign are reproducible *and* statistically independent: the same
``(base_seed, n_seeds)`` always yields the same seed list, and spawned
children never share entropy streams.

Override keys a campaign may fix (``overrides``) or sweep (``grid``):

``close_factor``
    Close factor applied to every fixed-spread protocol.
``liquidation_incentive``
    Liquidation spread (incentive) applied to every market of every
    protocol.
``crash_depth``
    Replaces the ``drop`` of every crash-type :class:`PriceCrash` incident
    in effect (spikes, i.e. negative drops, are left untouched).
``end_block`` / ``blocks_per_step``
    Window truncation and engine stride, as in ``repro run``.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Sequence

import numpy as np

from ..experiments.runner import EXPERIMENT_IDS
from ..scenarios import get as get_scenario
from ..scenarios.builder import ScenarioBuilder
from ..scenarios.incidents import PriceCrash

__all__ = [
    "FEED_NEUTRAL_OVERRIDE_KEYS",
    "OVERRIDE_KEYS",
    "CampaignSpec",
    "RunSpec",
    "apply_overrides",
    "spawn_seeds",
]

#: Builder override keys a campaign grid may fix or sweep.
OVERRIDE_KEYS: tuple[str, ...] = (
    "close_factor",
    "liquidation_incentive",
    "crash_depth",
    "end_block",
    "blocks_per_step",
)

#: Override keys that cannot influence the price feed: ``apply_overrides``
#: applies them to the protocols *after* construction, so runs differing
#: only in these share a byte-identical feed — the grouping fact behind
#: :attr:`RunSpec.warm_key` and the persistent backend's warm-feed cache.
FEED_NEUTRAL_OVERRIDE_KEYS = frozenset({"close_factor", "liquidation_incentive"})

#: Override keys carrying integral values (the rest are floats).
_INT_KEYS = frozenset({"end_block", "blocks_per_step"})


def _coerce(key: str, value: Any) -> float | int:
    """Validate an override key and coerce its value to the right type."""
    if key not in OVERRIDE_KEYS:
        raise KeyError(
            f"unknown override {key!r}; supported overrides: {', '.join(OVERRIDE_KEYS)}"
        )
    return int(value) if key in _INT_KEYS else float(value)


def apply_overrides(builder: ScenarioBuilder, overrides: Mapping[str, float]) -> ScenarioBuilder:
    """Apply campaign overrides to a scenario builder, in place.

    Window overrides are applied first (default incidents depend on the
    config), then the incident rewrite, then a protocol-factory wrapper that
    patches close factor / liquidation incentive after construction.
    """
    overrides = {key: _coerce(key, value) for key, value in overrides.items()}

    end_block = overrides.get("end_block")
    blocks_per_step = overrides.get("blocks_per_step")
    if end_block is not None or blocks_per_step is not None:
        builder.with_window(end_block=end_block, blocks_per_step=blocks_per_step)

    crash_depth = overrides.get("crash_depth")
    if crash_depth is not None:
        builder.with_incidents(
            *(
                replace(incident, drop=crash_depth)
                if isinstance(incident, PriceCrash) and incident.drop > 0
                else incident
                for incident in builder.incidents
            )
        )

    close_factor = overrides.get("close_factor")
    incentive = overrides.get("liquidation_incentive")
    if close_factor is not None or incentive is not None:
        inner = builder.protocol_factory

        def patched(ctx, _inner=inner):
            protocols = _inner(ctx)
            for protocol in protocols:
                if close_factor is not None:
                    protocol.close_factor = close_factor
                if incentive is not None:
                    for market in protocol.markets.values():
                        market.liquidation_spread = incentive
            return protocols

        builder.with_protocol_factory(patched)
    return builder


def spawn_seeds(base_seed: int, n_seeds: int) -> list[int]:
    """Derive ``n_seeds`` independent integer seeds from ``base_seed``."""
    children = np.random.SeedSequence(base_seed).spawn(n_seeds)
    return [int(child.generate_state(1)[0]) for child in children]


@dataclass(frozen=True)
class RunSpec:
    """One fully-determined run: everything a worker needs to rebuild it."""

    scenario: str
    overrides: tuple[tuple[str, float], ...]
    seed: int
    seed_index: int
    variant: str

    @property
    def run_id(self) -> str:
        """Store directory name: the variant label plus the seed index."""
        return f"{self.variant}-seed{self.seed_index:03d}"

    @property
    def key(self) -> str:
        """Content hash of ``(scenario, overrides, seed)`` for resume checks."""
        payload = json.dumps(
            {"scenario": self.scenario, "overrides": sorted(self.overrides), "seed": self.seed},
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    @property
    def warm_key(self) -> tuple:
        """Grouping key for warm-worker reuse.

        Runs sharing a ``warm_key`` produce the same price feed (same
        scenario, same feed-relevant overrides, same seed), so a persistent
        worker that keeps one run's feed can reuse it for the others —
        exactly the grid points sweeping ``close_factor`` /
        ``liquidation_incentive`` around a fixed seed.
        """
        feed_overrides = tuple(
            (key, value)
            for key, value in sorted(self.overrides)
            if key not in FEED_NEUTRAL_OVERRIDE_KEYS
        )
        return (self.scenario, feed_overrides, self.seed)

    def builder(self) -> ScenarioBuilder:
        """Rebuild the scenario builder for this run (registry + overrides + seed)."""
        builder = get_scenario(self.scenario).builder()
        apply_overrides(builder, dict(self.overrides))
        return builder.with_seed(self.seed)


@dataclass
class CampaignSpec:
    """A named scenario (or override grid) crossed with a seed range."""

    scenario: str
    seeds: int = 1
    base_seed: int = 0
    overrides: Mapping[str, float] = field(default_factory=dict)
    grid: Mapping[str, Sequence[float]] = field(default_factory=dict)
    experiments: tuple[str, ...] = EXPERIMENT_IDS
    name: str | None = None

    def __post_init__(self) -> None:
        if self.seeds < 1:
            raise ValueError(f"seeds must be >= 1, got {self.seeds}")
        self.overrides = {key: _coerce(key, value) for key, value in self.overrides.items()}
        self.grid = {
            key: tuple(_coerce(key, value) for value in values)
            for key, values in self.grid.items()
        }
        empty = sorted(key for key, values in self.grid.items() if not values)
        if empty:
            raise ValueError(f"grid axis with no values: {', '.join(empty)}")
        self.experiments = tuple(self.experiments)
        unknown = [eid for eid in self.experiments if eid not in EXPERIMENT_IDS]
        if unknown:
            raise KeyError(
                f"unknown experiment id(s) {', '.join(unknown)}; known: {', '.join(EXPERIMENT_IDS)}"
            )

    @property
    def campaign(self) -> str:
        """Store-level campaign name (defaults to the scenario name)."""
        return self.name or self.scenario

    def seed_values(self) -> list[int]:
        """The campaign's independent seeds, in seed-index order."""
        return spawn_seeds(self.base_seed, self.seeds)

    def variants(self) -> list[tuple[str, dict[str, float]]]:
        """Expand the override grid into ``(label, overrides)`` pairs.

        Fixed ``overrides`` apply to every variant; grid axes are crossed in
        key-sorted order.  With no grid there is a single variant whose label
        is ``"base"``.
        """
        if not self.grid:
            return [("base", dict(self.overrides))]
        axes = sorted(self.grid)
        out = []
        for point in itertools.product(*(self.grid[axis] for axis in axes)):
            cell = dict(zip(axes, point))
            label = ",".join(f"{axis}={cell[axis]:g}" for axis in axes)
            out.append((label, {**self.overrides, **cell}))
        return out

    def runs(self) -> list[RunSpec]:
        """Every run of the campaign: each variant crossed with each seed."""
        return [
            RunSpec(
                scenario=self.scenario,
                overrides=tuple(sorted(overrides.items())),
                seed=seed,
                seed_index=seed_index,
                variant=label,
            )
            for label, overrides in self.variants()
            for seed_index, seed in enumerate(self.seed_values())
        ]

    def describe(self) -> dict[str, Any]:
        """A JSON-ready summary of the spec (stored in run manifests)."""
        return {
            "campaign": self.campaign,
            "scenario": self.scenario,
            "seeds": self.seeds,
            "base_seed": self.base_seed,
            "overrides": dict(self.overrides),
            "grid": {key: list(values) for key, values in self.grid.items()},
            "experiments": list(self.experiments),
        }
