"""Campaigns: parallel multi-seed sweeps with a persistent run store.

This package turns single ``repro run`` invocations into *campaigns* —
statistically meaningful collections of runs:

* :mod:`repro.campaigns.spec` — the declarative :class:`CampaignSpec`: a
  named scenario (or a grid of builder overrides) crossed with a
  ``SeedSequence``-derived seed range, expanding to picklable
  :class:`RunSpec` triples;
* :mod:`repro.campaigns.backends` — the pluggable :class:`ExecutionBackend`
  protocol and its implementations (``serial`` / ``spawn`` /
  ``persistent``), plus :class:`WorkerConfig`, the one worker-configuration
  surface shared by the executor, ``repro sweep`` and ``repro serve``;
* :mod:`repro.campaigns.executor` — :class:`CampaignExecutor`, the driver
  that expands a spec, resumes completed runs from the store, and fans the
  rest out over an execution backend;
* :mod:`repro.campaigns.store` — :class:`RunStore`, the on-disk layout
  ``runs/<campaign>/<run_id>/manifest.json`` + per-experiment JSON;
* :mod:`repro.campaigns.aggregate` — cross-seed statistics (mean / stddev /
  95 % CI per scalar field of every experiment) and the comparison report.

Quickstart::

    from repro.campaigns import CampaignExecutor, CampaignSpec, RunStore

    spec = CampaignSpec(scenario="march-2020-only", seeds=8)
    store = RunStore("runs")
    CampaignExecutor(spec, store, backend="persistent").execute()

    from repro.campaigns import aggregate_campaign, render_comparison
    print(render_comparison(aggregate_campaign(store, spec.campaign)))

or, from the shell::

    repro sweep --scenario march-2020-only --seeds 8 --workers 4
    repro compare

``--workers 4`` auto-selects the persistent backend; pin one explicitly
with ``--backend serial|spawn|persistent``.  All backends produce
byte-identical store files, so the choice is purely about throughput.
"""

from .aggregate import (
    CampaignAggregate,
    ExperimentStats,
    FieldStats,
    VariantAggregate,
    aggregate_campaign,
    render_comparison,
    scalar_fields,
)
from .backends import (
    BACKEND_NAMES,
    ExecutionBackend,
    PersistentBackend,
    SerialBackend,
    SpawnBackend,
    TaskBatch,
    WorkerConfig,
    backend_names,
    create_backend,
    register_backend,
)
from .executor import CampaignExecutor, CampaignResult, RunJob, WarmRunContext, execute_job
from .spec import OVERRIDE_KEYS, CampaignSpec, RunSpec, apply_overrides, spawn_seeds
from .store import RunStore

__all__ = [
    "BACKEND_NAMES",
    "CampaignAggregate",
    "CampaignExecutor",
    "CampaignResult",
    "CampaignSpec",
    "ExecutionBackend",
    "ExperimentStats",
    "FieldStats",
    "OVERRIDE_KEYS",
    "PersistentBackend",
    "RunJob",
    "RunSpec",
    "RunStore",
    "SerialBackend",
    "SpawnBackend",
    "TaskBatch",
    "VariantAggregate",
    "WarmRunContext",
    "WorkerConfig",
    "aggregate_campaign",
    "apply_overrides",
    "backend_names",
    "create_backend",
    "execute_job",
    "register_backend",
    "render_comparison",
    "scalar_fields",
    "spawn_seeds",
]
