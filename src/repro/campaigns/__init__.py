"""Campaigns: parallel multi-seed sweeps with a persistent run store.

This package turns single ``repro run`` invocations into *campaigns* —
statistically meaningful collections of runs:

* :mod:`repro.campaigns.spec` — the declarative :class:`CampaignSpec`: a
  named scenario (or a grid of builder overrides) crossed with a
  ``SeedSequence``-derived seed range, expanding to picklable
  :class:`RunSpec` triples;
* :mod:`repro.campaigns.executor` — :class:`CampaignExecutor`, the
  scenario-loop driver that fans runs out over a ``multiprocessing`` pool
  (with a serial fallback) and resumes from the store;
* :mod:`repro.campaigns.store` — :class:`RunStore`, the on-disk layout
  ``runs/<campaign>/<run_id>/manifest.json`` + per-experiment JSON;
* :mod:`repro.campaigns.aggregate` — cross-seed statistics (mean / stddev /
  95 % CI per scalar field of every experiment) and the comparison report.

Quickstart::

    from repro.campaigns import CampaignExecutor, CampaignSpec, RunStore
    from repro.campaigns import aggregate_campaign, render_comparison

    spec = CampaignSpec(scenario="march-2020-only", seeds=8)
    store = RunStore("runs")
    CampaignExecutor(spec, store, workers=4).execute()
    print(render_comparison(aggregate_campaign(store, spec.campaign)))

or, from the shell::

    repro sweep --scenario march-2020-only --seeds 8 --workers 4
    repro compare
"""

from .aggregate import (
    CampaignAggregate,
    ExperimentStats,
    FieldStats,
    VariantAggregate,
    aggregate_campaign,
    render_comparison,
    scalar_fields,
)
from .executor import CampaignExecutor, CampaignResult, RunJob, execute_job
from .spec import OVERRIDE_KEYS, CampaignSpec, RunSpec, apply_overrides, spawn_seeds
from .store import RunStore

__all__ = [
    "CampaignAggregate",
    "CampaignExecutor",
    "CampaignResult",
    "CampaignSpec",
    "ExperimentStats",
    "FieldStats",
    "OVERRIDE_KEYS",
    "RunJob",
    "RunSpec",
    "RunStore",
    "VariantAggregate",
    "aggregate_campaign",
    "apply_overrides",
    "execute_job",
    "render_comparison",
    "scalar_fields",
    "spawn_seeds",
]
