"""Cross-run aggregation of a campaign's persisted experiment outputs.

A campaign's runs differ only in their seed (within a variant), so every
numeric scalar an experiment computes — total liquidation profit, bad-debt
counts, per-platform collateral sold — becomes a *distribution* across
seeds.  :func:`aggregate_campaign` loads every completed run from the store,
walks each experiment's JSON ``data`` for scalar fields (nested dicts are
flattened to ``dotted.paths``; lists/arrays are skipped), and computes
per-field mean, sample standard deviation, and a normal-approximation 95 %
confidence half-width (``1.96 · s / √n``).

:func:`render_comparison` turns the aggregate into the text report behind
``repro compare``: one table per (variant, experiment) with a row per scalar
field.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from ..analytics.reporting import format_table
from ..experiments.runner import EXPERIMENT_IDS
from .store import RunStore

__all__ = [
    "FieldStats",
    "ExperimentStats",
    "VariantAggregate",
    "CampaignAggregate",
    "aggregate_campaign",
    "render_comparison",
    "scalar_fields",
]


def scalar_fields(data: Any, prefix: str = "") -> dict[str, float]:
    """Flatten the numeric scalars of a JSON payload to ``dotted.path`` keys.

    Only dicts are descended into; lists (time series, per-record arrays)
    and strings are skipped, and booleans are not treated as numbers.
    """
    out: dict[str, float] = {}
    if isinstance(data, Mapping):
        for key, value in data.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(scalar_fields(value, path))
    elif isinstance(data, (int, float)) and not isinstance(data, bool):
        if prefix:
            out[prefix] = float(data)
    return out


@dataclass(frozen=True)
class FieldStats:
    """Cross-seed statistics of one scalar field."""

    field: str
    n: int
    mean: float
    stddev: float
    ci95: float  # 95 % confidence half-width around the mean

    @classmethod
    def from_values(cls, name: str, values: list[float]) -> "FieldStats":
        n = len(values)
        mean = sum(values) / n
        if n > 1:
            variance = sum((value - mean) ** 2 for value in values) / (n - 1)
            stddev = math.sqrt(variance)
        else:
            stddev = 0.0
        return cls(field=name, n=n, mean=mean, stddev=stddev, ci95=1.96 * stddev / math.sqrt(n))


@dataclass(frozen=True)
class ExperimentStats:
    """One experiment's per-field statistics within a variant."""

    experiment_id: str
    title: str
    n_runs: int
    fields: dict[str, FieldStats]


@dataclass(frozen=True)
class VariantAggregate:
    """All experiments of one variant, aggregated across its seeds."""

    variant: str
    seeds: tuple[int, ...]
    experiments: dict[str, ExperimentStats]


@dataclass
class CampaignAggregate:
    """The full cross-run view of one campaign."""

    campaign: str
    n_runs: int = 0
    variants: list[VariantAggregate] = field(default_factory=list)


def aggregate_campaign(
    store: RunStore,
    campaign: str,
    experiment_ids: Iterable[str] | None = None,
) -> CampaignAggregate:
    """Aggregate every completed run of ``campaign`` in ``store``.

    ``experiment_ids`` restricts the aggregation; by default every
    experiment present in the runs is aggregated (in paper order).  Runs
    missing an experiment file simply contribute nothing to that experiment.
    """
    run_ids = store.run_ids(campaign)
    if not run_ids:
        raise FileNotFoundError(
            f"campaign {campaign!r} has no completed runs under {store.root}"
        )
    wanted = tuple(experiment_ids) if experiment_ids is not None else EXPERIMENT_IDS

    # variant -> (seeds, experiment_id -> list of payloads)
    by_variant: dict[str, tuple[list[int], dict[str, list[dict]]]] = {}
    n_runs = 0
    for run_id in run_ids:
        manifest = store.read_manifest(campaign, run_id)
        if not manifest or manifest.get("status") != "completed":
            continue
        n_runs += 1
        variant = manifest.get("variant", "base")
        seeds, payloads = by_variant.setdefault(variant, ([], {}))
        seeds.append(int(manifest.get("seed", -1)))
        for experiment_id in wanted:
            path = store.experiment_path(campaign, run_id, experiment_id)
            if not path.is_file():
                continue
            payloads.setdefault(experiment_id, []).append(
                store.read_experiment(campaign, run_id, experiment_id)
            )

    aggregate = CampaignAggregate(campaign=campaign, n_runs=n_runs)
    for variant in sorted(by_variant):
        seeds, payloads = by_variant[variant]
        experiments: dict[str, ExperimentStats] = {}
        for experiment_id in wanted:
            samples = payloads.get(experiment_id)
            if not samples:
                continue
            per_field: dict[str, list[float]] = {}
            for payload in samples:
                for name, value in scalar_fields(payload.get("data")).items():
                    per_field.setdefault(name, []).append(value)
            experiments[experiment_id] = ExperimentStats(
                experiment_id=experiment_id,
                title=samples[0].get("title", experiment_id),
                n_runs=len(samples),
                fields={
                    name: FieldStats.from_values(name, values)
                    for name, values in sorted(per_field.items())
                },
            )
        aggregate.variants.append(
            VariantAggregate(variant=variant, seeds=tuple(sorted(seeds)), experiments=experiments)
        )
    return aggregate


def render_comparison(aggregate: CampaignAggregate) -> str:
    """Render the cross-run comparison report (``repro compare``)."""
    lines = [
        f"Campaign {aggregate.campaign!r} — {aggregate.n_runs} completed runs, "
        f"{len(aggregate.variants)} variant(s)"
    ]
    for variant in aggregate.variants:
        for experiment_id, stats in variant.experiments.items():
            if not stats.fields:
                continue
            rows = [
                (entry.field, entry.mean, entry.stddev, f"±{entry.ci95:,.4g}")
                for entry in stats.fields.values()
            ]
            table = format_table(["field", "mean", "stddev", "95% CI"], rows)
            lines.append(
                f"\n== {stats.title} — variant {variant.variant!r}, n={stats.n_runs} ==\n{table}"
            )
    return "\n".join(lines) + "\n"
