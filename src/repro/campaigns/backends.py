"""Pluggable campaign execution backends.

The :class:`ExecutionBackend` protocol is the seam between *what* a
campaign runs (:class:`~repro.campaigns.executor.RunJob`) and *how* it
runs.  Three implementations ship, registered under the names the CLI
(``repro sweep --backend`` / ``repro serve --backend``) exposes:

``serial``
    In-process, one run after another — the ground truth every parallel
    backend is byte-compared against.
``spawn``
    The legacy per-campaign ``multiprocessing`` spawn pool: fresh worker
    processes per ``execute()``, torn down when the campaign ends.
``persistent``
    Long-lived worker processes started once and reused across campaigns.
    Tasks travel as compact :class:`TaskBatch` messages grouped by
    :attr:`~repro.campaigns.spec.RunSpec.warm_key`, so grid points sharing
    a scenario/seed land on the same worker and reuse its
    :class:`~repro.campaigns.executor.WarmRunContext` (warm scenario
    template: the price feed today).  Outcomes come back over one shared
    result queue; a collector thread routes them to the dispatching
    caller, which makes :meth:`PersistentBackend.run` safe to call from
    several threads at once (the service supervisor does).

All three produce byte-identical :class:`~repro.campaigns.store.RunStore`
files: every run is independently seeded, ``reset_run_state()`` rewinds
global counters per run, and only immutable seed-determined ingredients
are ever reused warm.

:class:`WorkerConfig` is the one worker-configuration surface shared by
the executor kwargs, ``repro sweep`` flags and ``repro serve`` flags; it
round-trips through run manifests (the ``"execution"`` block) so a
resumed sweep records which backend produced each run.

Register additional backends with :func:`register_backend`; see
CONTRIBUTING "Adding an execution backend".
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Mapping, Protocol, Sequence, runtime_checkable

from .executor import _WORKER_STATE, RunJob, RunOutcome, WarmRunContext, execute_job

__all__ = [
    "BACKEND_NAMES",
    "ExecutionBackend",
    "PersistentBackend",
    "SerialBackend",
    "SpawnBackend",
    "TaskBatch",
    "WorkerConfig",
    "backend_names",
    "create_backend",
    "register_backend",
]

#: Warm-key affinity entries the persistent backend remembers across calls.
_AFFINITY_CAPACITY = 128


@dataclass(frozen=True)
class WorkerConfig:
    """The unified worker configuration: which backend, how many workers.

    One dataclass behind ``CampaignExecutor(backend=...)``,
    ``repro sweep --backend/--workers`` and ``repro serve --backend/--workers``.
    :meth:`describe` / :meth:`from_payload` round-trip it through the run
    manifest's ``"execution"`` block.
    """

    backend: str = "serial"
    workers: int = 1

    def __post_init__(self) -> None:
        if not self.backend:
            raise ValueError("backend name must be non-empty")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")

    @classmethod
    def resolve(cls, backend: str | None = None, workers: int | None = None) -> "WorkerConfig":
        """Resolve CLI-style inputs: ``auto`` picks serial or persistent.

        ``backend=None``/``"auto"`` maps to serial when ``workers`` is unset
        or 1, persistent otherwise.  A parallel backend with no worker count
        gets a host-derived default (2–4, capped by CPU count).
        """
        name = backend or "auto"
        if name == "auto":
            name = "serial" if not workers or int(workers) <= 1 else "persistent"
        if name == "serial":
            return cls()
        if workers is None:
            workers = min(4, max(2, os.cpu_count() or 1))
        return cls(backend=name, workers=max(int(workers), 1))

    @classmethod
    def from_workers(cls, workers: int) -> "WorkerConfig":
        """The deprecated ``CampaignExecutor(workers=N)`` mapping.

        ``N > 1`` used to mean a per-campaign spawn pool, so the shim
        preserves exactly that; ``N <= 1`` is serial.
        """
        workers = max(int(workers), 1)
        return cls(backend="spawn", workers=workers) if workers > 1 else cls()

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "WorkerConfig":
        """Rebuild from a manifest ``"execution"`` block."""
        return cls(backend=str(payload["backend"]), workers=int(payload["workers"]))

    def describe(self) -> dict[str, Any]:
        """The JSON-ready manifest form (see :meth:`from_payload`)."""
        return {"backend": self.backend, "workers": self.workers}

    def create(self) -> "ExecutionBackend":
        """Instantiate the configured backend from the registry."""
        return create_backend(self)


@runtime_checkable
class ExecutionBackend(Protocol):
    """How a campaign's pending runs execute.

    Implementations must keep the store byte-identity contract: a job's
    persisted files may not depend on which backend (or worker) ran it.
    ``run`` yields outcomes as runs finish (unordered on parallel
    backends); ``execute_one`` is the thread-safe single-run entry the
    service supervisor uses.  ``close`` releases resources gracefully,
    ``terminate`` forcefully (in-flight runs surface as failed outcomes —
    resumable, since interrupted runs never write a manifest).
    """

    name: str
    workers: int

    def run(
        self, jobs: Sequence[RunJob], *, extra_probes: tuple = ()
    ) -> Iterator[RunOutcome]: ...

    def execute_one(self, job: RunJob) -> RunOutcome: ...

    def close(self) -> None: ...

    def terminate(self) -> None: ...


class SerialBackend:
    """In-process execution, one run after another (the ground truth).

    ``warm=True`` opts into the same :class:`WarmRunContext` reuse the
    persistent workers apply — off by default so the serial store remains
    the cold-path reference that byte-identity tests compare against.
    """

    name = "serial"
    workers = 1

    def __init__(self, *, warm: bool = False) -> None:
        self._warm = WarmRunContext() if warm else None
        # execute_job mutates process-global state (telemetry install,
        # runtime_state resets): one lock keeps concurrent callers — the
        # service's worker slots — from interleaving runs.
        self._lock = threading.Lock()

    def run(self, jobs: Sequence[RunJob], *, extra_probes: tuple = ()) -> Iterator[RunOutcome]:
        with self._lock:
            # Parallel backends give every campaign fresh workers; give the
            # serial path the same contract, or task indices and idle gaps
            # would span earlier campaigns run in this process.
            _WORKER_STATE.clear()
            for job in jobs:
                yield execute_job(job, extra_probes=extra_probes, warm=self._warm)

    def execute_one(self, job: RunJob) -> RunOutcome:
        with self._lock:
            return execute_job(job, warm=self._warm)

    def close(self) -> None:
        pass

    def terminate(self) -> None:
        pass


class SpawnBackend:
    """The per-campaign ``multiprocessing`` spawn pool (the legacy fan-out).

    Each :meth:`run` call builds a fresh pool sized to the batch and tears
    it down afterwards — workers pay interpreter start-up plus the scenario
    registry import per campaign, which is why the persistent backend
    exists.  :meth:`execute_one` keeps one long-lived pool instead, so the
    service path is not charged a spawn per run.
    """

    name = "spawn"

    def __init__(self, workers: int = 2) -> None:
        self.workers = max(int(workers), 1)
        self._context = multiprocessing.get_context("spawn")
        self._pool = None  # lazy: only the execute_one path needs it
        self._lock = threading.Lock()

    def run(self, jobs: Sequence[RunJob], *, extra_probes: tuple = ()) -> Iterator[RunOutcome]:
        jobs = list(jobs)
        if self.workers <= 1 or len(jobs) < 2:
            # Nothing to fan out: run in-process (and keep probe support).
            _WORKER_STATE.clear()
            for job in jobs:
                yield execute_job(job, extra_probes=extra_probes)
            return
        if extra_probes:
            raise ValueError(
                "extra_probes cannot cross the process boundary; use the serial backend"
            )
        # Spawn (not fork) so workers start from a clean interpreter on
        # every platform; each one re-imports the scenario registry.
        with self._context.Pool(processes=min(self.workers, len(jobs))) as pool:
            yield from pool.imap_unordered(execute_job, jobs)

    def execute_one(self, job: RunJob) -> RunOutcome:
        with self._lock:
            if self._pool is None:
                self._pool = self._context.Pool(processes=self.workers)
            pool = self._pool
        return pool.apply(execute_job, (job,))

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()
            pool.join()

    def terminate(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()


@dataclass(frozen=True)
class TaskBatch:
    """Compact dispatch message: runs sharing one warm worker, in order.

    Only :class:`RunJob` tuples cross the process boundary (PKL003);
    outcomes come back as individual :class:`RunOutcome` messages so the
    parent folds progress per run, not per batch.
    """

    jobs: tuple[RunJob, ...]


def persistent_worker_main(task_queue, result_queue) -> None:
    """One long-lived worker process: pull batches, execute, report.

    Runs until the ``None`` sentinel arrives.  The worker's
    :class:`~repro.campaigns.executor.WarmRunContext` lives for the whole
    process, so every batch (and every campaign dispatched to a long-lived
    backend) benefits from previously warmed ingredients.
    """
    _WORKER_STATE.clear()
    warm = WarmRunContext()
    while True:
        batch = task_queue.get()
        if batch is None:
            return
        for job in batch.jobs:
            # execute_job captures run failures as outcome.error, so one
            # pathological run cannot take the worker down with it.
            result_queue.put(execute_job(job, warm=warm))


class PersistentBackend:
    """Long-lived worker processes shared across campaigns.

    ``N`` spawn processes are started once (lazily, on the first
    :meth:`run`) and fed :class:`TaskBatch` messages over per-worker task
    queues; a shared result queue carries outcomes back.  Batches are
    grouped by :attr:`~repro.campaigns.spec.RunSpec.warm_key` with sticky
    affinity — a key dispatched twice lands on the same worker, so its
    warm cache keeps paying across campaigns — and balanced by outstanding
    load otherwise.

    A daemon collector thread routes each outcome to the queue of the
    :meth:`run` call that dispatched it, which makes dispatch thread-safe
    (the service supervisor calls :meth:`execute_one` from several slots
    concurrently).  The collector also watches for worker death: a worker
    that disappears mid-task has its pending runs reported as failed
    outcomes (never silently dropped — the campaign completes and a
    re-execute resumes exactly the lost runs) and its slot respawned.

    Use as a context manager, or call :meth:`close` when done; an
    executor-owned instance is closed by ``CampaignExecutor.execute``.
    """

    name = "persistent"

    def __init__(self, workers: int = 2, *, batch_size: int | None = None) -> None:
        self.workers = max(int(workers), 1)
        #: Maximum runs per dispatch message (``None``: one batch per
        #: warm-key group).  Smaller batches interleave progress better;
        #: larger ones amortise queue overhead.
        self.batch_size = batch_size
        self._context = multiprocessing.get_context("spawn")
        self._lock = threading.Lock()
        self._procs: list = [None] * self.workers
        self._task_queues: list = [None] * self.workers
        self._result_queue = None
        self._collector: threading.Thread | None = None
        self._started = False
        self._closed = False
        #: run_id -> (worker slot, the dispatching caller's outcome queue).
        self._pending: dict[str, tuple[int, "queue.Queue[RunOutcome]"]] = {}
        self._outstanding: list[int] = [0] * self.workers
        #: warm_key -> worker slot (sticky affinity across run() calls).
        self._affinity: "OrderedDict[tuple, int]" = OrderedDict()

    # -------------------------------------------------------------- #
    # Lifecycle
    # -------------------------------------------------------------- #
    def start(self) -> "PersistentBackend":
        """Spawn the workers and the collector (idempotent)."""
        with self._lock:
            if self._started:
                return self
            if self._closed:
                raise RuntimeError("persistent backend already closed")
            self._result_queue = self._context.Queue()
            for slot in range(self.workers):
                self._spawn_locked(slot)
            self._collector = threading.Thread(
                target=self._collect, name="persistent-collector", daemon=True
            )
            self._started = True
        self._collector.start()
        return self

    def _spawn_locked(self, slot: int) -> None:
        task_queue = self._context.Queue()
        proc = self._context.Process(
            target=persistent_worker_main,
            args=(task_queue, self._result_queue),
            name=f"persistent-{slot}",
            daemon=True,
        )
        proc.start()
        self._task_queues[slot] = task_queue
        self._procs[slot] = proc

    def __enter__(self) -> "PersistentBackend":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Graceful shutdown: workers finish their queues, then exit."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            started = self._started
            if started:
                for task_queue in self._task_queues:
                    task_queue.put(None)
        if not started:
            return
        self._shutdown(graceful=True)

    def terminate(self) -> None:
        """Forceful shutdown: kill workers; pending runs fail (resumable)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            started = self._started
        if not started:
            return
        for proc in self._procs:
            if proc is not None and proc.is_alive():
                proc.terminate()
        self._shutdown(graceful=False)

    def _shutdown(self, *, graceful: bool) -> None:
        for proc in self._procs:
            if proc is not None:
                proc.join(timeout=30.0 if graceful else 5.0)
        for proc in self._procs:
            if proc is not None and proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5.0)
        # The workers have exited, so their queued outcomes are all in the
        # pipe ahead of this sentinel: the collector drains them, then stops.
        self._result_queue.put(None)
        if self._collector is not None:
            self._collector.join(timeout=10.0)
        reason = (
            "persistent backend closed before the run completed"
            if graceful
            else "persistent backend terminated"
        )
        self._fail_pending(reason)

    def _fail_pending(self, reason: str) -> None:
        with self._lock:
            victims = list(self._pending.items())
            self._pending.clear()
            self._outstanding = [0] * self.workers
        for run_id, (_slot, sink) in victims:
            sink.put(RunOutcome(run_id=run_id, elapsed_seconds=0.0, error=reason))

    # -------------------------------------------------------------- #
    # Dispatch
    # -------------------------------------------------------------- #
    def run(self, jobs: Sequence[RunJob], *, extra_probes: tuple = ()) -> Iterator[RunOutcome]:
        if extra_probes:
            raise ValueError(
                "extra_probes cannot cross the process boundary; use the serial backend"
            )
        jobs = list(jobs)
        if not jobs:
            return
        self.start()
        sink: "queue.Queue[RunOutcome]" = queue.Queue()
        with self._lock:
            if self._closed:
                raise RuntimeError("persistent backend is closed")
            duplicates = [job.run.run_id for job in jobs if job.run.run_id in self._pending]
            if duplicates:
                raise ValueError(f"run(s) already in flight: {', '.join(sorted(duplicates))}")
            for slot, slot_jobs in self._assign_locked(jobs).items():
                proc = self._procs[slot]
                if proc is None or not proc.is_alive():
                    # An idle worker died quietly: replace it before dispatch.
                    self._spawn_locked(slot)
                for job in slot_jobs:
                    self._pending[job.run.run_id] = (slot, sink)
                self._outstanding[slot] += len(slot_jobs)
                for chunk in _chunks(slot_jobs, self.batch_size or len(slot_jobs)):
                    self._task_queues[slot].put(TaskBatch(jobs=tuple(chunk)))
        for _ in range(len(jobs)):
            yield sink.get()

    def execute_one(self, job: RunJob) -> RunOutcome:
        for outcome in self.run([job]):
            return outcome
        raise RuntimeError("backend produced no outcome")  # pragma: no cover

    def _assign_locked(self, jobs: Iterable[RunJob]) -> dict[int, list[RunJob]]:
        """Group jobs by warm key; assign groups to workers.

        Sticky affinity first (a previously-seen key returns to its
        worker), then greedy least-loaded placement, largest groups first —
        deterministic given the same jobs and dispatch history.
        """
        groups: dict[tuple, list[RunJob]] = {}
        for job in jobs:
            groups.setdefault(job.run.warm_key, []).append(job)
        planned = [0] * self.workers
        assignments: dict[int, list[RunJob]] = {}
        ordered = sorted(groups.items(), key=lambda item: (-len(item[1]), repr(item[0])))
        for key, group in ordered:
            slot = self._affinity.get(key)
            if slot is None:
                load = [self._outstanding[s] + planned[s] for s in range(self.workers)]
                slot = load.index(min(load))
            else:
                self._affinity.move_to_end(key)
            self._affinity[key] = slot
            while len(self._affinity) > _AFFINITY_CAPACITY:
                self._affinity.popitem(last=False)
            planned[slot] += len(group)
            assignments.setdefault(slot, []).extend(group)
        return assignments

    # -------------------------------------------------------------- #
    # Collection
    # -------------------------------------------------------------- #
    def _collect(self) -> None:
        """Route outcomes to their dispatching callers; watch for deaths."""
        while True:
            try:
                outcome = self._result_queue.get(timeout=0.2)
            except queue.Empty:
                self._reap_dead_workers()
                continue
            except (EOFError, OSError):  # pragma: no cover - queue torn down
                return
            if outcome is None:
                return
            self._deliver(outcome)

    def _deliver(self, outcome: RunOutcome) -> None:
        with self._lock:
            entry = self._pending.pop(outcome.run_id, None)
            if entry is None:
                return  # already synthesized as a worker-death failure
            slot, sink = entry
            self._outstanding[slot] -= 1
        sink.put(outcome)

    def _reap_dead_workers(self) -> None:
        """Fail (and respawn) workers that died with tasks outstanding.

        The dead worker's queued-but-unstarted batches are *not* re-run on
        another worker — re-dispatching could race a half-finished store
        write from the moment of death.  Its pending runs fail loudly
        instead; interrupted runs never wrote a manifest, so re-executing
        the campaign resumes exactly the lost runs.
        """
        victims: list[tuple[str, "queue.Queue[RunOutcome]", int, int | None]] = []
        with self._lock:
            if self._closed:
                return
            for slot, proc in enumerate(self._procs):
                if proc is None or proc.is_alive() or self._outstanding[slot] == 0:
                    continue
                exitcode = proc.exitcode
                lost = [run_id for run_id, (s, _) in self._pending.items() if s == slot]
                for run_id in lost:
                    victims.append((run_id, self._pending.pop(run_id)[1], slot, exitcode))
                self._outstanding[slot] = 0
                self._spawn_locked(slot)
        for run_id, sink, slot, exitcode in victims:
            sink.put(
                RunOutcome(
                    run_id=run_id,
                    elapsed_seconds=0.0,
                    error=(
                        f"persistent worker {slot} exited (code {exitcode}) before "
                        "completing the run; re-execute the campaign to resume it"
                    ),
                )
            )


def _chunks(items: list, size: int) -> Iterator[list]:
    size = max(int(size), 1)
    for index in range(0, len(items), size):
        yield items[index : index + size]


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #
BackendFactory = Callable[[WorkerConfig], ExecutionBackend]

_BACKEND_FACTORIES: dict[str, BackendFactory] = {}


def register_backend(name: str, factory: BackendFactory) -> None:
    """Register (or replace) a named backend factory.

    ``factory`` receives the resolved :class:`WorkerConfig` and returns an
    :class:`ExecutionBackend`.  Registered names become valid for
    ``CampaignExecutor(backend=...)`` and ``WorkerConfig(backend=...)``.
    """
    _BACKEND_FACTORIES[name] = factory


def backend_names() -> tuple[str, ...]:
    """The registered backend names, sorted."""
    return tuple(sorted(_BACKEND_FACTORIES))


def create_backend(config: WorkerConfig) -> ExecutionBackend:
    """Instantiate the backend a :class:`WorkerConfig` names."""
    factory = _BACKEND_FACTORIES.get(config.backend)
    if factory is None:
        raise KeyError(
            f"unknown execution backend {config.backend!r}; "
            f"registered: {', '.join(backend_names())}"
        )
    return factory(config)


def _make_serial(config: WorkerConfig) -> ExecutionBackend:
    return SerialBackend()


def _make_spawn(config: WorkerConfig) -> ExecutionBackend:
    return SpawnBackend(config.workers)


def _make_persistent(config: WorkerConfig) -> ExecutionBackend:
    return PersistentBackend(config.workers)


register_backend("serial", _make_serial)
register_backend("spawn", _make_spawn)
register_backend("persistent", _make_persistent)

#: The built-in backend names (CLI choices).
BACKEND_NAMES: tuple[str, ...] = ("serial", "spawn", "persistent")
