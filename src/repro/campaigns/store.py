"""The on-disk campaign run store.

Layout (all plain JSON, diff-able and tool-friendly)::

    <root>/
      <campaign>/
        <run_id>/
          manifest.json        # run identity, config summary, status
          table1.json          # one file per experiment: the JSON contract
          fig4.json
          ...

The manifest is written *last*, after every experiment file, so a manifest
with ``"status": "completed"`` is the durable completion marker: a run that
crashed mid-write leaves no completed manifest and is simply re-executed on
resume.  :meth:`RunStore.is_complete` additionally checks the manifest's
``run_key`` (a content hash of ``(scenario, overrides, seed)``) and the
presence of every requested experiment file, so editing the spec — or asking
for more experiments — invalidates exactly the runs it affects.

Files are serialised with ``sort_keys=True`` and a fixed indent, so the same
run always produces byte-identical files regardless of which worker (or how
many workers) produced it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

from .spec import RunSpec

__all__ = ["RunStore"]

#: Default store root, relative to the working directory.
DEFAULT_ROOT = "runs"

MANIFEST = "manifest.json"


def _dump(payload: Any) -> str:
    # allow_nan=False: non-finite floats must have been normalised to their
    # string spellings by to_jsonable already; a bare NaN here would emit a
    # token that is not JSON (and that non-Python consumers reject), so fail
    # at the write boundary instead of poisoning the archive.
    return json.dumps(payload, sort_keys=True, indent=2, allow_nan=False) + "\n"


class RunStore:
    """Filesystem-backed store of campaign runs."""

    def __init__(self, root: str | Path = DEFAULT_ROOT) -> None:
        self.root = Path(root)

    # -------------------------------------------------------------- #
    # Paths
    # -------------------------------------------------------------- #
    def campaign_dir(self, campaign: str) -> Path:
        return self.root / campaign

    def run_dir(self, campaign: str, run_id: str) -> Path:
        return self.campaign_dir(campaign) / run_id

    def experiment_path(self, campaign: str, run_id: str, experiment_id: str) -> Path:
        return self.run_dir(campaign, run_id) / f"{experiment_id}.json"

    # -------------------------------------------------------------- #
    # Listing / loading
    # -------------------------------------------------------------- #
    def campaigns(self) -> list[str]:
        """Campaign names present in the store, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(
            entry.name for entry in self.root.iterdir() if entry.is_dir()
        )

    def run_ids(self, campaign: str) -> list[str]:
        """Run ids of a campaign that have a manifest, sorted."""
        directory = self.campaign_dir(campaign)
        if not directory.is_dir():
            return []
        return sorted(
            entry.name
            for entry in directory.iterdir()
            if entry.is_dir() and (entry / MANIFEST).is_file()
        )

    def read_manifest(self, campaign: str, run_id: str) -> dict | None:
        """The run's manifest, or ``None`` if absent/corrupt."""
        path = self.run_dir(campaign, run_id) / MANIFEST
        try:
            with path.open(encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None

    def read_experiment(self, campaign: str, run_id: str, experiment_id: str) -> dict:
        """One experiment payload of one run."""
        with self.experiment_path(campaign, run_id, experiment_id).open(encoding="utf-8") as handle:
            return json.load(handle)

    # -------------------------------------------------------------- #
    # Resume contract
    # -------------------------------------------------------------- #
    def is_complete(self, campaign: str, run: RunSpec, experiment_ids: Iterable[str]) -> bool:
        """Whether ``run`` already completed with every requested experiment."""
        manifest = self.read_manifest(campaign, run.run_id)
        if not manifest or manifest.get("status") != "completed":
            return False
        if manifest.get("run_key") != run.key:
            return False
        return all(
            self.experiment_path(campaign, run.run_id, experiment_id).is_file()
            for experiment_id in experiment_ids
        )

    # -------------------------------------------------------------- #
    # Writing
    # -------------------------------------------------------------- #
    def write_experiments(self, campaign: str, run: RunSpec, outputs: dict[str, dict]) -> Path:
        """Write the per-experiment files, clearing any previous run image.

        The manifest is removed before anything else, so a crash mid-write
        can never leave stale experiment files behind a ``"completed"``
        marker.  Call :meth:`write_manifest` afterwards to seal the run.
        """
        directory = self.run_dir(campaign, run.run_id)
        directory.mkdir(parents=True, exist_ok=True)
        (directory / MANIFEST).unlink(missing_ok=True)
        for stale in directory.glob("*.json"):
            stale.unlink()
        for experiment_id, payload in outputs.items():
            path = self.experiment_path(campaign, run.run_id, experiment_id)
            path.write_text(_dump(payload), encoding="utf-8")
        return directory

    def write_manifest(
        self,
        campaign: str,
        run: RunSpec,
        outputs: dict[str, dict],
        *,
        config_summary: dict | None = None,
        elapsed_seconds: float | None = None,
        metrics: dict | None = None,
        telemetry: dict | None = None,
        execution: dict | None = None,
    ) -> Path:
        """Write the completion manifest (the durable completion marker)."""
        directory = self.run_dir(campaign, run.run_id)
        manifest = {
            "status": "completed",
            "campaign": campaign,
            "run_id": run.run_id,
            "run_key": run.key,
            "scenario": run.scenario,
            "variant": run.variant,
            "overrides": dict(run.overrides),
            "seed": run.seed,
            "seed_index": run.seed_index,
            "experiments": sorted(outputs),
            "config": config_summary or {},
        }
        if elapsed_seconds is not None:
            manifest["elapsed_seconds"] = round(elapsed_seconds, 3)
        if metrics is not None:
            # Streamed per-run aggregates (the MetricsAccumulator contract).
            manifest["metrics"] = metrics
        if telemetry is not None:
            # The worker's per-run telemetry digest: per-phase span timings,
            # persist/pickle cost, valuation-cache hit rate, idle time.
            manifest["telemetry"] = telemetry
        if execution is not None:
            # Which WorkerConfig (backend name + worker count) produced the
            # run — round-trips via WorkerConfig.from_payload on resume.
            manifest["execution"] = execution
        (directory / MANIFEST).write_text(_dump(manifest), encoding="utf-8")
        return directory

    def write_run(
        self,
        campaign: str,
        run: RunSpec,
        outputs: dict[str, dict],
        *,
        config_summary: dict | None = None,
        elapsed_seconds: float | None = None,
        metrics: dict | None = None,
        telemetry: dict | None = None,
        execution: dict | None = None,
    ) -> Path:
        """Persist one completed run: experiment files first, manifest last.

        Any previous contents of the run directory are cleared first, keeping
        the directory an exact image of the run that produced it.
        """
        self.write_experiments(campaign, run, outputs)
        return self.write_manifest(
            campaign,
            run,
            outputs,
            config_summary=config_summary,
            elapsed_seconds=elapsed_seconds,
            metrics=metrics,
            telemetry=telemetry,
            execution=execution,
        )
