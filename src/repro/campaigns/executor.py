"""Campaign execution: a scenario-loop driver with a process-pool fan-out.

:class:`CampaignExecutor` expands a :class:`~repro.campaigns.spec.CampaignSpec`
into runs, skips the ones the store already holds (resume), and executes the
rest — serially, or over a ``multiprocessing`` spawn pool when ``workers > 1``.

Only :class:`RunJob` (plain strings/ints/tuples) crosses the process
boundary; each worker rebuilds its world from ``(scenario, overrides, seed)``
via the scenario registry, runs it, and writes the experiment JSON straight
into the store.  Because every run is independently seeded and the store
serialises deterministically, serial and parallel execution produce
byte-identical per-run files.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Callable

from ..chain.types import reset_id_counters
from ..experiments.runner import run_json
from ..observers.probes import LiquidationRecorder, MetricsAccumulator
from ..serialize import to_jsonable
from .spec import CampaignSpec, RunSpec
from .store import RunStore

__all__ = ["CampaignExecutor", "CampaignResult", "RunJob", "execute_job"]

#: Progress callback: ``(done, total, run_id, status, elapsed_seconds)``.
ProgressCallback = Callable[[int, int, str, str, float], None]


def _status_of(outcome: RunOutcome) -> str:
    return "executed" if outcome.error is None else "failed"


@dataclass(frozen=True)
class RunJob:
    """The picklable unit of work handed to a worker process."""

    store_root: str
    campaign: str
    run: RunSpec
    experiments: tuple[str, ...]


@dataclass(frozen=True)
class RunOutcome:
    """What one worker reports back: identity, wall-clock time, any failure."""

    run_id: str
    elapsed_seconds: float
    error: str | None = None


@dataclass
class CampaignResult:
    """Summary of one :meth:`CampaignExecutor.execute` call."""

    campaign: str
    store_root: str
    executed: list[str] = field(default_factory=list)
    resumed: list[str] = field(default_factory=list)
    failed: dict[str, str] = field(default_factory=dict)  # run_id -> error
    elapsed_seconds: float = 0.0

    @property
    def total(self) -> int:
        return len(self.executed) + len(self.resumed) + len(self.failed)


def execute_job(job: RunJob) -> RunOutcome:
    """Execute one run end-to-end and persist it (runs inside workers).

    Failures are captured and reported back as the outcome's ``error``
    instead of raised, so one pathological run cannot abort a campaign (the
    other workers' completed runs are already durable in the store).
    """
    started = time.perf_counter()
    # Address/tx-hash identifiers come from process-wide counters; reset them
    # so a run's identifier sequence is independent of how many runs the
    # process executed before it — serial and pooled execution then produce
    # byte-identical files.  Each run builds a fresh world, so uniqueness
    # within the run is unaffected.
    reset_id_counters()
    try:
        builder = job.run.builder()
        # Stream the liquidation records and the per-step aggregates while
        # the world advances instead of re-crawling the finished chain:
        # run_json reads result.records straight off the recorder probe and
        # the manifest persists the accumulator's metrics.
        builder.with_probes(
            lambda engine: LiquidationRecorder(),
            lambda engine: MetricsAccumulator(),
        )
        result = builder.run()
        outputs = run_json(result, job.experiments)
        elapsed = time.perf_counter() - started
        RunStore(job.store_root).write_run(
            job.campaign,
            job.run,
            outputs,
            config_summary=builder.config.describe(),
            elapsed_seconds=elapsed,
            metrics=to_jsonable(result.metrics),
        )
    except Exception as exc:  # noqa: BLE001 - reported, not swallowed
        return RunOutcome(
            run_id=job.run.run_id,
            elapsed_seconds=time.perf_counter() - started,
            error=f"{type(exc).__name__}: {exc}",
        )
    return RunOutcome(run_id=job.run.run_id, elapsed_seconds=elapsed)


class CampaignExecutor:
    """Fan a campaign's runs out over a worker pool, resuming from the store."""

    def __init__(
        self,
        spec: CampaignSpec,
        store: RunStore | None = None,
        *,
        workers: int = 1,
        progress: ProgressCallback | None = None,
    ) -> None:
        self.spec = spec
        self.store = store or RunStore()
        self.workers = max(int(workers), 1)
        self.progress = progress

    def _report(self, done: int, total: int, run_id: str, status: str, elapsed: float) -> None:
        if self.progress is not None:
            self.progress(done, total, run_id, status, elapsed)

    @staticmethod
    def _record(result: CampaignResult, outcome: RunOutcome) -> None:
        if outcome.error is None:
            result.executed.append(outcome.run_id)
        else:
            result.failed[outcome.run_id] = outcome.error

    def execute(self) -> CampaignResult:
        """Run (or resume) the campaign; returns the execution summary."""
        started = time.perf_counter()
        campaign = self.spec.campaign
        runs = self.spec.runs()
        result = CampaignResult(campaign=campaign, store_root=str(self.store.root))

        pending: list[RunSpec] = []
        for run in runs:
            if self.store.is_complete(campaign, run, self.spec.experiments):
                result.resumed.append(run.run_id)
            else:
                pending.append(run)
        total = len(runs)
        done = len(result.resumed)
        for run_id in result.resumed:
            self._report(done, total, run_id, "resumed", 0.0)

        jobs = [
            RunJob(
                store_root=str(self.store.root),
                campaign=campaign,
                run=run,
                experiments=self.spec.experiments,
            )
            for run in pending
        ]
        if self.workers > 1 and len(jobs) > 1:
            # Spawn (not fork) so workers start from a clean interpreter on
            # every platform; each one re-imports the scenario registry.
            context = multiprocessing.get_context("spawn")
            with context.Pool(processes=min(self.workers, len(jobs))) as pool:
                for outcome in pool.imap_unordered(execute_job, jobs):
                    done += 1
                    self._record(result, outcome)
                    self._report(done, total, outcome.run_id, _status_of(outcome), outcome.elapsed_seconds)
        else:
            for job in jobs:
                outcome = execute_job(job)
                done += 1
                self._record(result, outcome)
                self._report(done, total, outcome.run_id, _status_of(outcome), outcome.elapsed_seconds)

        result.executed.sort()
        result.resumed.sort()
        result.elapsed_seconds = time.perf_counter() - started
        return result
