"""Campaign execution: job expansion, per-run execution, backend dispatch.

:class:`CampaignExecutor` expands a :class:`~repro.campaigns.spec.CampaignSpec`
into runs, skips the ones the store already holds (resume), and hands the
rest to an :class:`~repro.campaigns.backends.ExecutionBackend` — serial,
a per-campaign spawn pool, or the persistent worker runtime (see
:mod:`repro.campaigns.backends`).

Only :class:`RunJob` (plain strings/ints/tuples) crosses the process
boundary; each worker rebuilds its world from ``(scenario, overrides, seed)``
via the scenario registry, runs it, and writes the experiment JSON straight
into the store.  Because every run is independently seeded and the store
serialises deterministically, serial and parallel execution produce
byte-identical per-run files.  Persistent workers additionally keep a
:class:`WarmRunContext` — a cache of immutable, seed-determined ingredients
(the price feed) reused across the grid points assigned to them — without
touching that contract: everything mutable is rebuilt per run and
``reset_run_state()`` still rewinds the global counters.
"""

from __future__ import annotations

import multiprocessing
import pickle
import warnings
from collections import OrderedDict
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from ..experiments.runner import run_json
from ..observers.probes import LiquidationRecorder, MetricsAccumulator
from ..runtime_state import reset_run_state
from ..scenarios.builder import ScenarioBuilder, default_price_feed
from ..serialize import to_jsonable
from ..telemetry import runtime as telemetry_runtime
from ..telemetry.clock import perf_seconds
from ..telemetry.runtime import Telemetry, span
from .spec import CampaignSpec, RunSpec
from .store import RunStore

if TYPE_CHECKING:
    from ..oracle.feed import PriceFeed
    from .backends import ExecutionBackend, WorkerConfig

__all__ = [
    "CampaignExecutor",
    "CampaignResult",
    "RunJob",
    "WarmRunContext",
    "execute_job",
]

#: Progress callback: ``(done, total, run_id, status, elapsed_seconds)``.
ProgressCallback = Callable[[int, int, str, str, float], None]


def _status_of(outcome: RunOutcome) -> str:
    return "executed" if outcome.error is None else "failed"


@dataclass(frozen=True)
class RunJob:
    """The picklable unit of work handed to a worker process."""

    store_root: str
    campaign: str
    run: RunSpec
    experiments: tuple[str, ...]
    collect_telemetry: bool = True
    #: The worker configuration that dispatched this job, recorded into the
    #: run manifest (``"execution"``) so a resumed sweep can tell which
    #: backend produced each run.  ``None`` (direct ``execute_job`` calls,
    #: the service's streaming path) writes no execution block.
    worker_config: "WorkerConfig | None" = None


@dataclass(frozen=True)
class RunOutcome:
    """What one worker reports back: identity, wall-clock time, any failure."""

    run_id: str
    elapsed_seconds: float
    error: str | None = None
    #: The per-run telemetry digest (also persisted into the manifest), or
    #: ``None`` when telemetry collection was off or the run failed early.
    telemetry: dict | None = None

    @property
    def worker(self) -> str | None:
        return (self.telemetry or {}).get("worker")


@dataclass
class CampaignResult:
    """Summary of one :meth:`CampaignExecutor.execute` call."""

    campaign: str
    store_root: str
    executed: list[str] = field(default_factory=list)
    resumed: list[str] = field(default_factory=list)
    failed: dict[str, str] = field(default_factory=dict)  # run_id -> error
    elapsed_seconds: float = 0.0
    #: Name of the execution backend that ran the campaign.
    backend: str = "serial"
    #: Per-worker utilisation aggregated from run telemetry:
    #: ``worker -> {"tasks", "busy_seconds", "idle_seconds"}``.
    workers: dict[str, dict] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return len(self.executed) + len(self.resumed) + len(self.failed)


#: Per-process worker state, keyed once per interpreter.  Pool and
#: persistent workers are long-lived across tasks, so ``last_end`` carries
#: from one task to the next and the gap is genuine idle time (waiting on
#: the parent's dispatch).
_WORKER_STATE: dict[str, float | int] = {}


def _worker_begin() -> tuple[str, int, float]:
    """Mark task start; returns ``(worker_name, task_index, idle_seconds)``."""
    now = perf_seconds()
    if not _WORKER_STATE:
        _WORKER_STATE["last_end"] = now
        _WORKER_STATE["tasks"] = 0
    idle = now - float(_WORKER_STATE["last_end"])
    _WORKER_STATE["tasks"] = int(_WORKER_STATE["tasks"]) + 1
    return multiprocessing.current_process().name, int(_WORKER_STATE["tasks"]), idle


def _worker_end() -> None:
    _WORKER_STATE["last_end"] = perf_seconds()


def _valuation_cache_stats(snapshot: dict[str, float]) -> dict:
    """Warm-cache hit rate from the ``repro_valuation_cache_total`` series."""
    hits = builds = 0.0
    for series, value in snapshot.items():
        if not series.startswith("repro_valuation_cache_total{"):
            continue
        if 'outcome="hit"' in series:
            hits += value
        elif 'outcome="build"' in series:
            builds += value
    total = hits + builds
    return {
        "hits": int(hits),
        "builds": int(builds),
        "hit_rate": round(hits / total, 4) if total else None,
    }


class WarmRunContext:
    """A worker's cache of deterministic run ingredients reused across tasks.

    Persistent workers receive *batches* of runs grouped by
    :attr:`~repro.campaigns.spec.RunSpec.warm_key` — same scenario, same
    feed-relevant overrides, same seed — so the scenario template they warm
    up for the first run of a group is valid for the rest.  Only immutable,
    seed-determined values are cached: today that is the
    :class:`~repro.oracle.feed.PriceFeed` (never mutated after
    construction, built purely from ``(scenario, overrides, seed)`` without
    consuming the builder RNG).  Everything mutable — chain, protocols,
    agents, probes — is rebuilt per run, and ``reset_run_state()`` still
    rewinds the global counters, so warm execution stays byte-identical
    with cold execution.

    Scenarios installing a *custom* feed factory are never cached: a custom
    factory may read the build context (including ``ctx.rng``), so skipping
    it could change the world.
    """

    def __init__(self, capacity: int = 8) -> None:
        self.capacity = max(int(capacity), 1)
        self.feed_hits = 0
        self.feed_builds = 0
        self._feeds: "OrderedDict[tuple, PriceFeed]" = OrderedDict()

    def builder_for(self, run: RunSpec) -> ScenarioBuilder:
        """A fresh builder for ``run``, with cached ingredients injected."""
        builder = run.builder()
        if builder.feed_factory is not default_price_feed:
            return builder
        key = run.warm_key
        feed = self._feeds.get(key)
        if feed is None:
            feed = builder.build_feed()
            self.feed_builds += 1
            self._feeds[key] = feed
            while len(self._feeds) > self.capacity:
                self._feeds.popitem(last=False)
        else:
            self.feed_hits += 1
            self._feeds.move_to_end(key)
        builder.with_price_feed(feed)
        return builder

    def stats(self) -> dict:
        """Cache effectiveness counters (persisted into telemetry digests)."""
        return {
            "feed_hits": self.feed_hits,
            "feed_builds": self.feed_builds,
            "feeds_cached": len(self._feeds),
        }


def execute_job(
    job: RunJob,
    extra_probes: tuple = (),
    warm: WarmRunContext | None = None,
) -> RunOutcome:
    """Execute one run end-to-end and persist it (runs inside workers).

    Failures are captured and reported back as the outcome's ``error``
    instead of raised, so one pathological run cannot abort a campaign (the
    other workers' completed runs are already durable in the store).

    ``extra_probes`` are additional ``engine -> probe`` factories attached
    after the standard recorder/metrics pair — the service worker streams
    its event sink and health sampler through here.  They never cross a
    process boundary (parallel backends refuse them), so the
    :class:`RunJob` payload stays plainly picklable.

    ``warm`` is the executing worker's :class:`WarmRunContext`; when given,
    cached immutable ingredients (the price feed) are injected into the
    run's builder instead of being rebuilt.

    When ``job.collect_telemetry`` is set, the worker installs a
    :class:`~repro.telemetry.runtime.Telemetry` for the duration of the run
    and persists a digest into the manifest: per-phase span timings
    (build / run / reports / persist), result-pickle cost, valuation-cache
    hit rate, and how long this worker sat idle before picking the task up.
    Telemetry never touches the simulated world, so the experiment files
    remain byte-identical with telemetry on or off.
    """
    worker_name, task_index, idle_seconds = _worker_begin()
    started = perf_seconds()
    # Module-global mutable state (address/tx-hash counters and anything
    # else in the runtime_state registry) is rewound so a run's identifier
    # sequences are independent of how many runs the process executed before
    # it — serial and pooled execution then produce byte-identical files.
    reset_run_state()
    telemetry = Telemetry(name=job.run.run_id) if job.collect_telemetry else None
    scope = telemetry_runtime.enabled(telemetry) if telemetry else nullcontext()
    try:
        with scope:
            builder = warm.builder_for(job.run) if warm is not None else job.run.builder()
            # Stream the liquidation records and the per-step aggregates while
            # the world advances instead of re-crawling the finished chain:
            # run_json reads result.records straight off the recorder probe and
            # the manifest persists the accumulator's metrics.
            builder.with_probes(
                lambda engine: LiquidationRecorder(),
                lambda engine: MetricsAccumulator(),
                *extra_probes,
            )
            with span("job.build"):
                engine = builder.build()
            with span("job.run"):
                result = engine.run()
            with span("job.reports"):
                outputs = run_json(result, job.experiments)
            store = RunStore(job.store_root)
            with span("job.persist"):
                store.write_experiments(job.campaign, job.run, outputs)
            with span("job.pickle"):
                # What imap_unordered would pay to ship the run's outputs
                # across the process boundary (the 0.73× suspect).
                pickle_bytes = len(pickle.dumps(outputs, protocol=pickle.HIGHEST_PROTOCOL))
        elapsed = perf_seconds() - started
        digest = _telemetry_digest(
            telemetry,
            worker=worker_name,
            task_index=task_index,
            idle_seconds=idle_seconds,
            elapsed_seconds=elapsed,
            pickle_bytes=pickle_bytes,
            warm=warm,
        )
        store.write_manifest(
            job.campaign,
            job.run,
            outputs,
            config_summary=builder.config.describe(),
            elapsed_seconds=elapsed,
            metrics=to_jsonable(result.metrics),
            telemetry=digest,
            execution=job.worker_config.describe() if job.worker_config is not None else None,
        )
    except Exception as exc:  # noqa: BLE001 - reported, not swallowed
        return RunOutcome(
            run_id=job.run.run_id,
            elapsed_seconds=perf_seconds() - started,
            error=f"{type(exc).__name__}: {exc}",
        )
    finally:
        _worker_end()
    return RunOutcome(run_id=job.run.run_id, elapsed_seconds=elapsed, telemetry=digest)


def _telemetry_digest(
    telemetry: Telemetry | None,
    *,
    worker: str,
    task_index: int,
    idle_seconds: float,
    elapsed_seconds: float,
    pickle_bytes: int,
    warm: WarmRunContext | None = None,
) -> dict | None:
    """Flatten a run's telemetry into the JSON block the manifest stores."""
    if telemetry is None:
        return None
    summary = telemetry.summary()
    spans = summary["spans"]

    def seconds(name: str) -> float:
        return round(spans.get(name, {}).get("total_seconds", 0.0), 4)

    digest = {
        "worker": worker,
        "task_index": task_index,
        "idle_seconds": round(idle_seconds, 4),
        "elapsed_seconds": round(elapsed_seconds, 4),
        "build_seconds": seconds("job.build"),
        "run_seconds": seconds("job.run"),
        "reports_seconds": seconds("job.reports"),
        "persist_seconds": seconds("job.persist"),
        "pickle_seconds": seconds("job.pickle"),
        "pickle_bytes": pickle_bytes,
        "valuation_cache": _valuation_cache_stats(summary["metrics"]),
        "spans": {
            name: {
                "count": stats["count"],
                "total_seconds": round(stats["total_seconds"], 4),
                "self_seconds": round(stats["self_seconds"], 4),
            }
            for name, stats in spans.items()
        },
    }
    if warm is not None:
        # Warm-ingredient reuse across the tasks this worker executed so far.
        digest["warm_feed"] = warm.stats()
    return digest


class CampaignExecutor:
    """Fan a campaign's runs out over an execution backend, resuming from the store."""

    def __init__(
        self,
        spec: CampaignSpec,
        store: RunStore | None = None,
        *,
        backend: "ExecutionBackend | WorkerConfig | str | None" = None,
        workers: int | None = None,
        progress: ProgressCallback | None = None,
        telemetry: bool = True,
    ) -> None:
        """``backend`` selects how runs execute (see :mod:`.backends`):

        * ``None`` — serial (the default);
        * a backend name (``"serial"`` / ``"spawn"`` / ``"persistent"``) —
          resolved with a host-derived worker count;
        * a :class:`~repro.campaigns.backends.WorkerConfig` — fully explicit;
        * a live :class:`~repro.campaigns.backends.ExecutionBackend`
          instance — caller-owned: the executor uses it but never closes
          it, so one persistent runtime can span many campaigns.

        ``workers=N`` is the deprecated pre-backend spelling; it maps to the
        spawn pool it used to mean (``N > 1``) or serial (``N <= 1``).
        """
        from .backends import WorkerConfig

        self.spec = spec
        self.store = store or RunStore()
        if workers is not None:
            warnings.warn(
                "CampaignExecutor(workers=N) is deprecated; pass backend=WorkerConfig(...) "
                "or a backend name ('serial'/'spawn'/'persistent') instead",
                DeprecationWarning,
                stacklevel=2,
            )
            if backend is None:
                backend = WorkerConfig.from_workers(workers)
        self._backend_instance: "ExecutionBackend | None" = None
        if backend is None:
            self.backend_config = WorkerConfig()
        elif isinstance(backend, WorkerConfig):
            self.backend_config = backend
        elif isinstance(backend, str):
            self.backend_config = WorkerConfig.resolve(backend=backend)
        else:
            self._backend_instance = backend
            self.backend_config = WorkerConfig(backend=backend.name, workers=backend.workers)
        self.progress = progress
        self.telemetry = telemetry

    @property
    def workers(self) -> int:
        """The configured worker count (compat view of the backend config)."""
        return self.backend_config.workers

    def _report(self, done: int, total: int, run_id: str, status: str, elapsed: float) -> None:
        if self.progress is not None:
            self.progress(done, total, run_id, status, elapsed)

    @staticmethod
    def _record(result: CampaignResult, outcome: RunOutcome) -> None:
        if outcome.error is None:
            result.executed.append(outcome.run_id)
        else:
            result.failed[outcome.run_id] = outcome.error
        digest = outcome.telemetry
        if digest is not None:
            # Per-worker utilisation roll-up: how many tasks each worker
            # took, how long it computed, and how long it waited for dispatch.
            stats = result.workers.setdefault(
                digest["worker"], {"tasks": 0, "busy_seconds": 0.0, "idle_seconds": 0.0}
            )
            stats["tasks"] += 1
            stats["busy_seconds"] = round(stats["busy_seconds"] + digest["elapsed_seconds"], 4)
            stats["idle_seconds"] = round(stats["idle_seconds"] + digest["idle_seconds"], 4)

    def execute(self) -> CampaignResult:
        """Run (or resume) the campaign; returns the execution summary."""
        started = perf_seconds()
        campaign = self.spec.campaign
        runs = self.spec.runs()
        result = CampaignResult(
            campaign=campaign,
            store_root=str(self.store.root),
            backend=self.backend_config.backend,
        )

        pending: list[RunSpec] = []
        for run in runs:
            if self.store.is_complete(campaign, run, self.spec.experiments):
                result.resumed.append(run.run_id)
            else:
                pending.append(run)
        total = len(runs)
        done = len(result.resumed)
        for run_id in result.resumed:
            self._report(done, total, run_id, "resumed", 0.0)

        jobs = [
            RunJob(
                store_root=str(self.store.root),
                campaign=campaign,
                run=run,
                experiments=self.spec.experiments,
                collect_telemetry=self.telemetry,
                worker_config=self.backend_config,
            )
            for run in pending
        ]
        backend = self._backend_instance
        owned = backend is None
        if owned:
            backend = self.backend_config.create()
        try:
            if jobs:
                for outcome in backend.run(jobs):
                    done += 1
                    self._record(result, outcome)
                    self._report(done, total, outcome.run_id, _status_of(outcome), outcome.elapsed_seconds)
        finally:
            if owned:
                backend.close()

        result.executed.sort()
        result.resumed.sort()
        result.elapsed_seconds = perf_seconds() - started
        return result
