"""Streaming observer API: typed events, the bus, probes and sinks.

This package turns a simulation run from an artefact you crawl afterwards
into a *stream* you consume as the world advances:

* :mod:`repro.observers.events` — the :class:`SimEvent` taxonomy
  (``StepStarted``, ``PriceUpdated``, ``LiquidationSettled``,
  ``BlockMined``…);
* :mod:`repro.observers.bus` — the :class:`ObserverBus` every
  :class:`~repro.simulation.engine.SimulationEngine` carries, plus the
  two-method :class:`Probe` protocol (``on_event`` / ``finalize``);
* :mod:`repro.observers.probes` — built-in probes:
  :class:`LiquidationRecorder`, :class:`HealthFactorWatcher`,
  :class:`MetricsAccumulator`;
* :mod:`repro.observers.sinks` — :class:`JsonlSink`, streaming events as
  JSON lines;
* :mod:`repro.observers.watch` — the live monitoring loop behind
  ``python -m repro watch``.

Quickstart::

    from repro import scenarios
    from repro.observers import LiquidationRecorder, MetricsAccumulator

    builder = scenarios.get("march-2020-only").builder(seed=7)
    builder.with_probes(lambda engine: LiquidationRecorder())
    result = builder.run()
    print(len(result.records))        # streamed, no post-hoc crawl

The probe/sink/watch modules are imported lazily: the engine imports this
package for the bus and the event types, while the probes import the
analytics layer, which imports the engine — eager imports here would cycle.
"""

from __future__ import annotations

from .bus import ObserverBus, Probe
from .events import (
    AuctionDealt,
    BlockMined,
    IncidentFired,
    InterestAccrued,
    LiquidationSettled,
    PriceUpdated,
    RunCompleted,
    RunStarted,
    SimEvent,
    SnapshotTaken,
    StepStarted,
)

__all__ = [
    "AtRiskAlert",
    "AuctionDealt",
    "BlockMined",
    "HealthFactorWatcher",
    "IncidentFired",
    "InterestAccrued",
    "JsonlSink",
    "LiquidationRecorder",
    "LiquidationSettled",
    "MetricsAccumulator",
    "ObserverBus",
    "PriceUpdated",
    "Probe",
    "RunCompleted",
    "RunStarted",
    "SimEvent",
    "SnapshotTaken",
    "StepStarted",
    "run_metrics",
    "watch_run",
]

#: Lazily resolved attributes → their defining submodule.
_LAZY = {
    "AtRiskAlert": "probes",
    "HealthFactorWatcher": "probes",
    "LiquidationRecorder": "probes",
    "MetricsAccumulator": "probes",
    "run_metrics": "probes",
    "JsonlSink": "sinks",
    "watch_run": "watch",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))
