"""Built-in analytics probes for the observer bus.

Each probe consumes the engine's typed :class:`~repro.observers.events.SimEvent`
stream incrementally, replacing a post-hoc crawl of the finished chain:

* :class:`LiquidationRecorder` — streams the exact
  :class:`~repro.analytics.records.LiquidationRecord` list that
  :func:`~repro.analytics.records.extract_liquidations` would crawl after the
  run (field-for-field equal, proven by test);
* :class:`HealthFactorWatcher` — the real-time monitoring loop: tracks which
  asset prices moved this stride and rescans only the protocols whose
  columnar :class:`~repro.core.position_book.PositionBook` holds a
  price-dirtied column, alerting on positions whose health factor drops
  below a threshold;
* :class:`MetricsAccumulator` — incremental per-step aggregates (liquidation
  counts and USD totals, blocks, incidents, price updates…) that campaign
  workers persist without re-crawling the chain.

Probes are passive: they read engine state but never mutate the world or
consume engine RNG streams, so seed-pinned runs with probes attached stay
bit-identical to bare runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable

import numpy as np

from ..analytics.records import LiquidationRecord
from .events import (
    AuctionDealt,
    BlockMined,
    IncidentFired,
    InterestAccrued,
    LiquidationSettled,
    PriceUpdated,
    RunCompleted,
    RunStarted,
    SimEvent,
    SnapshotTaken,
    StepStarted,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..protocols.base import LendingProtocol
    from ..simulation.engine import SimulationResult


class LiquidationRecorder:
    """Streams the normalised liquidation records as they settle.

    After :meth:`finalize`, :attr:`records` equals
    ``extract_liquidations(result)`` exactly — same records, same order —
    because both paths share the per-event normalisers of
    :mod:`repro.analytics.records` and both order by emission
    ``(block, log index)``.
    """

    #: Everything that is not a settlement carries no liquidation record.
    IGNORED_EVENTS = (
        AuctionDealt,
        BlockMined,
        IncidentFired,
        InterestAccrued,
        PriceUpdated,
        RunCompleted,
        RunStarted,
        SnapshotTaken,
        StepStarted,
    )

    def __init__(self) -> None:
        self._records: list[LiquidationRecord] = []

    @property
    def records(self) -> list[LiquidationRecord]:
        """The records streamed so far (a copy, safe to mutate)."""
        return list(self._records)

    def on_event(self, event: SimEvent) -> None:
        if isinstance(event, LiquidationSettled):
            self._records.append(event.record)

    def finalize(self) -> None:
        # Mirror extract_liquidations' stable sort; the stream already
        # arrives in block order, so this is an identity pass.
        self._records.sort(key=lambda record: record.block_number)


@dataclass(frozen=True)
class AtRiskAlert:
    """One position crossing below the watch threshold."""

    step_index: int
    block_number: int
    platform: str
    owner: str
    health_factor: float
    debt_usd: float


class HealthFactorWatcher:
    """Alerts on positions whose health factor drops below a threshold.

    The watcher collects the symbols whose oracle price changed during the
    stride (:class:`PriceUpdated` events) and, once the stride's block is
    mined, rescans *only* the protocols whose position book carries one of
    those price-dirtied asset columns.  Prices are not the only thing that
    moves health factors: interest accrual scales debts without touching an
    oracle, so an :class:`InterestAccrued` stride marks the accruing
    protocols dirty wholesale.  A sweep reads the protocol's cached
    :class:`~repro.core.position_book.BookValuation` — one vectorized pass
    per block shared with the snapshot providers and the analytics sweeps —
    so watching a whole multi-protocol world stays cheap even at production
    position counts.

    ``on_alert`` (if given) is called live for every position *entering* the
    at-risk set; positions already below the threshold do not re-alert until
    they recover above it first.
    """

    #: Health factors move only on price changes, accrual and mining; the
    #: lifecycle/report events carry nothing a watcher reacts to.
    IGNORED_EVENTS = (
        AuctionDealt,
        IncidentFired,
        LiquidationSettled,
        RunCompleted,
        RunStarted,
        SnapshotTaken,
        StepStarted,
    )

    def __init__(
        self,
        protocols: Iterable["LendingProtocol"],
        hf_below: float = 1.05,
        on_alert: Callable[[AtRiskAlert], None] | None = None,
    ) -> None:
        self.protocols = list(protocols)
        self.hf_below = float(hf_below)
        self.on_alert = on_alert
        self.alerts: list[AtRiskAlert] = []
        self._at_risk: set[tuple[str, str]] = set()
        self._dirty_symbols: set[str] = set()
        self._accrued_protocols: set[str] = set()

    @property
    def at_risk(self) -> frozenset[tuple[str, str]]:
        """The ``(platform, owner)`` pairs currently below the threshold."""
        return frozenset(self._at_risk)

    def on_event(self, event: SimEvent) -> None:
        if isinstance(event, PriceUpdated):
            self._dirty_symbols.add(event.symbol.upper())
        elif isinstance(event, InterestAccrued):
            self._accrued_protocols.update(event.protocols)
        elif isinstance(event, BlockMined):
            self._rescan(event)

    def _rescan(self, event: BlockMined) -> None:
        if not self._dirty_symbols and not self._accrued_protocols:
            return
        dirty = self._dirty_symbols
        accrued = self._accrued_protocols
        self._dirty_symbols = set()
        self._accrued_protocols = set()
        for protocol in self.protocols:
            if protocol.name not in accrued and not dirty.intersection(protocol.book.assets):
                continue
            # The block's shared aggregate valuation: when the engine also
            # snapshots or scans this block, the sync + vectorized pass is
            # paid once and the watcher's sweep rides the cache.  The
            # flagged rows are read straight from the fast arrays — no
            # per-row scalar confirmation, alerts are not seed-pinned.
            valuation = protocol.valuation()
            health = valuation.health_factors()
            current: set[tuple[str, str]] = set()
            for row in np.flatnonzero(health < self.hf_below).tolist():
                position = valuation.book.position_at(row)
                key = (protocol.name, position.owner.value)
                current.add(key)
                if key in self._at_risk:
                    continue
                alert = AtRiskAlert(
                    step_index=event.step_index,
                    block_number=event.block_number,
                    platform=protocol.name,
                    owner=position.owner.value,
                    health_factor=float(health[row]),
                    debt_usd=float(valuation.debt_usd[row]),
                )
                self.alerts.append(alert)
                if self.on_alert is not None:
                    self.on_alert(alert)
            # Recovered positions leave the set so a relapse re-alerts.
            self._at_risk = {
                key for key in self._at_risk if key[0] != protocol.name
            } | current

    def finalize(self) -> None:
        """Nothing to seal; alerts were delivered live."""


class MetricsAccumulator:
    """Incremental per-step aggregates of one run.

    The resulting :attr:`metrics` dict is what campaign workers persist into
    the run manifest, replacing a post-hoc re-crawl.  For a completed run
    without this probe, :func:`run_metrics` computes the same aggregates
    from the archive (the ``price_updates`` count is the one field the
    post-hoc shim cannot scope to the run: it counts every posted
    ``AnswerUpdated`` log, including scenario-construction posts).
    """

    #: Accrual strides and run lifecycle markers add no per-step aggregate;
    #: steps/blocks already delimit the run.
    IGNORED_EVENTS = (InterestAccrued, RunCompleted, RunStarted)

    def __init__(self) -> None:
        self.steps = 0
        self.blocks = 0
        self.final_block = 0
        self.incidents_fired = 0
        self.price_updates = 0
        self.snapshots = 0
        self.auctions_dealt = 0
        self.auctions_settled = 0
        self._liquidations = _LiquidationTally()

    def on_event(self, event: SimEvent) -> None:
        if isinstance(event, StepStarted):
            self.steps += 1
        elif isinstance(event, BlockMined):
            self.blocks += 1
            self.final_block = event.block_number
        elif isinstance(event, LiquidationSettled):
            self._liquidations.add(event.record)
        elif isinstance(event, AuctionDealt):
            self.auctions_dealt += 1
            if event.winner is not None:
                self.auctions_settled += 1
        elif isinstance(event, PriceUpdated):
            self.price_updates += 1
        elif isinstance(event, IncidentFired):
            self.incidents_fired += 1
        elif isinstance(event, SnapshotTaken):
            self.snapshots += 1

    def finalize(self) -> None:
        """Nothing to seal; the aggregates are maintained incrementally."""

    @property
    def metrics(self) -> dict:
        """The aggregates as a JSON-ready dict (the campaign-store contract)."""
        return {
            "steps": self.steps,
            "blocks": self.blocks,
            "final_block": self.final_block,
            "incidents_fired": self.incidents_fired,
            "price_updates": self.price_updates,
            "snapshots": self.snapshots,
            "auctions": {"dealt": self.auctions_dealt, "settled": self.auctions_settled},
            "liquidations": self._liquidations.as_dict(),
        }


class _LiquidationTally:
    """Shared liquidation aggregates of the streamed and post-hoc metrics."""

    def __init__(self) -> None:
        self.count = 0
        self.repaid_usd = 0.0
        self.collateral_usd = 0.0
        self.profit_usd = 0.0
        self.flash_loans = 0
        self.unprofitable = 0
        self.by_platform: dict[str, int] = {}

    def add(self, record: LiquidationRecord) -> None:
        self.count += 1
        self.repaid_usd += record.repaid_usd
        self.collateral_usd += record.collateral_usd
        self.profit_usd += record.profit_usd
        if record.used_flash_loan:
            self.flash_loans += 1
        if not record.is_profitable:
            self.unprofitable += 1
        self.by_platform[record.platform] = self.by_platform.get(record.platform, 0) + 1

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "repaid_usd": self.repaid_usd,
            "collateral_usd": self.collateral_usd,
            "profit_usd": self.profit_usd,
            "flash_loans": self.flash_loans,
            "unprofitable": self.unprofitable,
            "by_platform": dict(sorted(self.by_platform.items())),
        }


def run_metrics(result: "SimulationResult") -> dict:
    """Post-hoc shim: the :class:`MetricsAccumulator` aggregates from a
    finished run's archive.

    Matches the streamed metrics field-for-field on a fresh single-``run()``
    engine, except ``price_updates`` (see :class:`MetricsAccumulator`).
    """
    engine = result.engine
    tally = _LiquidationTally()
    for record in result.records:
        tally.add(record)
    deals = result.chain.events.by_name("Deal")
    return {
        "steps": engine.step_index,
        "blocks": len(result.chain.blocks),
        "final_block": result.final_block,
        "incidents_fired": sum(1 for event in engine.scheduled_events if event.fired),
        "price_updates": len(result.chain.events.by_name("AnswerUpdated")),
        "snapshots": len(result.chain.snapshot_blocks),
        "auctions": {
            "dealt": len(deals),
            "settled": sum(1 for deal in deals if deal.data.get("winner")),
        },
        "liquidations": tally.as_dict(),
    }
