"""The live monitoring loop behind ``python -m repro watch``.

This is the ``liquidation-alerter`` workload from the ROADMAP: build a
scenario, attach streaming probes, and narrate the run as it advances —
at-risk positions the moment their health factor crosses below the watch
threshold, liquidations and auction deals the moment they settle, incidents
as they fire.  The loop drives the ordinary :meth:`SimulationEngine.run`,
so a watched run is bit-identical to a bare one; all output comes from
passive probes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import IO, TYPE_CHECKING, Callable

from .events import (
    AuctionDealt,
    BlockMined,
    IncidentFired,
    InterestAccrued,
    LiquidationSettled,
    PriceUpdated,
    RunCompleted,
    RunStarted,
    SimEvent,
    SnapshotTaken,
    StepStarted,
)
from .probes import AtRiskAlert, HealthFactorWatcher, LiquidationRecorder, MetricsAccumulator
from .sinks import JsonlSink

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..scenarios.builder import ScenarioBuilder
    from ..simulation.engine import SimulationResult


@dataclass
class WatchSummary:
    """What one watch run produced, for the caller's closing report."""

    result: "SimulationResult"
    liquidations: int
    alerts: int
    events_streamed: int | None  # None when no JSONL sink was attached
    #: True when the run was cut short (Ctrl-C or a closed output pipe);
    #: probes were still finalized, so the JSONL stream is flushed and valid.
    interrupted: bool = False
    #: Bound metrics port (``--metrics-port``), or ``None`` when not serving.
    metrics_port: int | None = None
    #: Final Prometheus exposition text when metrics were served.
    metrics_exposition: str | None = None


class _ConsoleNarrator:
    """A probe that formats the stream into human-readable alert lines."""

    #: The narrator prints only the headline moments; bookkeeping events
    #: (mining, accrual, prices, snapshots, lifecycle) stay silent by design.
    IGNORED_EVENTS = (
        BlockMined,
        InterestAccrued,
        PriceUpdated,
        RunCompleted,
        RunStarted,
        SnapshotTaken,
    )

    def __init__(self, emit: Callable[[str], None], follow: bool) -> None:
        self.emit = emit
        self.follow = follow

    def on_event(self, event: SimEvent) -> None:
        if isinstance(event, LiquidationSettled):
            record = event.record
            flash = " (flash loan)" if record.used_flash_loan else ""
            self.emit(
                f"[block {record.block_number:>10,}] LIQUIDATED  {record.platform:<9} "
                f"{record.borrower}: repaid {record.repaid_usd:,.0f} USD {record.debt_symbol}, "
                f"seized {record.collateral_usd:,.0f} USD {record.collateral_symbol}, "
                f"profit {record.profit_usd:,.0f} USD [{record.mechanism}]{flash}"
            )
        elif isinstance(event, AuctionDealt):
            outcome = f"won by {event.winner}" if event.winner else "expired without a bid"
            self.emit(
                f"[block {event.block_number:>10,}] AUCTION     MakerDAO auction "
                f"#{event.auction_id} ({event.collateral_symbol}) {outcome}"
            )
        elif isinstance(event, IncidentFired):
            self.emit(f"[block {event.block_number:>10,}] INCIDENT    {event.name}")
        elif self.follow and isinstance(event, StepStarted):
            self.emit(f"[block {event.block_number:>10,}] step {event.step_index}")

    def finalize(self) -> None:
        """Nothing to seal; lines were emitted live."""


def watch_run(
    builder: "ScenarioBuilder",
    *,
    hf_below: float = 1.05,
    follow: bool = False,
    jsonl: "str | IO[str] | None" = None,
    emit: Callable[[str], None] = print,
    metrics_port: int | None = None,
) -> WatchSummary:
    """Run ``builder``'s scenario while streaming alerts through ``emit``.

    Parameters
    ----------
    hf_below:
        At-risk threshold: a position alerts when its health factor drops
        below this value (1.0 means "already liquidatable").
    follow:
        Also emit one progress line per block stride.
    jsonl:
        Optional path or text handle receiving the full typed event stream
        as JSON lines.
    emit:
        Line consumer for the human-readable narration (defaults to
        ``print``).
    metrics_port:
        Serve a live Prometheus exposition of the run on this port while it
        advances (0 picks a free ephemeral port; the bound port is on the
        summary).  ``None`` disables the endpoint.

    A ``KeyboardInterrupt`` (or the output pipe closing under the narration)
    ends the watch early but cleanly: probes are finalized, so a ``--jsonl``
    stream is flushed and remains valid JSONL, and the summary reports what
    was seen up to the interrupt with ``interrupted=True``.
    """
    engine = builder.build()

    def alert(entry: AtRiskAlert) -> None:
        emit(
            f"[block {entry.block_number:>10,}] AT RISK     {entry.platform:<9} "
            f"{entry.owner}: HF {entry.health_factor:.4f}, debt {entry.debt_usd:,.0f} USD"
        )

    recorder = engine.attach_probe(LiquidationRecorder())
    watcher = engine.attach_probe(
        HealthFactorWatcher(engine.protocols, hf_below=hf_below, on_alert=alert)
    )
    engine.attach_probe(MetricsAccumulator())
    sink = engine.attach_probe(JsonlSink(jsonl)) if jsonl is not None else None
    engine.attach_probe(_ConsoleNarrator(emit, follow))

    server = None
    registry = None
    if metrics_port is not None:
        from ..telemetry import MetricsRegistry, MetricsServer, TelemetryProbe

        registry = MetricsRegistry()
        engine.attach_probe(TelemetryProbe(registry))
        server = MetricsServer(registry, port=metrics_port)
        server.start()
        bound_port = server.port
        # Announce up front: with port 0 the ephemeral port is only knowable
        # now, and scrapers want the URL while the run is still advancing.
        emit(f"[metrics] serving http://127.0.0.1:{bound_port}/metrics")

    interrupted = False
    try:
        result = engine.run()
    except (KeyboardInterrupt, BrokenPipeError):
        from ..simulation.engine import SimulationResult

        interrupted = True
        try:
            # The engine never reached its own bus.finalize(): seal probes
            # here so the JSONL sink flushes and closes cleanly.
            if engine.bus.active:
                engine.bus.finalize()
        except (BrokenPipeError, ValueError):
            pass  # the sink's own handle is the broken pipe; nothing to save
        result = SimulationResult(engine=engine)
    finally:
        if server is not None:
            server.stop()

    return WatchSummary(
        result=result,
        liquidations=len(recorder.records),
        alerts=len(watcher.alerts),
        events_streamed=sink.events_written if sink is not None else None,
        interrupted=interrupted,
        metrics_port=bound_port if server is not None else None,
        metrics_exposition=registry.exposition() if registry is not None else None,
    )
