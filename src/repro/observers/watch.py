"""The live monitoring loop behind ``python -m repro watch``.

This is the ``liquidation-alerter`` workload from the ROADMAP: build a
scenario, attach streaming probes, and narrate the run as it advances —
at-risk positions the moment their health factor crosses below the watch
threshold, liquidations and auction deals the moment they settle, incidents
as they fire.  The loop drives the ordinary :meth:`SimulationEngine.run`,
so a watched run is bit-identical to a bare one; all output comes from
passive probes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import IO, TYPE_CHECKING, Callable

from .events import (
    AuctionDealt,
    IncidentFired,
    LiquidationSettled,
    SimEvent,
    StepStarted,
)
from .probes import AtRiskAlert, HealthFactorWatcher, LiquidationRecorder, MetricsAccumulator
from .sinks import JsonlSink

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..scenarios.builder import ScenarioBuilder
    from ..simulation.engine import SimulationResult


@dataclass
class WatchSummary:
    """What one watch run produced, for the caller's closing report."""

    result: "SimulationResult"
    liquidations: int
    alerts: int
    events_streamed: int | None  # None when no JSONL sink was attached


class _ConsoleNarrator:
    """A probe that formats the stream into human-readable alert lines."""

    def __init__(self, emit: Callable[[str], None], follow: bool) -> None:
        self.emit = emit
        self.follow = follow

    def on_event(self, event: SimEvent) -> None:
        if isinstance(event, LiquidationSettled):
            record = event.record
            flash = " (flash loan)" if record.used_flash_loan else ""
            self.emit(
                f"[block {record.block_number:>10,}] LIQUIDATED  {record.platform:<9} "
                f"{record.borrower}: repaid {record.repaid_usd:,.0f} USD {record.debt_symbol}, "
                f"seized {record.collateral_usd:,.0f} USD {record.collateral_symbol}, "
                f"profit {record.profit_usd:,.0f} USD [{record.mechanism}]{flash}"
            )
        elif isinstance(event, AuctionDealt):
            outcome = f"won by {event.winner}" if event.winner else "expired without a bid"
            self.emit(
                f"[block {event.block_number:>10,}] AUCTION     MakerDAO auction "
                f"#{event.auction_id} ({event.collateral_symbol}) {outcome}"
            )
        elif isinstance(event, IncidentFired):
            self.emit(f"[block {event.block_number:>10,}] INCIDENT    {event.name}")
        elif self.follow and isinstance(event, StepStarted):
            self.emit(f"[block {event.block_number:>10,}] step {event.step_index}")

    def finalize(self) -> None:
        """Nothing to seal; lines were emitted live."""


def watch_run(
    builder: "ScenarioBuilder",
    *,
    hf_below: float = 1.05,
    follow: bool = False,
    jsonl: "str | IO[str] | None" = None,
    emit: Callable[[str], None] = print,
) -> WatchSummary:
    """Run ``builder``'s scenario while streaming alerts through ``emit``.

    Parameters
    ----------
    hf_below:
        At-risk threshold: a position alerts when its health factor drops
        below this value (1.0 means "already liquidatable").
    follow:
        Also emit one progress line per block stride.
    jsonl:
        Optional path or text handle receiving the full typed event stream
        as JSON lines.
    emit:
        Line consumer for the human-readable narration (defaults to
        ``print``).
    """
    engine = builder.build()

    def alert(entry: AtRiskAlert) -> None:
        emit(
            f"[block {entry.block_number:>10,}] AT RISK     {entry.platform:<9} "
            f"{entry.owner}: HF {entry.health_factor:.4f}, debt {entry.debt_usd:,.0f} USD"
        )

    recorder = engine.attach_probe(LiquidationRecorder())
    watcher = engine.attach_probe(
        HealthFactorWatcher(engine.protocols, hf_below=hf_below, on_alert=alert)
    )
    engine.attach_probe(MetricsAccumulator())
    sink = engine.attach_probe(JsonlSink(jsonl)) if jsonl is not None else None
    engine.attach_probe(_ConsoleNarrator(emit, follow))

    result = engine.run()
    return WatchSummary(
        result=result,
        liquidations=len(recorder.records),
        alerts=len(watcher.alerts),
        events_streamed=sink.events_written if sink is not None else None,
    )
