"""The observer bus: fan-out of :class:`SimEvent` s to attached probes.

The bus is deliberately minimal — an ordered list of probes and a dispatch
loop — because its fast path matters more than its feature set: a run with no
probes attached must cost essentially nothing extra (the engine checks
:attr:`ObserverBus.active` before even *constructing* events, and the
``test_watch_overhead`` benchmark holds the active bus under 5 % overhead).

Probes follow the two-method :class:`Probe` protocol: ``on_event`` receives
every published event during the run, ``finalize`` is called once when the
run completes (engine-driven runs call it from ``run()``; manual ``step()``
loops call :meth:`ObserverBus.finalize` themselves).  Probes must be passive
observers — they may read any engine state but must not mutate the world,
consume engine RNG streams, or submit transactions; seed-pinned runs with
probes attached are bit-identical to bare runs (enforced by test).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .events import SimEvent


@runtime_checkable
class Probe(Protocol):
    """What the bus requires of an attached observer."""

    def on_event(self, event: "SimEvent") -> None:
        """Receive one published event (called in emission order)."""

    def finalize(self) -> None:
        """The run completed; seal any accumulated state (idempotent)."""


class ObserverBus:
    """Dispatches simulation events to attached probes, in attachment order."""

    def __init__(self) -> None:
        self._probes: list[Probe] = []

    def __len__(self) -> int:
        return len(self._probes)

    @property
    def active(self) -> bool:
        """Whether any probe is attached (the engine's emission gate)."""
        return bool(self._probes)

    @property
    def probes(self) -> tuple[Probe, ...]:
        """The attached probes, in attachment order."""
        return tuple(self._probes)

    def attach(self, probe: Probe) -> Probe:
        """Attach ``probe`` and return it (for fluent local use)."""
        self._probes.append(probe)
        return probe

    def detach(self, probe: Probe) -> None:
        """Detach ``probe`` (no-op when it is not attached)."""
        try:
            self._probes.remove(probe)
        except ValueError:
            pass

    def emit(self, event: "SimEvent") -> None:
        """Publish one event to every probe."""
        for probe in self._probes:
            probe.on_event(event)

    def finalize(self) -> None:
        """Signal run completion to every probe."""
        for probe in self._probes:
            probe.finalize()

    def find(self, probe_type: type) -> "Probe | None":
        """The first attached probe of ``probe_type`` (or ``None``)."""
        for probe in self._probes:
            if isinstance(probe, probe_type):
                return probe
        return None
