"""Event sinks: probes that forward the stream out of the process.

:class:`JsonlSink` serialises every event's :meth:`SimEvent.payload` as one
JSON line — the same diff-friendly, ``jq``-able convention the campaign
store uses.  It accepts a path (opened lazily, closed on finalize) or any
writable text handle (left open, so ``sys.stdout`` works for ``repro watch
--jsonl -``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterable

from .events import SimEvent


class JsonlSink:
    """Writes every received event as a JSON line.

    Parameters
    ----------
    target:
        A file path (``str`` / ``Path``) or an open text handle.  Paths are
        opened on the first event and closed by :meth:`finalize`; handles
        are flushed but never closed (the caller owns them).
    kinds:
        Optional allow-list of event type names (e.g. ``{"LiquidationSettled",
        "BlockMined"}``); ``None`` streams everything.
    """

    def __init__(self, target: str | Path | IO[str], kinds: Iterable[str] | None = None) -> None:
        self._path: Path | None = None
        self._handle: IO[str] | None = None
        if isinstance(target, (str, Path)):
            self._path = Path(target)
        else:
            self._handle = target
        self.kinds = frozenset(kinds) if kinds is not None else None
        self.events_written = 0
        self._opened_once = False

    def on_event(self, event: SimEvent) -> None:
        if self.kinds is not None and event.kind not in self.kinds:
            return
        if self._handle is None:
            # Truncate on the first open only: a second run() of the same
            # engine re-opens after finalize() closed the handle, and must
            # append rather than wipe the first run's stream.
            mode = "a" if self._opened_once else "w"
            self._handle = self._path.open(mode, encoding="utf-8")
            self._opened_once = True
        self._handle.write(json.dumps(event.payload(), sort_keys=True) + "\n")
        self.events_written += 1

    def finalize(self) -> None:
        """Flush, and close the handle if this sink opened it."""
        if self._handle is None:
            return
        self._handle.flush()
        if self._path is not None:
            self._handle.close()
            self._handle = None
