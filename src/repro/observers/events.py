"""The typed simulation event taxonomy.

The paper's measurement pipeline "crawls blockchain events and reads
blockchain states" — post-hoc, against a finished archive.  The observer API
turns the same information into a *stream*: as the engine advances, it
publishes one :class:`SimEvent` per noteworthy occurrence, in a fixed order
within each block stride:

========================  =====================================================
event                     emitted when
========================  =====================================================
:class:`RunStarted`       once, when :meth:`SimulationEngine.run` begins
:class:`StepStarted`      at the top of every block stride
:class:`IncidentFired`    a scheduled scenario event (crash, override…) fires
:class:`PriceUpdated`     an oracle posts a fresh price for a symbol
:class:`InterestAccrued`  interest accrual scaled the active protocols' debts
:class:`SnapshotTaken`    the archive captures a state snapshot
:class:`AuctionDealt`     a MakerDAO auction settles (with or without winner)
:class:`LiquidationSettled`  a liquidation lands — fixed-spread call or won
                          auction — carrying the normalised
                          :class:`~repro.analytics.records.LiquidationRecord`
:class:`BlockMined`       the stride's block has been produced (last per step)
:class:`RunCompleted`     once, after the final stride and end-of-run snapshot
========================  =====================================================

Events are ``slots`` dataclasses: construction is on the engine's hot path
(dozens of :class:`PriceUpdated` per stride) and slotted init is ~2× cheaper
than a frozen one, which is what keeps the active bus under the 5 % overhead
budget of ``benchmarks/test_watch_overhead.py``.  Treat instances as
immutable — probes receive the same object and must not mutate it.  Each
event carries ``step_index`` and ``block_number`` (the engine's step counter
and the chain block the event refers to) and serialises itself with
:meth:`SimEvent.payload` — the JSON-line contract of
:class:`~repro.observers.sinks.JsonlSink`.

This module is imported by the engine, so it must not import the analytics
package (which imports the engine); the ``LiquidationRecord`` reference is a
type-checking-only forward reference.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..analytics.records import LiquidationRecord


@dataclass(slots=True)
class SimEvent:
    """Base class of every streamed simulation event.

    Attributes
    ----------
    step_index:
        The engine's step counter when the event was published (0-based; the
        step that is *currently advancing*).
    block_number:
        The chain block the event refers to — the pending block for
        pre-mining phases, the mined block for :class:`BlockMined` and the
        settlement block for :class:`LiquidationSettled`.
    """

    step_index: int
    block_number: int

    @property
    def kind(self) -> str:
        """The event's type name, e.g. ``"LiquidationSettled"``."""
        return type(self).__name__

    def payload(self) -> dict[str, Any]:
        """A JSON-safe dict of this event (the :class:`JsonlSink` contract)."""
        data = dataclasses.asdict(self)
        data["event"] = self.kind
        return data


@dataclass(slots=True)
class RunStarted(SimEvent):
    """A :meth:`SimulationEngine.run` call began."""

    n_steps: int
    end_block: int


@dataclass(slots=True)
class StepStarted(SimEvent):
    """A new block stride is about to advance (first event of every step)."""


@dataclass(slots=True)
class IncidentFired(SimEvent):
    """A scheduled one-shot scenario event fired."""

    name: str
    scheduled_block: int


@dataclass(slots=True)
class PriceUpdated(SimEvent):
    """An oracle posted a fresh price for ``symbol``."""

    oracle: str
    symbol: str
    price: float


@dataclass(slots=True)
class InterestAccrued(SimEvent):
    """Interest accrual ran on the active protocols this stride.

    Accrual scales outstanding debts, so health factors can cross below an
    alert threshold without any oracle price moving — watchers treat this
    as a whole-book rescan trigger.
    """

    protocols: tuple[str, ...]


@dataclass(slots=True)
class SnapshotTaken(SimEvent):
    """The archive captured a state snapshot keyed at ``block_number``."""


@dataclass(slots=True)
class AuctionDealt(SimEvent):
    """A MakerDAO auction was finalised (``Deal``).

    ``winner`` is ``None`` for auctions that expired without a bid (the
    collateral returns to the vault; the paper does not count these as
    liquidations, so no :class:`LiquidationSettled` follows them).
    """

    auction_id: int
    borrower: str
    winner: str | None
    collateral_symbol: str
    debt_repaid: float
    collateral_won: float


@dataclass(slots=True)
class LiquidationSettled(SimEvent):
    """A liquidation settled on-chain, as a normalised record.

    ``record`` is the exact :class:`~repro.analytics.records.LiquidationRecord`
    the post-hoc :func:`~repro.analytics.records.extract_liquidations` crawl
    would produce for the same chain log — proven equivalent by test.
    """

    record: "LiquidationRecord"

    def payload(self) -> dict[str, Any]:
        data = dataclasses.asdict(self.record)
        data.update(
            event=self.kind,
            step_index=self.step_index,
            block_number=self.block_number,
        )
        return data


@dataclass(slots=True)
class BlockMined(SimEvent):
    """The stride's block was produced (always the last event of a step)."""

    n_receipts: int
    gas_used: int
    base_gas_price_wei: int


@dataclass(slots=True)
class RunCompleted(SimEvent):
    """The run finished; ``block_number`` is the pending (never-mined) block."""

    final_block: int
