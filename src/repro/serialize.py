"""JSON normalisation of experiment outputs.

Every experiment's ``compute`` returns rich Python objects — frozen
dataclasses, dicts keyed by floats, numpy scalars and arrays.  The campaign
run store persists those outputs to disk as JSON, so they must survive a
``json.dumps``/``json.loads`` round trip losslessly.  :func:`to_jsonable` is
that contract: it maps any experiment output onto the plain
dict/list/str/number subset of Python that JSON represents natively.

Rules:

* dataclasses become dicts in field order;
* numpy scalars become their Python equivalents, numpy arrays become
  (nested) lists;
* tuples and lists become lists; sets become sorted lists;
* dict keys are stringified (``{10.0: ...}`` → ``{"10.0": ...}``) because
  JSON object keys are always strings;
* non-finite floats become the strings ``"NaN"`` / ``"Infinity"`` /
  ``"-Infinity"`` — strict JSON has no token for them, and Python's default
  ``json.dumps`` would emit bare ``NaN`` which ``JSON.parse`` and every
  non-Python consumer reject (the run store dumps with ``allow_nan=False``
  to enforce this at the write boundary);
* anything else falls back to ``str(obj)``.

The output contains only types ``json.dumps`` serialises natively, so
``json.loads(json.dumps(to_jsonable(x))) == to_jsonable(x)`` holds for every
experiment (asserted over all experiment ids in the test suite).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any

import numpy as np

__all__ = ["to_jsonable"]


def _key(key: Any) -> str:
    """Normalise a dict key to the string JSON requires."""
    if isinstance(key, str):
        return key
    if isinstance(key, np.generic):
        key = key.item()
    return str(key)


def _finite_float(value: float) -> float | str:
    """Map non-finite floats onto their conventional string spellings."""
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "Infinity" if value > 0 else "-Infinity"
    return value


def to_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` to JSON-round-trippable plain Python."""
    if isinstance(obj, float):
        # Checked before the catch-all scalar branch: json.dumps would
        # happily emit bare ``NaN``/``Infinity`` tokens that are not JSON.
        return _finite_float(obj)
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, np.generic):
        return to_jsonable(obj.item())
    if isinstance(obj, np.ndarray):
        return to_jsonable(obj.tolist())
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            field.name: to_jsonable(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {_key(key): to_jsonable(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(value) for value in obj]
    if isinstance(obj, (set, frozenset)):
        return [to_jsonable(value) for value in sorted(obj, key=str)]
    return str(obj)
