"""Bad debt classification (Section 4.4.2, Table 2).

Type I bad debt (under-collateralized position)
    The collateral value has fallen below the debt value; closing the
    position necessarily books a loss for the borrower or the platform.

Type II bad debt (excessive transaction fees)
    The position is still over-collateralized, but the *excess* collateral —
    what the borrower would get back after repaying — is worth less than the
    transaction fee of closing it, so no rational borrower will ever close
    it.

The paper evaluates Type II at assumed closing costs of 10 USD and 100 USD.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Mapping

from .position import Position


class BadDebtType(enum.Enum):
    """Classification outcomes for a borrowing position."""

    HEALTHY = "healthy"
    TYPE_I = "type_i"
    TYPE_II = "type_ii"


@dataclass(frozen=True)
class BadDebtRecord:
    """Classification of one position, with its headline values."""

    owner: str
    kind: BadDebtType
    collateral_usd: float
    debt_usd: float
    excess_collateral_usd: float


@dataclass(frozen=True)
class BadDebtReport:
    """Aggregate bad-debt statistics for one platform snapshot (one Table 2 row)."""

    transaction_fee_usd: float
    total_positions: int
    type_i_count: int
    type_i_collateral_usd: float
    type_ii_count: int
    type_ii_collateral_usd: float

    @property
    def type_i_share(self) -> float:
        """Fraction of open positions classified Type I."""
        return self.type_i_count / self.total_positions if self.total_positions else 0.0

    @property
    def type_ii_share(self) -> float:
        """Fraction of open positions classified Type II."""
        return self.type_ii_count / self.total_positions if self.total_positions else 0.0

    @property
    def locked_collateral_usd(self) -> float:
        """Collateral value locked in bad debt of either type."""
        return self.type_i_collateral_usd + self.type_ii_collateral_usd


def classify_values(
    collateral_usd: float,
    debt_usd: float,
    transaction_fee_usd: float,
) -> BadDebtType:
    """The Type I / Type II classification law on raw position values.

    The single definition shared by :func:`classify_position` and the
    aggregation cores, so the classification boundary cannot drift between
    the per-position records and Table 2.
    """
    if collateral_usd < debt_usd:
        return BadDebtType.TYPE_I
    if collateral_usd - debt_usd < transaction_fee_usd:
        return BadDebtType.TYPE_II
    return BadDebtType.HEALTHY


def classify_position(
    position: Position,
    prices: Mapping[str, float],
    transaction_fee_usd: float,
) -> BadDebtRecord:
    """Classify a single position as healthy / Type I / Type II."""
    collateral_usd = position.total_collateral_usd(prices)
    debt_usd = position.total_debt_usd(prices)
    if not position.has_debt:
        kind = BadDebtType.HEALTHY
    else:
        kind = classify_values(collateral_usd, debt_usd, transaction_fee_usd)
    return BadDebtRecord(
        owner=position.owner.value,
        kind=kind,
        collateral_usd=collateral_usd,
        debt_usd=debt_usd,
        excess_collateral_usd=collateral_usd - debt_usd,
    )


def bad_debt_report_from_values(
    valued_positions: Iterable[tuple[float, float]],
    transaction_fee_usd: float,
) -> BadDebtReport:
    """Aggregate a bad-debt report from precomputed position values.

    ``valued_positions`` yields ``(collateral_usd, debt_usd)`` for every
    *indebted* position, in position order.  This is the classification and
    accumulation core shared by the scalar :func:`bad_debt_report` walk and
    the book-backed sweep (which feeds the exact per-row values of a
    :class:`~repro.core.position_book.BookValuation`), so both produce
    bit-identical reports.
    """
    total = 0
    type_i_count = 0
    type_i_collateral = 0.0
    type_ii_count = 0
    type_ii_collateral = 0.0
    for collateral_usd, debt_usd in valued_positions:
        total += 1
        kind = classify_values(collateral_usd, debt_usd, transaction_fee_usd)
        if kind is BadDebtType.TYPE_I:
            type_i_count += 1
            type_i_collateral += collateral_usd
        elif kind is BadDebtType.TYPE_II:
            type_ii_count += 1
            type_ii_collateral += collateral_usd
    return BadDebtReport(
        transaction_fee_usd=transaction_fee_usd,
        total_positions=total,
        type_i_count=type_i_count,
        type_i_collateral_usd=type_i_collateral,
        type_ii_count=type_ii_count,
        type_ii_collateral_usd=type_ii_collateral,
    )


def bad_debt_report(
    positions: Iterable[Position],
    prices: Mapping[str, float],
    transaction_fee_usd: float,
) -> BadDebtReport:
    """Classify every open position and aggregate counts / locked collateral.

    Positions without debt are excluded from the denominator, matching the
    paper's framing of "lending positions".
    """
    return bad_debt_report_from_values(
        (
            (position.total_collateral_usd(prices), position.total_debt_usd(prices))
            for position in positions
            if position.has_debt
        ),
        transaction_fee_usd,
    )
