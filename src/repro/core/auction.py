"""MakerDAO-style tend-dent auction model (Section 3.2.1, Figure 2).

The auction is the *non-atomic* liquidation mechanism: a liquidatable CDP is
put up for auction, bidders compete in two phases, and the winner finalizes
the liquidation after the auction terminates.

Tend phase
    Bidders commit increasing amounts of debt ``d_i ≤ D`` in exchange for the
    *entire* collateral ``C``.  When a bid reaches ``D`` the auction moves
    into the dent phase.

Dent phase
    Bidders commit to accept *decreasing* amounts of collateral ``c_i ≤ C``
    in exchange for repaying the full debt ``D``; the leftover collateral is
    returned to the borrower.

Termination
    Either the configured *auction length* has passed since initiation, or
    the configured *bid duration* has passed since the last bid.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..chain.types import Address


class AuctionPhase(enum.Enum):
    """Lifecycle phases of a tend-dent auction."""

    TEND = "tend"
    DENT = "dent"
    TERMINATED = "terminated"
    FINALIZED = "finalized"


class AuctionError(Exception):
    """Raised on bids or finalizations that violate the auction rules."""


@dataclass(frozen=True)
class AuctionBid:
    """A single recorded bid."""

    bidder: Address
    block_number: int
    phase: AuctionPhase
    debt_bid: float
    collateral_bid: float


@dataclass
class AuctionConfig:
    """Auction parameters, in blocks.

    The defaults mirror MakerDAO's pre-March-2020 configuration (6-hour
    auction length, ≈ 10-minute bid duration translated into blocks); the
    scenario layer reconfigures them after the March 2020 incident, which is
    what makes Figure 7's "configured" lines shift.
    """

    auction_length_blocks: int = 1_660  # ≈ 6 hours
    bid_duration_blocks: int = 1_385  # ≈ 5 hours
    min_bid_increase: float = 0.03  # each tend bid must beat the last by 3 %
    min_dent_decrease: float = 0.03  # each dent bid must shave ≥ 3 % collateral


@dataclass
class TendDentAuction:
    """State machine of a single collateral auction.

    ``debt_target`` (D) and ``collateral_lot`` (C) are USD-free token
    amounts; valuation happens at the protocol layer.
    """

    auction_id: int
    borrower: Address
    collateral_symbol: str
    debt_symbol: str
    collateral_lot: float
    debt_target: float
    start_block: int
    config: AuctionConfig = field(default_factory=AuctionConfig)
    bids: list[AuctionBid] = field(default_factory=list)
    phase: AuctionPhase = AuctionPhase.TEND
    finalized_block: int | None = None

    # ------------------------------------------------------------------ #
    # Status
    # ------------------------------------------------------------------ #
    @property
    def best_bid(self) -> AuctionBid | None:
        """The currently winning bid, if any."""
        return self.bids[-1] if self.bids else None

    @property
    def winning_bidder(self) -> Address | None:
        """Address of the current highest bidder."""
        best = self.best_bid
        return best.bidder if best else None

    @property
    def last_bid_block(self) -> int | None:
        """Block number of the most recent bid."""
        best = self.best_bid
        return best.block_number if best else None

    @property
    def current_debt_bid(self) -> float:
        """Highest committed debt repayment so far (0 before any bid)."""
        best = self.best_bid
        return best.debt_bid if best else 0.0

    @property
    def current_collateral_bid(self) -> float:
        """Collateral the winning bidder would currently receive."""
        best = self.best_bid
        return best.collateral_bid if best else self.collateral_lot

    def is_expired(self, block_number: int) -> bool:
        """Whether either termination condition has been reached."""
        if self.phase in (AuctionPhase.TERMINATED, AuctionPhase.FINALIZED):
            return True
        if block_number - self.start_block >= self.config.auction_length_blocks:
            return True
        last_bid = self.last_bid_block
        if last_bid is not None and block_number - last_bid >= self.config.bid_duration_blocks:
            return True
        return False

    @property
    def is_open(self) -> bool:
        """Whether the auction still accepts bids (ignoring expiry)."""
        return self.phase in (AuctionPhase.TEND, AuctionPhase.DENT)

    # ------------------------------------------------------------------ #
    # Bidding
    # ------------------------------------------------------------------ #
    def place_tend_bid(self, bidder: Address, debt_bid: float, block_number: int) -> AuctionBid:
        """Commit to repay ``debt_bid`` of the debt for the full collateral lot."""
        self._check_open(block_number)
        if self.phase is not AuctionPhase.TEND:
            raise AuctionError("auction is no longer in the tend phase")
        if debt_bid > self.debt_target + 1e-9:
            raise AuctionError("tend bid cannot exceed the debt target")
        minimum = self.current_debt_bid * (1.0 + self.config.min_bid_increase)
        if self.bids and debt_bid < minimum - 1e-12:
            raise AuctionError(
                f"tend bid {debt_bid:.6f} below minimum increment {minimum:.6f}"
            )
        if not self.bids and debt_bid <= 0:
            raise AuctionError("first tend bid must be positive")
        bid = AuctionBid(
            bidder=bidder,
            block_number=block_number,
            phase=AuctionPhase.TEND,
            debt_bid=debt_bid,
            collateral_bid=self.collateral_lot,
        )
        self.bids.append(bid)
        if debt_bid >= self.debt_target * (1.0 - 1e-12):
            self.phase = AuctionPhase.DENT
        return bid

    def place_dent_bid(self, bidder: Address, collateral_bid: float, block_number: int) -> AuctionBid:
        """Commit to accept only ``collateral_bid`` collateral for the full debt."""
        self._check_open(block_number)
        if self.phase is not AuctionPhase.DENT:
            raise AuctionError("auction is not in the dent phase")
        if collateral_bid <= 0:
            raise AuctionError("dent bid must request positive collateral")
        maximum = self.current_collateral_bid * (1.0 - self.config.min_dent_decrease)
        if collateral_bid > maximum + 1e-12:
            raise AuctionError(
                f"dent bid {collateral_bid:.6f} above maximum {maximum:.6f}"
            )
        bid = AuctionBid(
            bidder=bidder,
            block_number=block_number,
            phase=AuctionPhase.DENT,
            debt_bid=self.debt_target,
            collateral_bid=collateral_bid,
        )
        self.bids.append(bid)
        return bid

    def _check_open(self, block_number: int) -> None:
        if not self.is_open:
            raise AuctionError("auction already terminated")
        if self.is_expired(block_number):
            raise AuctionError("auction has expired; it must be finalized")

    # ------------------------------------------------------------------ #
    # Termination
    # ------------------------------------------------------------------ #
    def finalize(self, block_number: int) -> AuctionBid | None:
        """Terminate the auction and return the winning bid (``None`` if unbid).

        The winning bidder repays its committed debt and receives its
        committed collateral; the rest of the collateral (if the auction
        ended in the dent phase) goes back to the borrower.  The protocol
        layer performs those transfers.
        """
        if self.phase is AuctionPhase.FINALIZED:
            raise AuctionError("auction already finalized")
        if not self.is_expired(block_number):
            raise AuctionError("auction has not yet terminated")
        self.phase = AuctionPhase.FINALIZED
        self.finalized_block = block_number
        return self.best_bid

    # ------------------------------------------------------------------ #
    # Reporting helpers (Section 4.3.3 measurements)
    # ------------------------------------------------------------------ #
    @property
    def n_bids(self) -> int:
        """Total number of bids placed."""
        return len(self.bids)

    @property
    def n_tend_bids(self) -> int:
        """Number of bids placed in the tend phase."""
        return sum(1 for bid in self.bids if bid.phase is AuctionPhase.TEND)

    @property
    def n_dent_bids(self) -> int:
        """Number of bids placed in the dent phase."""
        return sum(1 for bid in self.bids if bid.phase is AuctionPhase.DENT)

    @property
    def n_bidders(self) -> int:
        """Number of distinct bidder addresses."""
        return len({bid.bidder for bid in self.bids})

    @property
    def terminated_in_tend(self) -> bool:
        """Whether the auction never reached the dent phase."""
        return self.n_dent_bids == 0

    def duration_blocks(self) -> int | None:
        """Blocks between initiation and finalization (Figure 7's duration)."""
        if self.finalized_block is None:
            return None
        return self.finalized_block - self.start_block

    def bid_interval_blocks(self) -> list[int]:
        """Block gaps between consecutive bids (Section 4.3.3's bid intervals)."""
        blocks = [bid.block_number for bid in self.bids]
        return [later - earlier for earlier, later in zip(blocks, blocks[1:])]

    def first_bid_delay_blocks(self) -> int | None:
        """Blocks between auction initiation and the first bid."""
        if not self.bids:
            return None
        return self.bids[0].block_number - self.start_block
