"""The optimal fixed spread liquidation strategy (Section 5.2, Algorithm 2).

A close factor CF caps the debt repayable in *one* liquidation, but a
position stays liquidatable as long as it remains unhealthy.  The optimal
strategy therefore splits the liquidation in two:

1. first repay exactly enough to keep the position *just* unhealthy
   (Equation 6: ``repay₁ = (D − LT·C) / (1 − LT(1 + LS))``), then
2. repay up to the close factor of the *remaining* debt
   (Equation 7: ``repay₂ = CF · (D − repay₁)``).

Both liquidations collect the fixed spread, so the combined profit
(Equation 8) strictly exceeds the single up-to-close-factor liquidation
whenever the position is liquidatable, with relative gain given by
Equation 9.  Section 5.2.3 analyses the "one liquidation per block"
mitigation: a mining liquidator only prefers the optimal strategy when its
mining power exceeds the threshold of Equation 12.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .terminology import LiquidationParams


class StrategyError(Exception):
    """Raised when a strategy is evaluated on an ineligible position."""


@dataclass(frozen=True)
class SimplePosition:
    """The ⟨C, D⟩ abstraction of Equation 5: total collateral and debt value (USD)."""

    collateral_usd: float
    debt_usd: float

    def health_factor(self, liquidation_threshold: float) -> float:
        """HF = C·LT / D (single-collateral form of Equation 4)."""
        if self.debt_usd <= 0:
            return math.inf
        return self.collateral_usd * liquidation_threshold / self.debt_usd

    def is_liquidatable(self, liquidation_threshold: float) -> bool:
        """Whether HF < 1."""
        return self.health_factor(liquidation_threshold) < 1.0

    @property
    def collateralization_ratio(self) -> float:
        """CR = C / D."""
        if self.debt_usd <= 0:
            return math.inf
        return self.collateral_usd / self.debt_usd


def liquidate_simple(position: SimplePosition, repay_usd: float, params: LiquidationParams) -> SimplePosition:
    """Algorithm 2's ``Liquidate``: POS′ = ⟨C − repay·(1+LS), D − repay⟩."""
    if repay_usd < 0:
        raise StrategyError("repay amount must be non-negative")
    return SimplePosition(
        collateral_usd=position.collateral_usd - repay_usd * (1.0 + params.liquidation_spread),
        debt_usd=position.debt_usd - repay_usd,
    )


@dataclass(frozen=True)
class StrategyOutcome:
    """Summary of a liquidation strategy applied to one position.

    ``repays_usd`` lists the debt value repaid in each successive
    liquidation; ``profit_usd`` is the total fixed-spread bonus collected
    (Equation 8 for the optimal strategy, ``LS·CF·D`` for up-to-close-factor).
    """

    name: str
    repays_usd: tuple[float, ...]
    profit_usd: float
    final_position: SimplePosition

    @property
    def total_repaid_usd(self) -> float:
        """Total debt value repaid across all liquidations of the strategy."""
        return sum(self.repays_usd)

    @property
    def collateral_received_usd(self) -> float:
        """Total collateral value received (repaid × (1 + LS))."""
        return self.total_repaid_usd + self.profit_usd


def up_to_close_factor_strategy(position: SimplePosition, params: LiquidationParams) -> StrategyOutcome:
    """The conventional strategy: one liquidation repaying CF·D."""
    if not position.is_liquidatable(params.liquidation_threshold):
        raise StrategyError("position is not liquidatable")
    repay = params.close_factor * position.debt_usd
    final = liquidate_simple(position, repay, params)
    profit = repay * params.liquidation_spread
    return StrategyOutcome(
        name="up-to-close-factor",
        repays_usd=(repay,),
        profit_usd=profit,
        final_position=final,
    )


def optimal_first_repay(position: SimplePosition, params: LiquidationParams) -> float:
    """Equation 6: the largest repay that keeps the position unhealthy.

    ``repay₁ = (D − LT·C) / (1 − LT(1 + LS))``.  Requires a *reasonable*
    parameterisation (Appendix C): ``1 − LT(1+LS) > 0``.
    """
    if not params.is_reasonable:
        raise StrategyError("parameters violate Appendix C's 1 - LT(1+LS) > 0 prerequisite")
    lt = params.liquidation_threshold
    ls = params.liquidation_spread
    numerator = position.debt_usd - lt * position.collateral_usd
    if numerator <= 0:
        raise StrategyError("position is not liquidatable")
    return numerator / (1.0 - lt * (1.0 + ls))


def optimal_strategy(position: SimplePosition, params: LiquidationParams) -> StrategyOutcome:
    """Algorithm 2: two successive liquidations lifting the close-factor cap."""
    if not position.is_liquidatable(params.liquidation_threshold):
        raise StrategyError("position is not liquidatable")
    repay_1 = optimal_first_repay(position, params)
    # The first repay cannot exceed the close-factor cap of the original debt;
    # if it would, the optimal strategy degenerates to up-to-close-factor.
    cap = params.close_factor * position.debt_usd
    repay_1 = min(repay_1, cap)
    intermediate = liquidate_simple(position, repay_1, params)
    repay_2 = params.close_factor * intermediate.debt_usd
    final = liquidate_simple(intermediate, repay_2, params)
    profit = (repay_1 + repay_2) * params.liquidation_spread
    return StrategyOutcome(
        name="optimal",
        repays_usd=(repay_1, repay_2),
        profit_usd=profit,
        final_position=final,
    )


def optimal_profit_closed_form(position: SimplePosition, params: LiquidationParams) -> float:
    """Equation 8: closed-form profit of the optimal strategy."""
    lt = params.liquidation_threshold
    ls = params.liquidation_spread
    cf = params.close_factor
    d = position.debt_usd
    c = position.collateral_usd
    repay_1 = (d - lt * c) / (1.0 - lt * (1.0 + ls))
    return ls * cf * d + ls * (1.0 - cf) * repay_1


def profit_increase_rate(position: SimplePosition, params: LiquidationParams) -> float:
    """Equation 9: relative profit increase of the optimal strategy.

    ``ΔR = CF/(1−CF) · (1 − LT·CR) / (1 − LT(1+LS))`` — undefined (infinite)
    when CF = 1, in which case the close factor imposes no restriction and
    the optimal strategy adds nothing.
    """
    cf = params.close_factor
    if cf >= 1.0:
        return 0.0
    lt = params.liquidation_threshold
    ls = params.liquidation_spread
    cr = position.collateralization_ratio
    return (cf / (1.0 - cf)) * (1.0 - lt * cr) / (1.0 - lt * (1.0 + ls))


@dataclass(frozen=True)
class MitigationAnalysis:
    """Section 5.2.3's expected-profit comparison under the one-per-block rule.

    ``alpha_threshold`` is Equation 12's minimum mining power above which a
    mining liquidator still prefers the optimal strategy when each position
    may only be liquidated once per block.
    """

    profit_close_factor_usd: float
    profit_optimal_first_usd: float
    profit_optimal_second_usd: float
    alpha_threshold: float

    def expected_profit_close_factor(self, alpha: float) -> float:
        """Equation 10: E[up-to-close-factor] = α · profit_c."""
        return alpha * self.profit_close_factor_usd

    def expected_profit_optimal(self, alpha: float) -> float:
        """Equation 11: E[optimal] = α · profit_o1 + α² · profit_o2."""
        return alpha * self.profit_optimal_first_usd + alpha**2 * self.profit_optimal_second_usd

    def prefers_optimal(self, alpha: float) -> bool:
        """Whether a miner with power ``alpha`` expects more from the optimal strategy."""
        return self.expected_profit_optimal(alpha) > self.expected_profit_close_factor(alpha)


def mitigation_analysis(position: SimplePosition, params: LiquidationParams) -> MitigationAnalysis:
    """Compute Equations 10–12 for a given position and parameterisation."""
    close = up_to_close_factor_strategy(position, params)
    optimal = optimal_strategy(position, params)
    profit_o1 = optimal.repays_usd[0] * params.liquidation_spread
    profit_o2 = optimal.repays_usd[1] * params.liquidation_spread
    if profit_o2 <= 0:
        alpha_threshold = math.inf
    else:
        alpha_threshold = (close.profit_usd - profit_o1) / profit_o2
    return MitigationAnalysis(
        profit_close_factor_usd=close.profit_usd,
        profit_optimal_first_usd=profit_o1,
        profit_optimal_second_usd=profit_o2,
        alpha_threshold=alpha_threshold,
    )


def compare_strategies(position: SimplePosition, params: LiquidationParams) -> dict[str, StrategyOutcome]:
    """Evaluate both strategies on the same position (Table 6's comparison)."""
    return {
        "up-to-close-factor": up_to_close_factor_strategy(position, params),
        "optimal": optimal_strategy(position, params),
    }
