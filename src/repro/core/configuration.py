"""Reasonable fixed spread configurations (Appendix C).

Appendix C derives the prerequisite under which a fixed spread liquidation
can *increase* the health factor of an over-collateralized liquidatable
position: ``1 − LT·(1 + LS) > 0``.  This module provides the health-factor
algebra of Equations 13–17 and helpers to sweep the (LT, LS) space — used by
the configuration ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .optimal_strategy import SimplePosition, liquidate_simple
from .terminology import LiquidationParams


@dataclass(frozen=True)
class ConfigurationCheck:
    """Evaluation of one (LT, LS) pair."""

    liquidation_threshold: float
    liquidation_spread: float
    is_reasonable: bool


def is_reasonable_configuration(liquidation_threshold: float, liquidation_spread: float) -> bool:
    """Appendix C's prerequisite ``1 − LT(1 + LS) > 0``."""
    return 1.0 - liquidation_threshold * (1.0 + liquidation_spread) > 0.0


def health_factor_after_liquidation(
    position: SimplePosition,
    repay_usd: float,
    params: LiquidationParams,
) -> float:
    """Equation 14: HF′ = (C − r(1+LS))·LT / (D − r)."""
    after = liquidate_simple(position, repay_usd, params)
    return after.health_factor(params.liquidation_threshold)


def liquidation_improves_health(
    position: SimplePosition,
    repay_usd: float,
    params: LiquidationParams,
) -> bool:
    """Equation 15: whether HF′ > HF for the given repay amount."""
    before = position.health_factor(params.liquidation_threshold)
    after = health_factor_after_liquidation(position, repay_usd, params)
    return after > before


def spread_upper_bound(position: SimplePosition) -> float:
    """Equation 16: a liquidation improves health only if ``1 + LS < C/D``.

    Returns the largest admissible LS for the position (negative when the
    position is under-collateralized, meaning no spread works).
    """
    return position.collateralization_ratio - 1.0


def sweep_configurations(
    thresholds: Sequence[float] | None = None,
    spreads: Sequence[float] | None = None,
) -> list[ConfigurationCheck]:
    """Evaluate the reasonableness prerequisite over a grid of (LT, LS)."""
    if thresholds is None:
        thresholds = np.round(np.arange(0.30, 1.0, 0.05), 4)
    if spreads is None:
        spreads = np.round(np.arange(0.0, 0.31, 0.025), 4)
    checks: list[ConfigurationCheck] = []
    for lt in thresholds:
        for ls in spreads:
            checks.append(
                ConfigurationCheck(
                    liquidation_threshold=float(lt),
                    liquidation_spread=float(ls),
                    is_reasonable=is_reasonable_configuration(float(lt), float(ls)),
                )
            )
    return checks


def reasonable_fraction(checks: Sequence[ConfigurationCheck]) -> float:
    """Fraction of the swept grid satisfying the prerequisite."""
    if not checks:
        return 0.0
    return sum(1 for check in checks if check.is_reasonable) / len(checks)
