"""Fixed spread liquidation model (Section 3.2.2).

The fixed spread mechanism — used by Aave, Compound and dYdX — lets a
liquidator atomically repay up to ``close_factor × debt`` and purchase
collateral at a ``1 + LS`` premium.  This module contains the *pure* model:
given a position, prices and parameters, what can be repaid, what collateral
is seized and what profit results.  The protocol classes wrap this model with
token transfers and event emission.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from .position import DUST, Position
from .terminology import LiquidationParams, collateral_to_claim


class LiquidationError(Exception):
    """Raised when a liquidation request violates the mechanism's rules."""


@dataclass(frozen=True)
class FixedSpreadQuote:
    """The outcome of a prospective fixed spread liquidation.

    All ``*_usd`` figures are valued at the supplied oracle prices, matching
    the paper's profit definition ("we assume that the purchased collateral
    is immediately sold by the liquidator at the price given by the price
    oracle", Section 4.3.1).
    """

    debt_symbol: str
    collateral_symbol: str
    repay_amount: float
    repay_usd: float
    collateral_amount: float
    collateral_usd: float
    profit_usd: float
    health_factor_before: float
    health_factor_after: float


def max_repayable_debt(
    position: Position,
    debt_symbol: str,
    params: LiquidationParams,
    prices: Mapping[str, float],
) -> float:
    """Maximum amount of ``debt_symbol`` repayable in one liquidation call.

    This is the close-factor cap of the *current* outstanding debt in that
    currency — the "up-to-close-factor" quantity of Section 5.2.
    """
    owed = position.debt.get(debt_symbol, 0.0)
    return owed * params.close_factor


def quote_liquidation(
    position: Position,
    debt_symbol: str,
    collateral_symbol: str,
    repay_amount: float,
    params: LiquidationParams,
    prices: Mapping[str, float],
    thresholds: Mapping[str, float],
    enforce_close_factor: bool = True,
) -> FixedSpreadQuote:
    """Compute the effect of repaying ``repay_amount`` of ``debt_symbol``.

    Raises :class:`LiquidationError` when the position is healthy, the repay
    amount exceeds the close-factor cap, or the collateral cannot cover the
    seizure.
    """
    if repay_amount <= 0:
        raise LiquidationError("repay amount must be positive")
    if not position.is_liquidatable(prices, thresholds):
        raise LiquidationError("position is healthy (HF >= 1); nothing to liquidate")
    owed = position.debt.get(debt_symbol, 0.0)
    if owed <= DUST:
        raise LiquidationError(f"position owes no {debt_symbol}")
    cap = owed * params.close_factor
    if enforce_close_factor and repay_amount > cap * (1 + 1e-9):
        raise LiquidationError(
            f"repay amount {repay_amount:.6f} exceeds close factor cap {cap:.6f} {debt_symbol}"
        )
    repay_amount = min(repay_amount, owed)
    debt_price = prices[debt_symbol]
    collateral_price = prices[collateral_symbol]
    repay_usd = repay_amount * debt_price
    seize_usd = collateral_to_claim(repay_usd, params.liquidation_spread)
    seize_amount = seize_usd / collateral_price
    held = position.collateral.get(collateral_symbol, 0.0)
    if seize_amount > held + 1e-9:
        # Clamp to the available collateral: the liquidator cannot seize more
        # than exists; the repay amount shrinks proportionally.
        seize_amount = held
        seize_usd = seize_amount * collateral_price
        repay_usd = seize_usd / (1.0 + params.liquidation_spread)
        repay_amount = repay_usd / debt_price
    hf_before = position.health_factor(prices, thresholds)
    preview = position.copy()
    preview.reduce_debt(debt_symbol, min(repay_amount, preview.debt.get(debt_symbol, 0.0)))
    preview.remove_collateral(collateral_symbol, min(seize_amount, preview.collateral.get(collateral_symbol, 0.0)))
    hf_after = preview.health_factor(prices, thresholds)
    return FixedSpreadQuote(
        debt_symbol=debt_symbol,
        collateral_symbol=collateral_symbol,
        repay_amount=repay_amount,
        repay_usd=repay_usd,
        collateral_amount=seize_amount,
        collateral_usd=seize_usd,
        profit_usd=seize_usd - repay_usd,
        health_factor_before=hf_before,
        health_factor_after=hf_after,
    )


def apply_liquidation(
    position: Position,
    quote: FixedSpreadQuote,
) -> None:
    """Apply a previously computed quote to the position (mutating it)."""
    position.reduce_debt(quote.debt_symbol, min(quote.repay_amount, position.debt.get(quote.debt_symbol, 0.0)))
    position.remove_collateral(
        quote.collateral_symbol,
        min(quote.collateral_amount, position.collateral.get(quote.collateral_symbol, 0.0)),
    )


def liquidate(
    position: Position,
    debt_symbol: str,
    collateral_symbol: str,
    repay_amount: float,
    params: LiquidationParams,
    prices: Mapping[str, float],
    thresholds: Mapping[str, float],
    enforce_close_factor: bool = True,
) -> FixedSpreadQuote:
    """Quote and immediately apply a fixed spread liquidation."""
    quote = quote_liquidation(
        position,
        debt_symbol,
        collateral_symbol,
        repay_amount,
        params,
        prices,
        thresholds,
        enforce_close_factor=enforce_close_factor,
    )
    apply_liquidation(position, quote)
    return quote
