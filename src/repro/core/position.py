"""Borrowing positions: multi-asset collateral and debt accounting.

"In this work, the collateral and debts are collectively referred to as a
position.  A position may consist of multiple-cryptocurrency collaterals and
debts." (Section 2.3).  The :class:`Position` class is the single accounting
object shared by all four protocol implementations; the core formulas come
from :mod:`repro.core.terminology`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from ..chain.types import Address
from .terminology import (
    borrowing_capacity,
    collateralization_ratio,
    health_factor,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .position_book import PositionBook

#: Token amounts below this threshold are treated as zero ("dust") when
#: deciding whether a position still owes debt or holds collateral.
DUST = 1e-9


@dataclass
class Position:
    """The collateral and debt of one borrower on one protocol.

    Collateral and debt are stored as token *amounts* per symbol; USD values
    are always computed against an externally supplied price mapping so the
    same position can be valued at any block.
    """

    owner: Address
    collateral: dict[str, float] = field(default_factory=dict)
    debt: dict[str, float] = field(default_factory=dict)
    #: Columnar book mirroring this position, if any (set by
    #: :meth:`repro.core.position_book.PositionBook.attach`).
    _book: "PositionBook | None" = field(default=None, repr=False, compare=False)
    _row: int = field(default=-1, repr=False, compare=False)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def _touch(self) -> None:
        """Notify the attached book (if any) that this position changed."""
        if self._book is not None:
            self._book.mark_dirty(self._row)

    def add_collateral(self, symbol: str, amount: float) -> None:
        """Deposit ``amount`` of ``symbol`` as collateral."""
        if amount < 0:
            raise ValueError("collateral amount must be non-negative")
        self.collateral[symbol] = self.collateral.get(symbol, 0.0) + amount
        self._touch()

    def remove_collateral(self, symbol: str, amount: float) -> None:
        """Withdraw ``amount`` of ``symbol`` collateral."""
        held = self.collateral.get(symbol, 0.0)
        if amount > held + DUST:
            raise ValueError(f"cannot remove {amount} {symbol}; only {held} held")
        remaining = held - amount
        if remaining <= DUST:
            self.collateral.pop(symbol, None)
        else:
            self.collateral[symbol] = remaining
        self._touch()

    def add_debt(self, symbol: str, amount: float) -> None:
        """Borrow ``amount`` of ``symbol``."""
        if amount < 0:
            raise ValueError("debt amount must be non-negative")
        self.debt[symbol] = self.debt.get(symbol, 0.0) + amount
        self._touch()

    def reduce_debt(self, symbol: str, amount: float) -> None:
        """Repay ``amount`` of the ``symbol`` debt."""
        owed = self.debt.get(symbol, 0.0)
        if amount > owed + 1e-6:
            raise ValueError(f"cannot repay {amount} {symbol}; only {owed} owed")
        remaining = owed - amount
        if remaining <= DUST:
            self.debt.pop(symbol, None)
        else:
            self.debt[symbol] = remaining
        self._touch()

    def scale_debt(self, factor: float) -> None:
        """Multiply every debt amount by ``factor`` (interest accrual)."""
        if factor < 0:
            raise ValueError("interest factor must be non-negative")
        for symbol in list(self.debt):
            self.debt[symbol] *= factor
        self._touch()

    def scale_debts(self, factors: Mapping[str, float]) -> None:
        """Multiply each debt amount by its per-symbol factor (default 1)."""
        if not self.debt:
            return
        for symbol in list(self.debt):
            self.debt[symbol] *= factors.get(symbol, 1.0)
        self._touch()

    def clear(self) -> None:
        """Wipe all collateral and debt (insurance-fund write-off)."""
        self.collateral.clear()
        self.debt.clear()
        self._touch()

    # ------------------------------------------------------------------ #
    # Valuation
    # ------------------------------------------------------------------ #
    def collateral_values(self, prices: Mapping[str, float]) -> dict[str, float]:
        """USD value of each collateral asset."""
        return {symbol: amount * prices[symbol] for symbol, amount in self.collateral.items()}

    def debt_values(self, prices: Mapping[str, float]) -> dict[str, float]:
        """USD value of each debt asset."""
        return {symbol: amount * prices[symbol] for symbol, amount in self.debt.items()}

    def total_collateral_usd(self, prices: Mapping[str, float]) -> float:
        """Total USD value of the collateral."""
        return sum(self.collateral_values(prices).values())

    def total_debt_usd(self, prices: Mapping[str, float]) -> float:
        """Total USD value of the debt."""
        return sum(self.debt_values(prices).values())

    def borrowing_capacity(self, prices: Mapping[str, float], thresholds: Mapping[str, float]) -> float:
        """Equation 3 applied to this position."""
        return borrowing_capacity(self.collateral_values(prices), thresholds)

    def health_factor(self, prices: Mapping[str, float], thresholds: Mapping[str, float]) -> float:
        """Equation 4 applied to this position."""
        return health_factor(self.borrowing_capacity(prices, thresholds), self.total_debt_usd(prices))

    def collateralization_ratio(self, prices: Mapping[str, float]) -> float:
        """Equation 2 applied to this position."""
        return collateralization_ratio(self.total_collateral_usd(prices), self.total_debt_usd(prices))

    def is_liquidatable(self, prices: Mapping[str, float], thresholds: Mapping[str, float]) -> bool:
        """Whether the position can currently be liquidated (HF < 1)."""
        return self.health_factor(prices, thresholds) < 1.0

    def is_under_collateralized(self, prices: Mapping[str, float]) -> bool:
        """Whether the collateral value no longer covers the debt (CR < 1)."""
        return self.collateralization_ratio(prices) < 1.0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def has_debt(self) -> bool:
        """Whether any debt above dust remains."""
        return any(amount > DUST for amount in self.debt.values())

    @property
    def has_collateral(self) -> bool:
        """Whether any collateral above dust remains."""
        return any(amount > DUST for amount in self.collateral.values())

    @property
    def is_empty(self) -> bool:
        """Whether the position carries neither debt nor collateral."""
        return not self.has_debt and not self.has_collateral

    def collateral_symbols(self) -> list[str]:
        """Symbols currently held as collateral."""
        return sorted(symbol for symbol, amount in self.collateral.items() if amount > DUST)

    def debt_symbols(self) -> list[str]:
        """Symbols currently owed as debt."""
        return sorted(symbol for symbol, amount in self.debt.items() if amount > DUST)

    def copy(self) -> "Position":
        """Deep copy of the position (used for what-if evaluations)."""
        return Position(owner=self.owner, collateral=dict(self.collateral), debt=dict(self.debt))

    def summary(self, prices: Mapping[str, float], thresholds: Mapping[str, float]) -> dict[str, float]:
        """A flat dictionary of the position's headline numbers."""
        return {
            "collateral_usd": self.total_collateral_usd(prices),
            "debt_usd": self.total_debt_usd(prices),
            "borrowing_capacity_usd": self.borrowing_capacity(prices, thresholds),
            "health_factor": self.health_factor(prices, thresholds),
            "collateralization_ratio": self.collateralization_ratio(prices),
        }
