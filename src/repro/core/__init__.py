"""Core contribution of the paper: liquidation models, metrics and strategies.

This package is deliberately free of any chain or protocol machinery — it is
the pure financial model (Equations 1–17, Algorithms 1–2) that the protocol
implementations, analytics pipeline and experiments all build on.
"""

from .auction import (
    AuctionBid,
    AuctionConfig,
    AuctionError,
    AuctionPhase,
    TendDentAuction,
)
from .bad_debt import (
    BadDebtRecord,
    BadDebtReport,
    BadDebtType,
    bad_debt_report,
    classify_position,
)
from .comparison import (
    ProfitVolumePoint,
    average_ratio_by_platform,
    borrower_favourability,
    median_ratio_by_platform,
    monthly_profit_volume_ratios,
    rank_platforms,
)
from .configuration import (
    ConfigurationCheck,
    is_reasonable_configuration,
    health_factor_after_liquidation,
    liquidation_improves_health,
    reasonable_fraction,
    spread_upper_bound,
    sweep_configurations,
)
from .fixed_spread import (
    FixedSpreadQuote,
    LiquidationError,
    apply_liquidation,
    liquidate,
    max_repayable_debt,
    quote_liquidation,
)
from .optimal_strategy import (
    MitigationAnalysis,
    SimplePosition,
    StrategyError,
    StrategyOutcome,
    compare_strategies,
    liquidate_simple,
    mitigation_analysis,
    optimal_first_repay,
    optimal_profit_closed_form,
    optimal_strategy,
    profit_increase_rate,
    up_to_close_factor_strategy,
)
from .position import DUST, Position
from .sensitivity import (
    SensitivityPoint,
    liquidatable_collateral,
    most_sensitive_symbol,
    sensitivity_curve,
    sensitivity_surface,
)
from .terminology import (
    LiquidationParams,
    borrowing_capacity,
    collateral_to_claim,
    collateralization_ratio,
    health_factor,
    is_liquidatable,
    is_under_collateralized,
    liquidation_profit,
)
from .unprofitable import (
    OpportunityRecord,
    UnprofitableReport,
    best_liquidation_profit,
    find_opportunities,
    unprofitable_report,
)

__all__ = [
    "AuctionBid",
    "AuctionConfig",
    "AuctionError",
    "AuctionPhase",
    "BadDebtRecord",
    "BadDebtReport",
    "BadDebtType",
    "ConfigurationCheck",
    "DUST",
    "FixedSpreadQuote",
    "LiquidationError",
    "LiquidationParams",
    "MitigationAnalysis",
    "OpportunityRecord",
    "Position",
    "ProfitVolumePoint",
    "SensitivityPoint",
    "SimplePosition",
    "StrategyError",
    "StrategyOutcome",
    "TendDentAuction",
    "UnprofitableReport",
    "apply_liquidation",
    "average_ratio_by_platform",
    "bad_debt_report",
    "best_liquidation_profit",
    "borrower_favourability",
    "borrowing_capacity",
    "classify_position",
    "collateral_to_claim",
    "collateralization_ratio",
    "compare_strategies",
    "find_opportunities",
    "health_factor",
    "health_factor_after_liquidation",
    "is_liquidatable",
    "is_reasonable_configuration",
    "is_under_collateralized",
    "liquidatable_collateral",
    "liquidate",
    "liquidate_simple",
    "liquidation_improves_health",
    "liquidation_profit",
    "max_repayable_debt",
    "median_ratio_by_platform",
    "mitigation_analysis",
    "monthly_profit_volume_ratios",
    "most_sensitive_symbol",
    "optimal_first_repay",
    "optimal_profit_closed_form",
    "optimal_strategy",
    "profit_increase_rate",
    "quote_liquidation",
    "rank_platforms",
    "reasonable_fraction",
    "sensitivity_curve",
    "sensitivity_surface",
    "spread_upper_bound",
    "sweep_configurations",
    "unprofitable_report",
    "up_to_close_factor_strategy",
]
