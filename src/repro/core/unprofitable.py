"""Unprofitable liquidation opportunities (Section 4.4.3, Table 3).

A liquidation opportunity is *unprofitable* if the fixed-spread bonus the
liquidator would collect cannot cover the transaction fee.  Rational
liquidators skip such positions, which therefore drift into Type I bad debt
if their health keeps deteriorating.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from .fixed_spread import max_repayable_debt
from .position import Position
from .terminology import LiquidationParams


@dataclass(frozen=True)
class OpportunityRecord:
    """One liquidatable position and the best profit available on it."""

    owner: str
    collateral_usd: float
    debt_usd: float
    best_profit_usd: float
    is_profitable: bool


@dataclass(frozen=True)
class UnprofitableReport:
    """Aggregate unprofitable-opportunity statistics (one Table 3 cell)."""

    transaction_fee_usd: float
    liquidatable_positions: int
    unprofitable_count: int
    unprofitable_collateral_usd: float

    @property
    def unprofitable_share(self) -> float:
        """Fraction of liquidatable positions that are unprofitable to liquidate."""
        if self.liquidatable_positions == 0:
            return 0.0
        return self.unprofitable_count / self.liquidatable_positions


def best_liquidation_profit(
    position: Position,
    params: LiquidationParams,
    prices: Mapping[str, float],
) -> float:
    """The maximum single-liquidation bonus available on ``position``.

    The liquidator repays the close-factor cap of the largest debt market and
    seizes the most valuable collateral; the bonus is the spread on the
    repaid value (bounded by the collateral actually available).
    """
    debt_values = position.debt_values(prices)
    collateral_values = position.collateral_values(prices)
    if not debt_values or not collateral_values:
        return 0.0
    debt_symbol = max(debt_values, key=debt_values.get)
    collateral_symbol = max(collateral_values, key=collateral_values.get)
    repay_amount = max_repayable_debt(position, debt_symbol, params, prices)
    repay_usd = repay_amount * prices[debt_symbol]
    seize_usd = repay_usd * (1.0 + params.liquidation_spread)
    available = collateral_values[collateral_symbol]
    if seize_usd > available:
        seize_usd = available
        repay_usd = seize_usd / (1.0 + params.liquidation_spread)
    return seize_usd - repay_usd


def find_opportunities(
    positions: Iterable[Position],
    params: LiquidationParams,
    prices: Mapping[str, float],
    thresholds: Mapping[str, float],
    transaction_fee_usd: float,
) -> list[OpportunityRecord]:
    """Enumerate liquidatable positions and evaluate their profitability."""
    records: list[OpportunityRecord] = []
    for position in positions:
        if not position.has_debt:
            continue
        if not position.is_liquidatable(prices, thresholds):
            continue
        profit = best_liquidation_profit(position, params, prices)
        records.append(
            OpportunityRecord(
                owner=position.owner.value,
                collateral_usd=position.total_collateral_usd(prices),
                debt_usd=position.total_debt_usd(prices),
                best_profit_usd=profit,
                is_profitable=profit > transaction_fee_usd,
            )
        )
    return records


def unprofitable_report(
    positions: Iterable[Position],
    params: LiquidationParams,
    prices: Mapping[str, float],
    thresholds: Mapping[str, float],
    transaction_fee_usd: float,
) -> UnprofitableReport:
    """Aggregate counts and collateral of unprofitable liquidation opportunities."""
    records = find_opportunities(positions, params, prices, thresholds, transaction_fee_usd)
    unprofitable = [record for record in records if not record.is_profitable]
    return UnprofitableReport(
        transaction_fee_usd=transaction_fee_usd,
        liquidatable_positions=len(records),
        unprofitable_count=len(unprofitable),
        unprofitable_collateral_usd=sum(record.collateral_usd for record in unprofitable),
    )
