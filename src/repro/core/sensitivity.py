"""Liquidation sensitivity to price declines (Section 4.5.1, Algorithm 1).

Given a snapshot of every borrowing position on a platform, the sensitivity
of the platform to a ``d %`` decline of currency ℭ is the total USD value of
collateral that would become liquidatable under that decline, with the
collateral itself re-valued at the declined price.

The implementation below is a direct transcription of Algorithm 1 so that it
can be audited line-by-line against the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from .position import Position


@dataclass(frozen=True)
class SensitivityPoint:
    """One point of a sensitivity curve."""

    decline: float
    liquidatable_collateral_usd: float


def liquidatable_collateral(
    positions: Iterable[Position],
    target_symbol: str,
    decline: float,
    prices: Mapping[str, float],
    thresholds: Mapping[str, float],
) -> float:
    """Algorithm 1: total liquidatable collateral under a price decline.

    Parameters
    ----------
    positions:
        The borrower set ``{B_i}`` of the platform snapshot.
    target_symbol:
        The currency ℭ whose price declines.
    decline:
        The decline percentage ``d%`` expressed as a fraction in [0, 1].
    prices:
        Oracle prices (USD) at the snapshot block.
    thresholds:
        Per-asset liquidation thresholds ``LT_c`` of the platform.
    """
    if not 0.0 <= decline <= 1.0:
        raise ValueError("decline must be a fraction in [0, 1]")
    target = target_symbol.upper()
    total_liquidatable = 0.0
    for position in positions:
        collateral_values = position.collateral_values(prices)
        if target not in collateral_values or collateral_values[target] <= 0:
            # Algorithm 1 only considers borrowers owning collateral in ℭ.
            continue
        # Collateral value of B after the price decline.
        collateral_after = sum(collateral_values.values()) - collateral_values[target] * decline
        # Borrowing capacity of B after the price decline.
        capacity_after = sum(
            value * thresholds.get(symbol, 0.0) for symbol, value in collateral_values.items()
        )
        capacity_after -= collateral_values[target] * thresholds.get(target, 0.0) * decline
        # Debt value of B after the price decline.
        debt_values = position.debt_values(prices)
        debt_after = sum(debt_values.values())
        if target in debt_values:
            debt_after -= debt_values[target] * decline
        if capacity_after < debt_after:
            total_liquidatable += collateral_after
    return total_liquidatable


def sensitivity_curve(
    positions: Sequence[Position],
    target_symbol: str,
    prices: Mapping[str, float],
    thresholds: Mapping[str, float],
    declines: Sequence[float] | None = None,
) -> list[SensitivityPoint]:
    """Evaluate Algorithm 1 over a grid of declines (Figure 8's x-axis)."""
    if declines is None:
        declines = np.linspace(0.0, 1.0, 21)
    curve = []
    for decline in declines:
        value = liquidatable_collateral(positions, target_symbol, float(decline), prices, thresholds)
        curve.append(SensitivityPoint(decline=float(decline), liquidatable_collateral_usd=value))
    return curve


def sensitivity_surface(
    positions: Sequence[Position],
    symbols: Iterable[str],
    prices: Mapping[str, float],
    thresholds: Mapping[str, float],
    declines: Sequence[float] | None = None,
) -> dict[str, list[SensitivityPoint]]:
    """Sensitivity curves for several collateral currencies (one Figure 8 panel)."""
    return {
        symbol.upper(): sensitivity_curve(positions, symbol, prices, thresholds, declines)
        for symbol in symbols
    }


def most_sensitive_symbol(surface: Mapping[str, list[SensitivityPoint]]) -> str | None:
    """The currency whose decline liquidates the most collateral.

    Sensitivity is judged by the *peak* of each curve rather than its 100 %
    endpoint: Algorithm 1 values collateral after the decline, so at a 100 %
    decline a single-collateral position contributes nothing even though the
    platform is clearly exposed to that currency.  The paper finds ETH is the
    most sensitive currency on all four platforms.
    """
    best_symbol = None
    best_value = -1.0
    for symbol, curve in surface.items():
        if not curve:
            continue
        value = max(point.liquidatable_collateral_usd for point in curve)
        if value > best_value:
            best_value = value
            best_symbol = symbol
    return best_symbol
