"""Columnar position book: NumPy-backed health-factor scans.

Deciding which of thousands of borrowing positions are liquidatable
(HF < 1, Equation 4) at every block is the measurement pipeline's dominant
cost when done position-by-position: each scalar check rebuilds per-asset
USD value dictionaries just to sum them.  The :class:`PositionBook` keeps
the same data as two dense ``(positions × assets)`` NumPy matrices of token
*amounts* so one whole-protocol scan is two matrix-vector products::

    BC   = C · (P ∘ LT)        # Equation 3 for every position at once
    debt = D · P               # Σ debt value for every position at once
    HF   = BC / debt           # Equation 4, liquidatable where HF < 1

The book is a *cache over* the canonical :class:`~repro.core.position.Position`
dictionaries, not a replacement: every ``Position`` mutator notifies the book
(dirty-row tracking) and :meth:`sync` re-materializes only the dirty rows
before a scan.  Scans therefore cost O(dirty rows) bookkeeping plus one
vectorized pass, instead of O(positions) dictionary churn per step.

Exactness: NumPy's dot products may sum in a different order than the scalar
Python path, so the vectorized comparison against 1 could disagree with the
scalar health factor within a few ulps at the boundary.  The scan is
therefore used as a *conservative prefilter* — rows are selected with a
relative safety margin (:data:`SCAN_MARGIN`, several orders of magnitude
wider than the worst-case dot-product rounding) and callers confirm each
flagged row with the scalar formula.  That keeps vectorized runs
bit-identical to scalar runs while only paying the scalar cost on the
handful of flagged rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

import numpy as np

from .position import DUST

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .position import Position

#: Relative safety margin of the vectorized prefilter.  A row is flagged as a
#: liquidation candidate when ``BC < debt × (1 + SCAN_MARGIN)``; the scalar
#: confirmation then decides exactly.  Dot-product rounding is bounded by
#: ``n_assets × machine-epsilon ≈ 1e-14`` relative, so 1e-9 cannot produce a
#: false negative.
SCAN_MARGIN = 1e-9


@dataclass(frozen=True)
class BookScan:
    """One vectorized valuation pass over every position in a book.

    All arrays are indexed by book row (creation order, which matches the
    protocol's ``positions`` dict iteration order).
    """

    book: "PositionBook"
    collateral_usd: np.ndarray
    debt_usd: np.ndarray
    borrowing_capacity_usd: np.ndarray
    has_debt: np.ndarray
    has_collateral: np.ndarray

    def health_factors(self) -> np.ndarray:
        """Equation 4 per row; ``inf`` where the row owes nothing."""
        hf = np.full(self.debt_usd.shape, np.inf)
        np.divide(
            self.borrowing_capacity_usd,
            self.debt_usd,
            out=hf,
            where=self.debt_usd > 0.0,
        )
        return hf

    def candidate_rows(self, require_collateral: bool = False) -> np.ndarray:
        """Rows that *may* be liquidatable (HF < 1 up to :data:`SCAN_MARGIN`).

        This is the conservative prefilter: every truly liquidatable row is
        included, a boundary row within the margin may be flagged spuriously.
        Callers confirm with the scalar ``Position.is_liquidatable``.
        """
        mask = (
            self.has_debt
            & (self.debt_usd > 0.0)
            & (self.borrowing_capacity_usd < self.debt_usd * (1.0 + SCAN_MARGIN))
        )
        if require_collateral:
            mask &= self.has_collateral
        return np.flatnonzero(mask)

    def under_collateralized_rows(self) -> np.ndarray:
        """Rows that *may* have CR < 1 (Equation 2), margin as above."""
        mask = (
            self.has_debt
            & (self.debt_usd > 0.0)
            & (self.collateral_usd < self.debt_usd * (1.0 + SCAN_MARGIN))
        )
        return np.flatnonzero(mask)

    def positions(self, rows: np.ndarray) -> list["Position"]:
        """The :class:`Position` objects behind ``rows`` (in row order)."""
        return [self.book.position_at(int(row)) for row in rows]


class PositionBook:
    """Dense columnar mirror of a protocol's positions.

    Rows are positions in creation order; columns are asset symbols.  The
    amounts are mirrored from the canonical ``Position`` dictionaries via
    dirty-row tracking: attach a position with :meth:`attach` and every
    subsequent ``Position`` mutation marks its row for re-sync.
    """

    def __init__(self) -> None:
        self._assets: list[str] = []
        self._asset_cols: dict[str, int] = {}
        self._positions: list[Position] = []
        self._collateral = np.zeros((0, 0))
        self._debt = np.zeros((0, 0))
        self._dirty: set[int] = set()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._positions)

    @property
    def assets(self) -> tuple[str, ...]:
        """Tracked asset columns, in column order."""
        return tuple(self._assets)

    @property
    def dirty_rows(self) -> frozenset[int]:
        """Rows awaiting re-sync (observable for tests and diagnostics)."""
        return frozenset(self._dirty)

    def position_at(self, row: int) -> "Position":
        """The position stored at ``row``."""
        return self._positions[row]

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #
    def ensure_asset(self, symbol: str) -> int:
        """Register (idempotently) a column for ``symbol`` and return it.

        Symbols are stored verbatim — the book must value exactly the keys
        the position dictionaries hold, with the same missing-threshold /
        missing-price semantics as the scalar formulas.
        """
        col = self._asset_cols.get(symbol)
        if col is None:
            col = len(self._assets)
            self._asset_cols[symbol] = col
            self._assets.append(symbol)
            self._grow(len(self._positions), len(self._assets))
        return col

    def attach(self, position: "Position") -> int:
        """Track ``position`` in the book and return its row."""
        if position._book is not None:
            raise ValueError("position is already attached to a book")
        row = len(self._positions)
        self._positions.append(position)
        self._grow(len(self._positions), len(self._assets))
        position._book = self
        position._row = row
        self._dirty.add(row)
        return row

    def mark_dirty(self, row: int) -> None:
        """Schedule ``row`` for re-materialization at the next sync."""
        self._dirty.add(row)

    def _grow(self, rows: int, cols: int) -> None:
        cap_rows, cap_cols = self._collateral.shape
        if rows <= cap_rows and cols <= cap_cols:
            return
        new_rows = cap_rows if rows <= cap_rows else max(rows, 2 * cap_rows, 64)
        new_cols = cap_cols if cols <= cap_cols else max(cols, 2 * cap_cols, 8)
        collateral = np.zeros((new_rows, new_cols))
        debt = np.zeros((new_rows, new_cols))
        if cap_rows and cap_cols:
            collateral[:cap_rows, :cap_cols] = self._collateral
            debt[:cap_rows, :cap_cols] = self._debt
        self._collateral = collateral
        self._debt = debt

    # ------------------------------------------------------------------ #
    # Sync and scan
    # ------------------------------------------------------------------ #
    def sync(self) -> int:
        """Flush dirty rows from the position dicts into the matrices.

        Returns the number of rows refreshed.
        """
        if not self._dirty:
            return 0
        for row in self._dirty:
            position = self._positions[row]
            for symbol in position.collateral:
                self.ensure_asset(symbol)
            for symbol in position.debt:
                self.ensure_asset(symbol)
        cols = self._asset_cols
        n_assets = len(self._assets)
        refreshed = len(self._dirty)
        for row in self._dirty:
            position = self._positions[row]
            self._collateral[row, :n_assets] = 0.0
            self._debt[row, :n_assets] = 0.0
            for symbol, amount in position.collateral.items():
                self._collateral[row, cols[symbol]] = amount
            for symbol, amount in position.debt.items():
                self._debt[row, cols[symbol]] = amount
        self._dirty.clear()
        return refreshed

    def scan(self, prices: Mapping[str, float], thresholds: Mapping[str, float]) -> BookScan:
        """One vectorized valuation of every position at ``prices``.

        Missing prices value an asset at 0 and missing thresholds contribute
        no borrowing capacity, mirroring ``terminology.borrowing_capacity``.
        """
        self.sync()
        n_rows = len(self._positions)
        n_assets = len(self._assets)
        price_vec = np.fromiter(
            (prices.get(symbol, 0.0) for symbol in self._assets), dtype=float, count=n_assets
        )
        lt_vec = np.fromiter(
            (thresholds.get(symbol, 0.0) for symbol in self._assets), dtype=float, count=n_assets
        )
        collateral = self._collateral[:n_rows, :n_assets]
        debt = self._debt[:n_rows, :n_assets]
        return BookScan(
            book=self,
            collateral_usd=collateral @ price_vec,
            debt_usd=debt @ price_vec,
            borrowing_capacity_usd=collateral @ (price_vec * lt_vec),
            has_debt=(debt > DUST).any(axis=1),
            has_collateral=(collateral > DUST).any(axis=1),
        )
