"""Columnar position book: NumPy-backed health-factor scans.

Deciding which of thousands of borrowing positions are liquidatable
(HF < 1, Equation 4) at every block is the measurement pipeline's dominant
cost when done position-by-position: each scalar check rebuilds per-asset
USD value dictionaries just to sum them.  The :class:`PositionBook` keeps
the same data as two dense ``(positions × assets)`` NumPy matrices of token
*amounts* so one whole-protocol scan is two matrix-vector products::

    BC   = C · (P ∘ LT)        # Equation 3 for every position at once
    debt = D · P               # Σ debt value for every position at once
    HF   = BC / debt           # Equation 4, liquidatable where HF < 1

The book is a *cache over* the canonical :class:`~repro.core.position.Position`
dictionaries, not a replacement: every ``Position`` mutator notifies the book
(dirty-row tracking) and :meth:`sync` re-materializes only the dirty rows
before a scan.  Scans therefore cost O(dirty rows) bookkeeping plus one
vectorized pass, instead of O(positions) dictionary churn per step.

Exactness: NumPy's dot products may sum in a different order than the scalar
Python path, so the vectorized comparison against 1 could disagree with the
scalar health factor within a few ulps at the boundary.  The scan is
therefore used as a *conservative prefilter* — rows are selected with a
relative safety margin (:data:`SCAN_MARGIN`, several orders of magnitude
wider than the worst-case dot-product rounding) and callers confirm each
flagged row with the scalar formula.  That keeps vectorized runs
bit-identical to scalar runs while only paying the scalar cost on the
handful of flagged rows.

Aggregate valuations (:class:`BookValuation`) extend the same bargain to the
protocol totals (TVL, outstanding debt, snapshot health factors): the bulk
of the work is vectorized, and the float-sum-order question is resolved by a
*pinned* reduction that is bit-identical to the legacy per-position walk by
construction rather than by margin:

* every per-term product is computed exactly as the scalar path computes it
  (``amount × price``, then ``value × LT`` — never the re-associated
  ``amount × (price × LT)`` a fused matrix-vector product would use);
* a row whose collateral (or debt) has at most two nonzero entries sums
  identically under *any* summation tree — zeros are exact identities and
  float addition is commutative — so its vectorized row-sum already equals
  the scalar dict walk bit-for-bit;
* the few rows with three or more nonzero entries (where tree order starts
  to matter) are recomputed with a tight scalar loop mirroring the
  ``Position`` formulas term-for-term;
* the cross-position reduction runs left-to-right in row order (positions'
  creation order, which is exactly the ``positions`` dict iteration order
  the scalar walk uses).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING, Mapping

import numpy as np

from .. import sanitize
from ..telemetry import runtime as telemetry
from .position import DUST

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .position import Position

#: Relative safety margin of the vectorized prefilter.  A row is flagged as a
#: liquidation candidate when ``BC < debt × (1 + SCAN_MARGIN)``; the scalar
#: confirmation then decides exactly.  Dot-product rounding is bounded by
#: ``n_assets × machine-epsilon ≈ 1e-14`` relative, so 1e-9 cannot produce a
#: false negative.
SCAN_MARGIN = 1e-9

#: Maximum number of nonzero terms for which *any* floating-point summation
#: tree is guaranteed bit-identical to the scalar left-to-right dict walk:
#: adding 0.0 is an exact identity and two-term addition is commutative, so
#: only rows with three or more nonzero entries can disagree in the last ulp
#: and need the scalar fixup of :class:`BookValuation`.
_EXACT_TREE_MAX_NNZ = 2




@dataclass(frozen=True)
class BookScan:
    """One vectorized valuation pass over every position in a book.

    All arrays are indexed by book row (creation order, which matches the
    protocol's ``positions`` dict iteration order).
    """

    book: "PositionBook"
    collateral_usd: np.ndarray
    debt_usd: np.ndarray
    borrowing_capacity_usd: np.ndarray
    has_debt: np.ndarray
    has_collateral: np.ndarray

    def health_factors(self) -> np.ndarray:
        """Equation 4 per row; ``inf`` where the row owes nothing."""
        hf = np.full(self.debt_usd.shape, np.inf)
        np.divide(
            self.borrowing_capacity_usd,
            self.debt_usd,
            out=hf,
            where=self.debt_usd > 0.0,
        )
        return hf

    def candidate_rows(self, require_collateral: bool = False) -> np.ndarray:
        """Rows that *may* be liquidatable (HF < 1 up to :data:`SCAN_MARGIN`).

        This is the conservative prefilter: every truly liquidatable row is
        included, a boundary row within the margin may be flagged spuriously.
        Callers confirm with the scalar ``Position.is_liquidatable``.
        """
        mask = (
            self.has_debt
            & (self.debt_usd > 0.0)
            & (self.borrowing_capacity_usd < self.debt_usd * (1.0 + SCAN_MARGIN))
        )
        if require_collateral:
            mask &= self.has_collateral
        return np.flatnonzero(mask)

    def under_collateralized_rows(self) -> np.ndarray:
        """Rows that *may* have CR < 1 (Equation 2), margin as above."""
        mask = (
            self.has_debt
            & (self.debt_usd > 0.0)
            & (self.collateral_usd < self.debt_usd * (1.0 + SCAN_MARGIN))
        )
        return np.flatnonzero(mask)

    def positions(self, rows: np.ndarray) -> list["Position"]:
        """The :class:`Position` objects behind ``rows`` (in row order)."""
        return [self.book.position_at(int(row)) for row in rows]


class BookValuation:
    """One aggregate valuation of every position in a book at fixed prices.

    Built by :meth:`PositionBook.valuation` (and cached per block by
    :meth:`repro.protocols.base.LendingProtocol.valuation`), this is the
    single vectorized pass behind the protocol totals, snapshots, analytics
    sweeps and the :class:`~repro.observers.probes.HealthFactorWatcher`.

    Two tiers of results are exposed:

    * the *fast* per-row arrays (:attr:`collateral_usd`, :attr:`debt_usd`,
      :attr:`borrowing_capacity_usd`, :meth:`health_factors`,
      :meth:`total_collateral_usd`, …) — pure NumPy reductions, within a few
      ulps of the scalar formulas; they feed fast paths and probes where a
      last-ulp difference is irrelevant;
    * the *pinned* accessors (:meth:`pinned_total_collateral_usd`,
      :meth:`pinned_total_debt_usd`, :meth:`pinned_health_factors`,
      :meth:`pinned_row_values`) — bit-identical to the legacy per-position
      scalar walk by construction (see the module docstring), used for every
      seed-pinned output: archive snapshots, protocol totals, report JSON.

    The per-term products are computed exactly as the scalar path computes
    them: ``values = amounts × prices`` elementwise, then capacity terms as
    ``values × LT`` — deliberately *not* the re-associated
    ``amounts · (prices ∘ LT)`` matrix-vector product of :class:`BookScan`,
    whose BLAS kernel may also fuse multiply-adds.
    """

    def __init__(
        self,
        book: "PositionBook",
        prices: Mapping[str, float],
        thresholds: Mapping[str, float],
        collateral_values: np.ndarray,
        debt_values: np.ndarray,
    ) -> None:
        self.book = book
        #: The price mapping the valuation was computed at (shared, not copied).
        self.prices = prices
        #: The liquidation-threshold mapping used for borrowing capacities.
        self.thresholds = thresholds
        #: Per-``(row, asset)`` USD collateral values (``amount × price``).
        self.collateral_values = collateral_values
        #: Per-``(row, asset)`` USD debt values (``amount × price``).
        self.debt_values = debt_values
        lt_vec = np.fromiter(
            (thresholds.get(symbol, 0.0) for symbol in book.assets),
            dtype=float,
            count=len(book.assets),
        )
        #: Per-row USD totals (fast tier; exact for rows with ≤ 2 nonzero terms).
        self.collateral_usd = collateral_values.sum(axis=1)
        self.debt_usd = debt_values.sum(axis=1)
        self.borrowing_capacity_usd = (collateral_values * lt_vec).sum(axis=1)
        self._pinned: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self._built_at_revision = book.revision

    def _require_unmutated(self) -> None:
        """Guard for lazy accessors that read live book state.

        The valuation is a snapshot: its eager arrays were frozen at
        construction, so a lazy first access after a book mutation would
        silently mix two states.  Fail loudly instead (already-materialized
        lazy values keep being served — they were captured while fresh).
        """
        if self.book.revision != self._built_at_revision:
            raise RuntimeError(
                "positions mutated since this valuation was built; "
                "request a fresh one (e.g. protocol.valuation())"
            )

    @cached_property
    def has_debt(self) -> np.ndarray:
        """Per-row "owes anything above dust" flags (lazy; guarded)."""
        self._require_unmutated()
        return self._amounts_above_dust(self.book._debt)

    @cached_property
    def has_collateral(self) -> np.ndarray:
        """Per-row "holds anything above dust" flags (lazy; guarded)."""
        self._require_unmutated()
        return self._amounts_above_dust(self.book._collateral)

    @cached_property
    def ambiguous_collateral_rows(self) -> np.ndarray:
        """Rows whose collateral summation order could matter (≥ 3 nonzero
        terms); only these get the collateral-side scalar fixup.  Computed
        lazily: fast-tier consumers never pay for it."""
        return np.flatnonzero(
            np.count_nonzero(self.collateral_values, axis=1) > _EXACT_TREE_MAX_NNZ
        )

    @cached_property
    def ambiguous_debt_rows(self) -> np.ndarray:
        """Rows whose debt summation order could matter (≥ 3 nonzero terms)."""
        return np.flatnonzero(
            np.count_nonzero(self.debt_values, axis=1) > _EXACT_TREE_MAX_NNZ
        )

    @property
    def ambiguous_rows(self) -> np.ndarray:
        """Rows needing a scalar fixup on either side (diagnostics)."""
        return np.union1d(self.ambiguous_collateral_rows, self.ambiguous_debt_rows)

    def _amounts_above_dust(self, matrix: np.ndarray) -> np.ndarray:
        """Per-row "holds anything above dust" flags from the amount matrix."""
        n_rows = len(self.book)
        n_assets = len(self.book.assets)
        return (matrix[:n_rows, :n_assets] > DUST).any(axis=1)

    def __len__(self) -> int:
        return self.collateral_usd.shape[0]

    # ------------------------------------------------------------------ #
    # Fast tier: pure NumPy, feeds fast paths and probes
    # ------------------------------------------------------------------ #
    def health_factors(self) -> np.ndarray:
        """Equation 4 per row; ``inf`` where the row owes nothing."""
        hf = np.full(self.debt_usd.shape, np.inf)
        np.divide(
            self.borrowing_capacity_usd,
            self.debt_usd,
            out=hf,
            where=self.debt_usd > 0.0,
        )
        return hf

    def total_collateral_usd(self) -> float:
        """Fast TVL total (within ulps of the scalar walk)."""
        return float(self.collateral_usd.sum())

    def total_debt_usd(self) -> float:
        """Fast outstanding-debt total (within ulps of the scalar walk)."""
        return float(self.debt_usd.sum())

    def total_borrowing_capacity_usd(self) -> float:
        """Fast aggregate borrowing capacity (within ulps of the scalar walk)."""
        return float(self.borrowing_capacity_usd.sum())

    def candidate_rows(self, require_collateral: bool = False) -> np.ndarray:
        """Rows that *may* be liquidatable, margin as in :class:`BookScan`."""
        mask = (
            self.has_debt
            & (self.debt_usd > 0.0)
            & (self.borrowing_capacity_usd < self.debt_usd * (1.0 + SCAN_MARGIN))
        )
        if require_collateral:
            mask &= self.has_collateral
        return np.flatnonzero(mask)

    def under_collateralized_rows(self) -> np.ndarray:
        """Rows that *may* have CR < 1 (Equation 2), margin as above."""
        mask = (
            self.has_debt
            & (self.debt_usd > 0.0)
            & (self.collateral_usd < self.debt_usd * (1.0 + SCAN_MARGIN))
        )
        return np.flatnonzero(mask)

    def positions(self, rows: np.ndarray) -> list["Position"]:
        """The :class:`Position` objects behind ``rows`` (in row order)."""
        return [self.book.position_at(int(row)) for row in rows]

    def collateral_value_column(self, symbol: str) -> np.ndarray | None:
        """Per-row USD value of one collateral asset, or ``None`` if untracked.

        The entries are the exact ``amount × price`` products of the scalar
        ``Position.collateral_values`` dictionaries, so selections like
        "positions holding ℭ" (``column > 0``) match the scalar predicate
        bit-for-bit.
        """
        col = self.book._asset_cols.get(symbol)
        if col is None:
            return None
        return self.collateral_values[:, col]

    # ------------------------------------------------------------------ #
    # Pinned tier: bit-identical to the scalar walk
    # ------------------------------------------------------------------ #
    def _pinned_rows(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-row ``(collateral, debt, capacity)`` arrays with the ambiguous
        rows patched by the scalar fixup (computed lazily, once).

        The fixup reads the live ``Position`` dictionaries while the
        vectorized arrays were frozen at construction — mixing the two
        states would silently corrupt the pinned values, so the first
        pinned access must happen before any further book mutation (later
        accesses reuse the already-patched arrays and are safe).
        """
        if self._pinned is None:
            self._require_unmutated()
            collateral = self.collateral_usd.copy()
            debt = self.debt_usd.copy()
            capacity = self.borrowing_capacity_usd.copy()
            prices = self.prices
            get_threshold = self.thresholds.get
            positions = self.book._positions
            # The fixup loops are inlined (no per-row function call): on a
            # production-sized book a third of the rows can be ambiguous and
            # this is the pinned tier's hot loop.
            for row in self.ambiguous_collateral_rows.tolist():
                collateral_usd = 0.0
                capacity_usd = 0.0
                for symbol, amount in positions[row].collateral.items():
                    value = amount * prices[symbol]
                    collateral_usd += value
                    capacity_usd += value * get_threshold(symbol, 0.0)
                collateral[row] = collateral_usd
                capacity[row] = capacity_usd
            for row in self.ambiguous_debt_rows.tolist():
                debt_usd = 0.0
                for symbol, amount in positions[row].debt.items():
                    debt_usd += amount * prices[symbol]
                debt[row] = debt_usd
            self._pinned = (collateral, debt, capacity)
        return self._pinned

    def pinned_row_values(self, row: int) -> tuple[float, float]:
        """Exact ``(collateral_usd, debt_usd)`` of one row, bit-identical to
        ``Position.total_collateral_usd`` / ``total_debt_usd``."""
        collateral, debt, _ = self._pinned_rows()
        return float(collateral[row]), float(debt[row])

    def pinned_total_collateral_usd(self) -> float:
        """TVL total, bit-identical to the scalar per-position walk.

        The reduction runs left-to-right over the exact per-row values in
        row order — the same accumulation chain as
        ``sum(position.total_collateral_usd(prices) for position in
        positions.values())``.  The explicit ``0.0`` start (mirrored by the
        scalar walks) keeps the all-empty-book edge case a float on both
        backends instead of ``sum``'s int ``0``.
        """
        collateral, _, _ = self._pinned_rows()
        return sum(collateral.tolist(), 0.0)

    def pinned_total_debt_usd(self) -> float:
        """Outstanding-debt total, bit-identical to the scalar walk."""
        _, debt, _ = self._pinned_rows()
        return sum(debt.tolist(), 0.0)

    def pinned_health_factors(self) -> list[float]:
        """Per-row health factors, bit-identical to
        ``Position.health_factor`` (``inf`` where the row owes nothing)."""
        _, debt, capacity = self._pinned_rows()
        hf = np.full(debt.shape, np.inf)
        np.divide(capacity, debt, out=hf, where=debt > 0.0)
        return hf.tolist()


class PositionBook:
    """Dense columnar mirror of a protocol's positions.

    Rows are positions in creation order; columns are asset symbols.  The
    amounts are mirrored from the canonical ``Position`` dictionaries via
    dirty-row tracking: attach a position with :meth:`attach` and every
    subsequent ``Position`` mutation marks its row for re-sync.
    """

    def __init__(self) -> None:
        self._assets: list[str] = []
        self._asset_cols: dict[str, int] = {}
        self._positions: list[Position] = []
        self._collateral = np.zeros((0, 0))
        self._debt = np.zeros((0, 0))
        self._dirty: set[int] = set()
        self._revision = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._positions)

    @property
    def assets(self) -> tuple[str, ...]:
        """Tracked asset columns, in column order."""
        return tuple(self._assets)

    @property
    def dirty_rows(self) -> frozenset[int]:
        """Rows awaiting re-sync (observable for tests and diagnostics)."""
        return frozenset(self._dirty)

    @property
    def revision(self) -> int:
        """Monotonic change counter: bumps on every attach, asset
        registration and position mutation.  Cached valuations keyed on the
        revision (plus the oracle's price version) are exactly as fresh as a
        recomputation."""
        return self._revision

    def position_at(self, row: int) -> "Position":
        """The position stored at ``row``."""
        return self._positions[row]

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #
    def ensure_asset(self, symbol: str) -> int:
        """Register (idempotently) a column for ``symbol`` and return it.

        Symbols are stored verbatim — the book must value exactly the keys
        the position dictionaries hold, with the same missing-threshold /
        missing-price semantics as the scalar formulas.
        """
        col = self._asset_cols.get(symbol)
        if col is None:
            col = len(self._assets)
            self._asset_cols[symbol] = col
            self._assets.append(symbol)
            self._grow(len(self._positions), len(self._assets))
            self._revision += 1
        return col

    def attach(self, position: "Position") -> int:
        """Track ``position`` in the book and return its row."""
        if position._book is not None:
            raise ValueError("position is already attached to a book")
        row = len(self._positions)
        self._positions.append(position)
        self._grow(len(self._positions), len(self._assets))
        position._book = self
        position._row = row
        self._dirty.add(row)
        self._revision += 1
        return row

    def mark_dirty(self, row: int) -> None:
        """Schedule ``row`` for re-materialization at the next sync."""
        self._dirty.add(row)
        self._revision += 1

    def _grow(self, rows: int, cols: int) -> None:
        cap_rows, cap_cols = self._collateral.shape
        if rows <= cap_rows and cols <= cap_cols:
            return
        new_rows = cap_rows if rows <= cap_rows else max(rows, 2 * cap_rows, 64)
        new_cols = cap_cols if cols <= cap_cols else max(cols, 2 * cap_cols, 8)
        collateral = np.zeros((new_rows, new_cols))
        debt = np.zeros((new_rows, new_cols))
        if cap_rows and cap_cols:
            collateral[:cap_rows, :cap_cols] = self._collateral
            debt[:cap_rows, :cap_cols] = self._debt
        self._collateral = collateral
        self._debt = debt

    # ------------------------------------------------------------------ #
    # Sync and scan
    # ------------------------------------------------------------------ #
    def sync(self) -> int:
        """Flush dirty rows from the position dicts into the matrices.

        Returns the number of rows refreshed.
        """
        if not self._dirty:
            return 0
        active = telemetry.active()
        if active is not None:
            active.counter(
                "repro_book_sync_rows_total",
                "Dirty position rows re-materialized into the columnar book",
            ).inc(len(self._dirty))
        for row in self._dirty:
            position = self._positions[row]
            for symbol in position.collateral:
                self.ensure_asset(symbol)
            for symbol in position.debt:
                self.ensure_asset(symbol)
        cols = self._asset_cols
        n_assets = len(self._assets)
        refreshed = len(self._dirty)
        for row in self._dirty:
            position = self._positions[row]
            self._collateral[row, :n_assets] = 0.0
            self._debt[row, :n_assets] = 0.0
            for symbol, amount in position.collateral.items():
                self._collateral[row, cols[symbol]] = amount
            for symbol, amount in position.debt.items():
                self._debt[row, cols[symbol]] = amount
        if sanitize.enabled():
            self._check_finite(sorted(self._dirty), n_assets)
        self._dirty.clear()
        return refreshed

    def _check_finite(self, rows: list[int], n_assets: int) -> None:
        """Sanitizer: refreshed rows must hold finite token amounts.

        A NaN or infinity in a collateral/debt cell would flow through every
        matrix product and pinned reduction downstream — NaN in particular
        makes ``HF < 1`` comparisons silently false, hiding the position from
        the liquidation scan instead of crashing.  Catch it at the source.
        """
        for row in rows:
            for name, matrix in (("collateral", self._collateral), ("debt", self._debt)):
                values = matrix[row, :n_assets]
                bad = ~np.isfinite(values)
                if bad.any():
                    col = int(np.argmax(bad))
                    owner = self._positions[row].owner
                    raise sanitize.SanitizerError(
                        f"non-finite {name} amount {values[col]!r} for asset "
                        f"{self._assets[col]!r} on position row {row} (owner "
                        f"{owner}) entered the position book"
                    )

    def scan(self, prices: Mapping[str, float], thresholds: Mapping[str, float]) -> BookScan:
        """One vectorized valuation of every position at ``prices``.

        Missing prices value an asset at 0 and missing thresholds contribute
        no borrowing capacity, mirroring ``terminology.borrowing_capacity``.
        """
        self.sync()
        n_rows = len(self._positions)
        n_assets = len(self._assets)
        price_vec = np.fromiter(
            (prices.get(symbol, 0.0) for symbol in self._assets), dtype=float, count=n_assets
        )
        lt_vec = np.fromiter(
            (thresholds.get(symbol, 0.0) for symbol in self._assets), dtype=float, count=n_assets
        )
        collateral = self._collateral[:n_rows, :n_assets]
        debt = self._debt[:n_rows, :n_assets]
        return BookScan(
            book=self,
            collateral_usd=collateral @ price_vec,
            debt_usd=debt @ price_vec,
            borrowing_capacity_usd=collateral @ (price_vec * lt_vec),
            has_debt=(debt > DUST).any(axis=1),
            has_collateral=(collateral > DUST).any(axis=1),
        )

    def valuation(self, prices: Mapping[str, float], thresholds: Mapping[str, float]) -> BookValuation:
        """One aggregate :class:`BookValuation` of every position at ``prices``.

        Unlike :meth:`scan`, the per-``(row, asset)`` USD values are
        materialized (``amounts × prices`` elementwise) so the pinned
        accessors can be bit-identical to the scalar walk; see
        :class:`BookValuation`.  Missing prices value an asset at 0 — for
        the pinned tier the caller must supply a price for every held
        symbol, exactly as ``Position.collateral_values`` requires.
        """
        self.sync()
        n_rows = len(self._positions)
        n_assets = len(self._assets)
        price_vec = np.fromiter(
            (prices.get(symbol, 0.0) for symbol in self._assets), dtype=float, count=n_assets
        )
        return BookValuation(
            book=self,
            prices=prices,
            thresholds=thresholds,
            collateral_values=self._collateral[:n_rows, :n_assets] * price_vec,
            debt_values=self._debt[:n_rows, :n_assets] * price_vec,
        )

    def debt_total(self, symbol: str) -> float:
        """Total outstanding amount of ``symbol`` debt across every position.

        Bit-identical to ``sum(position.debt.get(symbol, 0.0) for position
        in positions.values())``: the zero entries of non-holders are exact
        additive identities, and the nonzero entries are accumulated
        left-to-right in row (= dict iteration) order.
        """
        self.sync()
        col = self._asset_cols.get(symbol)
        if col is None:
            return 0.0
        column = self._debt[: len(self._positions), col]
        total = 0.0
        for amount in column[column != 0.0].tolist():
            total += amount
        return total

    def positions_with_debt_entries(self) -> list["Position"]:
        """Positions whose debt dictionary holds any nonzero amount.

        Used by the interest-accrual sweeps to skip debt-free positions:
        ``Position.scale_debts`` is a no-op on the skipped rows (an empty
        debt dict, or one holding only exact zeros), so accrual over this
        subset mutates exactly the same state as the full-population walk.
        """
        self.sync()
        n_rows = len(self._positions)
        n_assets = len(self._assets)
        rows = np.flatnonzero((self._debt[:n_rows, :n_assets] != 0.0).any(axis=1))
        return [self._positions[row] for row in rows.tolist()]
