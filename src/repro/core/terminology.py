"""The paper's core financial terminology (Section 2.3, Equations 1–4).

Every quantity is a pure function of USD values so that the same formulas are
used by the protocol implementations, the analytics pipeline and the optimal
strategy analysis — there is exactly one definition of the health factor in
the code base.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping


@dataclass(frozen=True)
class LiquidationParams:
    """The three knobs of a fixed spread liquidation mechanism.

    Attributes
    ----------
    liquidation_threshold:
        LT — the fraction of the collateral value counted towards the
        borrowing capacity (Equation 3).
    liquidation_spread:
        LS — the discount a liquidator receives on purchased collateral
        (Equation 1).
    close_factor:
        CF — the maximum proportion of the outstanding debt repayable in a
        single liquidation.
    """

    liquidation_threshold: float
    liquidation_spread: float
    close_factor: float

    def __post_init__(self) -> None:
        if not 0.0 < self.liquidation_threshold <= 1.0:
            raise ValueError("liquidation threshold must lie in (0, 1]")
        if self.liquidation_spread < 0.0:
            raise ValueError("liquidation spread must be non-negative")
        if not 0.0 < self.close_factor <= 1.0:
            raise ValueError("close factor must lie in (0, 1]")

    @property
    def is_reasonable(self) -> bool:
        """Appendix C's prerequisite ``1 - LT (1 + LS) > 0``.

        Only under this condition can a fixed spread liquidation increase the
        health factor of an over-collateralized liquidatable position.
        """
        return 1.0 - self.liquidation_threshold * (1.0 + self.liquidation_spread) > 0.0


def collateral_to_claim(debt_to_repay_usd: float, liquidation_spread: float) -> float:
    """Equation 1: value of collateral a liquidator claims for repaying debt.

    ``Value of Collateral to Claim = Value of Debt to Repay × (1 + LS)``.
    """
    if debt_to_repay_usd < 0:
        raise ValueError("repaid debt value must be non-negative")
    return debt_to_repay_usd * (1.0 + liquidation_spread)


def liquidation_profit(debt_to_repay_usd: float, liquidation_spread: float) -> float:
    """Gross profit of a fixed spread liquidation (collateral claimed − debt repaid)."""
    return collateral_to_claim(debt_to_repay_usd, liquidation_spread) - debt_to_repay_usd


def collateralization_ratio(collateral_usd: float, debt_usd: float) -> float:
    """Equation 2: CR = Σ collateral value / Σ debt value.

    Returns ``inf`` for debt-free positions so comparisons like ``CR < 1``
    behave naturally.
    """
    if debt_usd <= 0:
        return math.inf
    return collateral_usd / debt_usd


def borrowing_capacity(collateral_values: Mapping[str, float], liquidation_thresholds: Mapping[str, float]) -> float:
    """Equation 3: BC = Σᵢ collateral valueᵢ × LTᵢ.

    ``collateral_values`` maps asset symbol → USD value;
    ``liquidation_thresholds`` maps asset symbol → LT for that market.
    Missing thresholds default to 0 (the asset does not count as collateral).
    """
    capacity = 0.0
    for symbol, value in collateral_values.items():
        if value < 0:
            raise ValueError(f"negative collateral value for {symbol}")
        capacity += value * liquidation_thresholds.get(symbol, 0.0)
    return capacity


def health_factor(borrowing_capacity_usd: float, debt_usd: float) -> float:
    """Equation 4: HF = BC / Σ debt value.

    Returns ``inf`` for debt-free positions.  A position is liquidatable when
    ``HF < 1``.
    """
    if debt_usd <= 0:
        return math.inf
    return borrowing_capacity_usd / debt_usd


def is_liquidatable(borrowing_capacity_usd: float, debt_usd: float) -> bool:
    """Whether a position with the given aggregates can be liquidated (HF < 1)."""
    return health_factor(borrowing_capacity_usd, debt_usd) < 1.0


def is_under_collateralized(collateral_usd: float, debt_usd: float) -> bool:
    """Whether the raw collateral no longer covers the debt (CR < 1)."""
    return collateralization_ratio(collateral_usd, debt_usd) < 1.0
