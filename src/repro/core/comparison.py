"""Objective liquidation mechanism comparison (Section 5.1, Figure 9).

Liquidation is a zero-sum game between liquidator and borrower, so the paper
compares mechanisms by the *monthly profit-volume ratio*: monthly accumulated
liquidation profit divided by the monthly average collateral volume locked in
the corresponding market.  A lower ratio is better for borrowers.  To keep
the comparison unbiased by asset composition, only DAI-debt / ETH-collateral
liquidations are considered.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence


@dataclass(frozen=True)
class ProfitVolumePoint:
    """One platform-month of the profit-volume comparison."""

    platform: str
    month: str
    profit_usd: float
    average_collateral_usd: float

    @property
    def ratio(self) -> float:
        """Monthly profit-volume ratio; 0 when there was no collateral volume."""
        if self.average_collateral_usd <= 0:
            return 0.0
        return self.profit_usd / self.average_collateral_usd


def monthly_profit_volume_ratios(
    monthly_profits: Mapping[str, Mapping[str, float]],
    monthly_volumes: Mapping[str, Mapping[str, float]],
) -> list[ProfitVolumePoint]:
    """Combine per-platform monthly profits and average collateral volumes.

    Parameters
    ----------
    monthly_profits:
        ``{platform: {"YYYY-MM": profit_usd}}`` from the analytics layer.
    monthly_volumes:
        ``{platform: {"YYYY-MM": average_collateral_usd}}``.
    """
    points: list[ProfitVolumePoint] = []
    for platform, profits in monthly_profits.items():
        volumes = monthly_volumes.get(platform, {})
        months = sorted(set(profits) | set(volumes))
        for month in months:
            points.append(
                ProfitVolumePoint(
                    platform=platform,
                    month=month,
                    profit_usd=profits.get(month, 0.0),
                    average_collateral_usd=volumes.get(month, 0.0),
                )
            )
    return points


def median_ratio_by_platform(points: Iterable[ProfitVolumePoint]) -> dict[str, float]:
    """Median of the non-empty monthly ratios per platform.

    The median is robust to the single-month outliers the paper calls out
    (MakerDAO in March 2020, Compound in November 2020) and is therefore the
    statistic used to rank mechanisms.
    """
    ratios: dict[str, list[float]] = defaultdict(list)
    for point in points:
        if point.average_collateral_usd <= 0:
            continue
        ratios[point.platform].append(point.ratio)
    medians: dict[str, float] = {}
    for platform, values in ratios.items():
        values.sort()
        mid = len(values) // 2
        if len(values) % 2:
            medians[platform] = values[mid]
        else:
            medians[platform] = (values[mid - 1] + values[mid]) / 2.0
    return medians


def average_ratio_by_platform(points: Iterable[ProfitVolumePoint]) -> dict[str, float]:
    """Mean of the non-empty monthly ratios per platform.

    This is the summary statistic used to rank mechanisms: the paper's
    qualitative finding is ``dYdX > Compound > MakerDAO`` (dYdX, with no
    close factor, is the most liquidator-favourable) with Aave too thin to
    be indicative.
    """
    sums: dict[str, float] = defaultdict(float)
    counts: dict[str, int] = defaultdict(int)
    for point in points:
        if point.average_collateral_usd <= 0:
            continue
        sums[point.platform] += point.ratio
        counts[point.platform] += 1
    return {platform: sums[platform] / counts[platform] for platform in sums if counts[platform]}


def rank_platforms(points: Iterable[ProfitVolumePoint]) -> list[str]:
    """Platforms ordered from most borrower-friendly (lowest ratio) upwards.

    Ranked by the median monthly ratio so that single-month incidents do not
    dominate the comparison.
    """
    points = list(points)
    medians = median_ratio_by_platform(points)
    return sorted(medians, key=medians.get)


def borrower_favourability(points: Sequence[ProfitVolumePoint]) -> dict[str, dict[str, float]]:
    """Per-platform summary: mean ratio, max ratio and active months."""
    summary: dict[str, dict[str, float]] = {}
    by_platform: dict[str, list[ProfitVolumePoint]] = defaultdict(list)
    for point in points:
        if point.average_collateral_usd > 0:
            by_platform[point.platform].append(point)
    for platform, platform_points in by_platform.items():
        ratios = [point.ratio for point in platform_points]
        summary[platform] = {
            "mean_ratio": sum(ratios) / len(ratios),
            "max_ratio": max(ratios),
            "months": float(len(ratios)),
        }
    return summary
