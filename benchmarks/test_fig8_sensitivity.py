"""Benchmark E-F8 — regenerate Figure 8 (liquidation sensitivity to price declines)."""

from repro.experiments import fig8_sensitivity


def test_fig8_sensitivity(benchmark, scenario_result):
    figure = benchmark(fig8_sensitivity.compute, scenario_result)
    print("\n" + fig8_sensitivity.render(figure))
    assert set(figure) == {"Aave V2", "Compound", "dYdX", "MakerDAO"}
    # The paper finds every platform most sensitive to ETH declines.
    eth_sensitive = [panel.most_sensitive_symbol for panel in figure.values()]
    assert eth_sensitive.count("ETH") >= 3
    # Aave V2 (multi-collateral users) is flatter than Compound at a 43% ETH
    # decline relative to the collateral each platform holds.
    compound = figure["Compound"].liquidatable_at("ETH", 0.43)
    assert compound >= 0.0
    for panel in figure.values():
        curve = panel.curve("ETH")
        assert len(curve) >= 10
