"""Benchmark E-F6 — regenerate Figure 6 (liquidation gas prices)."""

from repro.experiments import fig6_gas_prices


def test_fig6_gas_prices(benchmark, scenario_result):
    report = benchmark(fig6_gas_prices.compute, scenario_result)
    print("\n" + fig6_gas_prices.render(report))
    assert len(report.points) > 0
    # The paper reports 73.97 % of liquidations paying an above-average fee;
    # the shape check is that a clear majority outbids the market average.
    assert report.share_above_average > 0.5
    # Congestion episodes push some liquidation bids far above the baseline.
    assert report.max_gas_price_gwei > 10 * min(report.average_gas_price_gwei)
