"""Benchmark E-MIT — regenerate the Section 5.2.3 mitigation analysis."""

import pytest

from repro.experiments import mitigation


def test_mitigation(benchmark):
    data = benchmark(mitigation.compute)
    print("\n" + mitigation.render(data))
    # The paper: a mining liquidator needs > 99.68 % mining power to prefer
    # the optimal strategy once liquidations are limited to one per block.
    assert data.case_study.alpha_threshold == pytest.approx(0.9968, abs=0.002)
    assert all(threshold >= 0.0 for threshold in data.thresholds_by_cr.values())
