"""Benchmark E-F7 — regenerate Figure 7 / Section 4.3.3 (MakerDAO auctions)."""

from repro.experiments import fig7_auctions


def test_fig7_auctions(benchmark, scenario_result):
    report = benchmark(fig7_auctions.compute, scenario_result)
    print("\n" + fig7_auctions.render(report))
    assert report.settled_auctions > 0
    # Section 4.3.3: roughly two bidders and 2.6 bids per auction, with both
    # tend- and dent-phase terminations present.
    assert 1.0 <= report.mean_bids_per_auction <= 6.0
    assert 1.0 <= report.mean_bidders_per_auction <= 4.0
    assert report.tend_terminations > 0
    assert report.dent_terminations > 0
    # The configured parameters change after the March 2020 incident.
    assert len(report.config_changes) >= 2
    assert report.config_changes[-1].bid_duration_hours > report.config_changes[0].bid_duration_hours
