"""Benchmark — aggregate-valuation throughput: book-backed vs scalar walk.

This measures the cost behind the paper's headline tables and every archive
snapshot: total collateral (TVL), total outstanding debt and the per-position
health factors of a whole protocol.  A 5k-position Aave-style pool (the
:mod:`test_scan_throughput` world) is valued both ways:

* ``scalar`` — the legacy walk: per-position USD-value dictionaries, one
  pass per aggregate;
* ``vectorized`` — ``LendingProtocol.valuation()``: one cached
  :class:`~repro.core.position_book.BookValuation` whose *pinned* reductions
  (exact per-term products, scalar fixup of rows with ≥ 3 nonzero entries,
  row-order accumulation) are **bit-identical** to the scalar walk — the
  benchmark asserts the equality exactly, not approximately.

Between iterations a realistic fraction of positions is mutated so the
vectorized timing includes steady-state dirty-row syncing and a cold
valuation cache, not a free cache hit.

With ``BENCH_RECORD=1`` the result is written to ``BENCH_valuation.json`` at
the repo root; the 3× floor is asserted only under ``BENCH_ENFORCE=1`` (the
dedicated CI benchmark job), mirroring ``test_scan_throughput``.
"""

from __future__ import annotations

import json
import os
import platform
import time
import warnings
from pathlib import Path

import numpy as np

from conftest import write_bench_record

from test_scan_throughput import CHURN_FRACTION, N_POSITIONS, ROUNDS, build_world, churn

SPEEDUP_FLOOR = 3.0

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_valuation.json"


def scalar_aggregate_walk(protocol):
    """The legacy snapshot aggregates: totals plus every health factor."""
    prices = protocol.prices()
    thresholds = protocol.liquidation_thresholds()
    total_collateral = sum(p.total_collateral_usd(prices) for p in protocol.positions.values())
    total_debt = sum(p.total_debt_usd(prices) for p in protocol.positions.values())
    health = [p.health_factor(prices, thresholds) for p in protocol.positions.values()]
    return total_collateral, total_debt, health


def book_aggregate_walk(protocol):
    """The same aggregates through one shared, pinned BookValuation."""
    valuation = protocol.valuation()
    return (
        valuation.pinned_total_collateral_usd(),
        valuation.pinned_total_debt_usd(),
        valuation.pinned_health_factors(),
    )


def time_walks(walk, protocol, rng, rounds: int = ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        churn(protocol, rng)  # busts the valuation cache via the book revision
        start = time.perf_counter()
        walk(protocol)
        best = min(best, time.perf_counter() - start)
    return best


def test_book_valuation_speedup():
    protocol, rng = build_world()
    protocol.valuation()  # initial full sync, outside the timing

    scalar_totals = scalar_aggregate_walk(protocol)
    book_totals = book_aggregate_walk(protocol)
    # Bit-identical, not approximately equal: the pinned reductions resolve
    # the float-sum-order question instead of papering over it.
    assert book_totals[0] == scalar_totals[0]
    assert book_totals[1] == scalar_totals[1]
    assert book_totals[2] == scalar_totals[2]

    scalar_s = time_walks(scalar_aggregate_walk, protocol, rng)
    vector_s = time_walks(book_aggregate_walk, protocol, rng)
    speedup = scalar_s / vector_s

    ambiguous = len(protocol.valuation().ambiguous_rows)
    record = {
        "benchmark": "valuation_throughput",
        "n_positions": N_POSITIONS,
        "n_assets": len(protocol.book.assets),
        "ambiguous_rows": ambiguous,
        "churn_fraction": CHURN_FRACTION,
        "rounds": ROUNDS,
        "scalar_seconds": scalar_s,
        "vectorized_seconds": vector_s,
        "speedup": speedup,
        "python": platform.python_version(),
        "numpy": np.__version__,
    }
    if os.environ.get("BENCH_RECORD"):
        write_bench_record(BENCH_PATH, record)

    message = (
        f"book valuation only {speedup:.1f}x faster than the scalar walk "
        f"({vector_s * 1e3:.2f} ms vs {scalar_s * 1e3:.2f} ms)"
    )
    if os.environ.get("BENCH_ENFORCE"):
        assert speedup >= SPEEDUP_FLOOR, message
    elif speedup < SPEEDUP_FLOOR:
        warnings.warn(message)
