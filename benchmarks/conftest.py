"""Shared fixtures for the benchmark harness.

The two-year scenario is simulated once per benchmark session (the
``paper-medium`` registry scenario: full study window, reduced agent
population) and every table/figure benchmark then measures its analytics
pass against that run and prints the regenerated rows/series for comparison
with the paper.

Use ``scenarios.get("paper-full")`` instead of ``paper-medium`` for a
full-scale run (slower, larger agent population).
"""

from __future__ import annotations

import pytest

from repro import scenarios
from repro.analytics.records import extract_liquidations


@pytest.fixture(scope="session")
def scenario_result():
    """The completed two-year (medium-population) scenario run."""
    return scenarios.get("paper-medium").run(seed=7)


@pytest.fixture(scope="session")
def records(scenario_result):
    """Normalised liquidation records of the scenario run."""
    return extract_liquidations(scenario_result)
