"""Shared fixtures and helpers for the benchmark harness.

The two-year scenario is simulated once per benchmark session (the
``paper-medium`` registry scenario: full study window, reduced agent
population) and every table/figure benchmark then measures its analytics
pass against that run and prints the regenerated rows/series for comparison
with the paper.

Use ``scenarios.get("paper-full")`` instead of ``paper-medium`` for a
full-scale run (slower, larger agent population).

Every throughput/overhead benchmark that records a ``BENCH_*.json`` writes
it through :func:`write_bench_record`, which stamps the host context (CPU
count, platform, a hostname hash) so trajectory entries from different
machines are tellable apart without leaking the actual hostname.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import socket
from pathlib import Path

import pytest

from repro import scenarios
from repro.analytics.records import extract_liquidations


def host_context() -> dict:
    """Where a benchmark record was measured (stable within one machine)."""
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "hostname_sha256": hashlib.sha256(socket.gethostname().encode()).hexdigest()[:12],
    }


def write_bench_record(path: Path | str, record: dict) -> None:
    """Write one ``BENCH_*.json`` record, stamped with the host context."""
    stamped = {**record, "host": host_context()}
    Path(path).write_text(json.dumps(stamped, indent=2) + "\n")


@pytest.fixture(scope="session")
def scenario_result():
    """The completed two-year (medium-population) scenario run."""
    return scenarios.get("paper-medium").run(seed=7)


@pytest.fixture(scope="session")
def records(scenario_result):
    """Normalised liquidation records of the scenario run."""
    return extract_liquidations(scenario_result)
