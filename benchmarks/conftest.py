"""Shared fixtures for the benchmark harness.

The two-year scenario is simulated once per benchmark session (the
``medium`` preset: full study window, reduced agent population) and every
table/figure benchmark then measures its analytics pass against that run and
prints the regenerated rows/series for comparison with the paper.

Use ``ScenarioConfig.paper()`` instead of ``medium()`` for a full-scale run
(slower, larger agent population).
"""

from __future__ import annotations

import pytest

from repro.analytics.records import extract_liquidations
from repro.simulation.config import ScenarioConfig
from repro.simulation.scenarios import build_scenario


@pytest.fixture(scope="session")
def scenario_result():
    """The completed two-year (medium-population) scenario run."""
    engine = build_scenario(ScenarioConfig.medium(seed=7))
    return engine.run()


@pytest.fixture(scope="session")
def records(scenario_result):
    """Normalised liquidation records of the scenario run."""
    return extract_liquidations(scenario_result)
