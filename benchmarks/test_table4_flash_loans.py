"""Benchmark E-T4 — regenerate Table 4 (flash-loan usage for liquidations)."""

from repro.experiments import table4_flash_loans


def test_table4_flash_loans(benchmark, scenario_result):
    report = benchmark(table4_flash_loans.compute, scenario_result)
    print("\n" + table4_flash_loans.render(report))
    assert report.total_flash_loans > 0
    assert report.total_amount_usd > 0
    # The paper finds dYdX flash loans dominating by volume thanks to their
    # negligible fee; the shape check is that dYdX carries the largest share.
    by_platform = report.by_flash_platform()
    if "dYdX" in by_platform and len(by_platform) > 1:
        assert by_platform["dYdX"] >= max(v for k, v in by_platform.items() if k != "dYdX")
