"""Benchmark — simulation throughput of the scenario engine itself.

Not a paper artefact: this measures how fast the substrate replays a short
window of the study, which is the cost every other benchmark's session
fixture pays once.
"""

from repro.scenarios import ScenarioBuilder
from repro.simulation.config import ScenarioConfig


def run_short_window() -> int:
    config = ScenarioConfig.small(seed=3).with_overrides(end_block=9_780_000)
    result = ScenarioBuilder(config).build().run()
    return len(result.chain.blocks)


def test_scenario_throughput(benchmark):
    blocks = benchmark.pedantic(run_short_window, rounds=1, iterations=1)
    assert blocks > 50
