"""Benchmark — simulation throughput of the scenario engine itself.

Not a paper artefact: this measures how fast the substrate replays a short
window of the study, which is the cost every other benchmark's session
fixture pays once.

With ``BENCH_RECORD=1`` the result is written to ``BENCH_scenario.json`` at
the repo root, feeding the cross-commit ``BENCH_trajectory.json`` the CI
benchmark job merges and uploads.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

from conftest import write_bench_record

from repro.scenarios import ScenarioBuilder
from repro.simulation.config import ScenarioConfig

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_scenario.json"


def run_short_window() -> int:
    config = ScenarioConfig.small(seed=3).with_overrides(end_block=9_780_000)
    result = ScenarioBuilder(config).build().run()
    return len(result.chain.blocks)


def test_scenario_throughput():
    started = time.perf_counter()
    blocks = run_short_window()
    seconds = time.perf_counter() - started
    assert blocks > 50

    if os.environ.get("BENCH_RECORD"):
        record = {
            "benchmark": "scenario_throughput",
            "blocks": blocks,
            "seconds": seconds,
            "blocks_per_second": blocks / seconds,
            "python": platform.python_version(),
        }
        write_bench_record(BENCH_PATH, record)

    print(f"\nscenario window: {blocks} blocks in {seconds:.2f}s ({blocks / seconds:.1f} blocks/s)")
