"""Stamp the ``BENCH_*.json`` perf records and merge them into the trajectory.

Every benchmark that runs under ``BENCH_RECORD=1`` leaves one
``BENCH_<name>.json`` at the repo root (scan, watch, valuation, campaign,
scenario).  This script — the CI benchmark job's ``bench-trajectory`` step —

1. stamps each record with the commit SHA (``GITHUB_SHA`` or ``git
   rev-parse HEAD``) and the commit date,
2. merges the stamped records into ``BENCH_trajectory.json``: a list with
   one entry per ``(benchmark, commit)``, extending whatever trajectory
   already exists — the committed seed on a fresh checkout, or the
   accumulated history the CI job restores from its ``actions/cache``
   entry — so the perf history keeps growing across commits,
3. prints the trajectory as a table.

Usage::

    python benchmarks/bench_trajectory.py [--root PATH]

Idempotent: re-running on the same commit replaces that commit's entries
instead of duplicating them.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
from datetime import datetime
from pathlib import Path

TRAJECTORY_NAME = "BENCH_trajectory.json"


def repo_root() -> Path:
    return Path(__file__).resolve().parents[1]


def git_output(root: Path, *args: str) -> str:
    return subprocess.check_output(["git", *args], cwd=root, text=True).strip()


def commit_stamp(root: Path) -> tuple[str, str]:
    """``(sha, iso_date)`` of the commit being measured."""
    sha = os.environ.get("GITHUB_SHA") or git_output(root, "rev-parse", "HEAD")
    try:
        date = git_output(root, "show", "-s", "--format=%cI", sha)
    except subprocess.CalledProcessError:
        # A GITHUB_SHA not present locally (e.g. a merge ref): fall back to HEAD.
        date = git_output(root, "show", "-s", "--format=%cI", "HEAD")
    return sha, date


def load_records(root: Path) -> dict[str, dict]:
    """The per-benchmark records present at the repo root, keyed by name."""
    records: dict[str, dict] = {}
    for path in sorted(root.glob("BENCH_*.json")):
        if path.name == TRAJECTORY_NAME:
            continue
        record = json.loads(path.read_text())
        name = record.get("benchmark", path.stem.removeprefix("BENCH_"))
        records[name] = record
    return records


def merge_trajectory(root: Path) -> list[dict]:
    sha, date = commit_stamp(root)
    trajectory_path = root / TRAJECTORY_NAME
    entries: list[dict] = []
    if trajectory_path.exists():
        entries = json.loads(trajectory_path.read_text())
    fresh = [
        {"benchmark": name, "commit": sha, "date": date, "record": record}
        for name, record in load_records(root).items()
    ]
    replaced = {(entry["benchmark"], entry["commit"]) for entry in fresh}
    entries = [
        entry for entry in entries if (entry["benchmark"], entry["commit"]) not in replaced
    ]
    entries.extend(fresh)
    # Chronological, not lexicographic: ISO-8601 strings with different
    # timezone offsets do not sort correctly as text.
    entries.sort(key=lambda entry: (datetime.fromisoformat(entry["date"]), entry["benchmark"]))
    trajectory_path.write_text(json.dumps(entries, indent=2) + "\n")
    return entries


def headline(record: dict) -> str:
    """The one number worth charting for each benchmark."""
    if "speedup" in record:
        return f"speedup {record['speedup']:.2f}x"
    if "overhead_fraction" in record:
        return f"overhead {record['overhead_fraction'] * 100:.1f}%"
    if "blocks_per_second" in record:
        return f"{record['blocks_per_second']:.1f} blocks/s"
    if "seconds" in record:
        return f"{record['seconds']:.2f}s"
    return "-"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, default=repo_root(), help="repo root to scan")
    args = parser.parse_args()
    entries = merge_trajectory(args.root)
    width = max((len(entry["benchmark"]) for entry in entries), default=9)
    print(f"{'benchmark':<{width}}  {'commit':<10}  {'date':<25}  headline")
    for entry in entries:
        print(
            f"{entry['benchmark']:<{width}}  {entry['commit'][:10]:<10}  "
            f"{entry['date']:<25}  {headline(entry['record'])}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
