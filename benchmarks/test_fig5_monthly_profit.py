"""Benchmark E-F5 — regenerate Figure 5 (monthly liquidation profit)."""

from repro.experiments import fig5_monthly_profit


def test_fig5_monthly_profit(benchmark, records):
    data = benchmark(fig5_monthly_profit.compute, records)
    print("\n" + fig5_monthly_profit.render(data))
    assert data.monthly_profit
    # The MakerDAO outlier month should coincide with the March 2020 crash
    # (the keeper-failure incident), as in the paper.
    if "MakerDAO" in data.peaks:
        month, value = data.peaks["MakerDAO"]
        assert value > 0
        assert month.startswith("2020-03") or value >= max(data.monthly_profit["MakerDAO"].values()) * 0.999
