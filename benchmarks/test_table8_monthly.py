"""Benchmark E-T8 — regenerate Table 8 (monthly DAI/ETH liquidation counts)."""

from repro.experiments import table8_monthly


def test_table8_monthly(benchmark, records):
    counts = benchmark(table8_monthly.compute, records)
    print("\n" + table8_monthly.render(counts))
    assert counts
    total = sum(value for months in counts.values() for value in months.values())
    assert total > 0
    # The crash month should be among the busiest for at least one platform.
    busiest_months = {max(months, key=months.get) for months in counts.values() if months}
    assert busiest_months
