"""Benchmark — campaign throughput across execution backends and worker counts.

Not a paper artefact: this measures the campaign fan-out layer the "millions
of runs" north star rests on.  Eight independent seeds of the truncated
``small`` window are swept once serially (the ground truth) and then through
the persistent backend at workers ∈ {1, 2, 4} — each count measured twice,
cold (fresh workers, first dispatch pays interpreter start-up and scenario
import) and warm (same workers, stores cleared, template caches primed) —
yielding the scaling curve.

The speedup floors are **host-aware** (the previous fixed floor was recorded
unsatisfiable on a ``cpu_count: 1`` runner):

* ``cpu_count >= 4``: the warm 4-worker sweep must reach ≥ 2.5× serial;
* ``cpu_count >= 2``: the warm 2-worker sweep must beat serial (≥ 1.2×);
* single-core hosts: parallelism cannot win, so the check inverts into a
  bounded-overhead assertion — the warm 4-worker sweep may cost at most
  1.3× serial.

Floors are asserted only under ``BENCH_ENFORCE=1`` (the CI benchmark job);
an un-flagged local run just prints the curve.  With ``BENCH_RECORD=1`` the
full curve is written to ``BENCH_campaign.json`` at the repo root, feeding
the cross-commit ``BENCH_trajectory.json`` the CI benchmark job merges.
"""

from __future__ import annotations

import os
import platform
import shutil
import tempfile
import time
from pathlib import Path

from conftest import write_bench_record

from repro.campaigns import CampaignExecutor, CampaignSpec, PersistentBackend, RunStore

SPEC = dict(
    scenario="small",
    seeds=8,
    overrides={"end_block": 9_780_000},
    experiments=("table1", "fig4"),
)

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_campaign.json"

#: Worker counts sampled for the persistent-backend scaling curve.
CURVE_WORKERS = (1, 2, 4)


def _sweep(root: str, backend) -> float:
    """Execute the campaign into ``root``; returns wall-clock seconds."""
    executor = CampaignExecutor(CampaignSpec(**SPEC), RunStore(root), backend=backend)
    started = time.perf_counter()
    result = executor.execute()
    elapsed = time.perf_counter() - started
    assert len(result.executed) == SPEC["seeds"], result.failed
    return elapsed


def test_campaign_throughput_scaling_curve():
    cpu_count = os.cpu_count() or 1
    with tempfile.TemporaryDirectory() as tmp:
        serial_seconds = _sweep(f"{tmp}/serial", backend=None)

        curve = []
        for workers in CURVE_WORKERS:
            with PersistentBackend(workers=workers) as backend:
                cold = _sweep(f"{tmp}/cold-{workers}", backend)
                # Same workers, fresh store: interpreter start-up and warm
                # caches are already paid, leaving pure dispatch + compute.
                shutil.rmtree(f"{tmp}/cold-{workers}", ignore_errors=True)
                warm = _sweep(f"{tmp}/warm-{workers}", backend)
            curve.append(
                {
                    "workers": workers,
                    "cold_seconds": round(cold, 3),
                    "warm_seconds": round(warm, 3),
                    "cold_speedup": round(serial_seconds / cold, 3),
                    "warm_speedup": round(serial_seconds / warm, 3),
                }
            )

    by_workers = {point["workers"]: point for point in curve}
    print(f"\ncampaign sweep, {SPEC['seeds']} seeds, serial {serial_seconds:.2f}s (cpu_count {cpu_count})")
    for point in curve:
        print(
            f"  persistent x{point['workers']}: cold {point['cold_seconds']:.2f}s "
            f"({point['cold_speedup']:.2f}x), warm {point['warm_seconds']:.2f}s "
            f"({point['warm_speedup']:.2f}x)"
        )

    if os.environ.get("BENCH_RECORD"):
        record = {
            "benchmark": "campaign_throughput",
            "backend": "persistent",
            "seeds": SPEC["seeds"],
            "serial_seconds": round(serial_seconds, 3),
            "curve": curve,
            # Compatibility fields for the cross-commit trajectory: the
            # headline remains the 4-worker warm speedup.
            "workers": 4,
            "parallel_seconds": by_workers[4]["warm_seconds"],
            "speedup": by_workers[4]["warm_speedup"],
            "python": platform.python_version(),
        }
        write_bench_record(BENCH_PATH, record)

    if os.environ.get("BENCH_ENFORCE"):
        if cpu_count >= 4:
            assert by_workers[4]["warm_speedup"] >= 2.5, (
                f"4-worker warm sweep reached only {by_workers[4]['warm_speedup']:.2f}x "
                f"on a {cpu_count}-core host (floor: 2.5x)"
            )
        if cpu_count >= 2:
            assert by_workers[2]["warm_speedup"] >= 1.2, (
                f"2-worker warm sweep reached only {by_workers[2]['warm_speedup']:.2f}x "
                f"on a {cpu_count}-core host (floor: 1.2x)"
            )
        else:
            # Single core: parallelism cannot win; it must at least not hurt
            # by more than dispatch overhead.
            overhead = by_workers[4]["warm_seconds"] / serial_seconds
            assert overhead <= 1.3, (
                f"4-worker warm sweep cost {overhead:.2f}x serial on a single-core "
                "host (bounded-overhead ceiling: 1.3x)"
            )
