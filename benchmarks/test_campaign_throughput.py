"""Benchmark — parallel-vs-serial throughput of a multi-seed campaign sweep.

Not a paper artefact: this measures the campaign executor's fan-out, the
layer every scaling PR builds on.  Four independent seeds of the truncated
``small`` window are swept twice into throwaway stores — once serially, once
over a 4-process pool — and the speedup is printed for comparison across
machines.  No floor is asserted (pool start-up costs dominate on small
windows and single-core CI runners can be slower in parallel); the
benchmark's job is to report the number, not to gate on it.

With ``BENCH_RECORD=1`` the result is written to ``BENCH_campaign.json`` at
the repo root, feeding the cross-commit ``BENCH_trajectory.json`` the CI
benchmark job merges and uploads.
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
import time
from pathlib import Path

from conftest import write_bench_record

from repro.campaigns import CampaignExecutor, CampaignSpec, RunStore

SPEC = dict(
    scenario="small",
    seeds=4,
    overrides={"end_block": 9_780_000},
    experiments=("table1", "fig4"),
)

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_campaign.json"


def sweep(workers: int) -> tuple[float, int]:
    """Run the campaign into a fresh store; return (seconds, runs executed)."""
    with tempfile.TemporaryDirectory() as root:
        executor = CampaignExecutor(CampaignSpec(**SPEC), RunStore(root), workers=workers)
        started = time.perf_counter()
        result = executor.execute()
        return time.perf_counter() - started, len(result.executed)


def test_campaign_throughput():
    serial_seconds, serial_runs = sweep(workers=1)
    parallel_seconds, parallel_runs = sweep(workers=4)
    assert serial_runs == parallel_runs == 4
    speedup = serial_seconds / parallel_seconds

    if os.environ.get("BENCH_RECORD"):
        record = {
            "benchmark": "campaign_throughput",
            "seeds": SPEC["seeds"],
            "workers": 4,
            "serial_seconds": serial_seconds,
            "parallel_seconds": parallel_seconds,
            "speedup": speedup,
            "python": platform.python_version(),
        }
        write_bench_record(BENCH_PATH, record)

    print(
        f"\ncampaign sweep, 4 seeds: serial {serial_seconds:.2f}s, "
        f"4 workers {parallel_seconds:.2f}s, "
        f"speedup {speedup:.2f}x"
    )
