"""Benchmark — parallel-vs-serial throughput of a multi-seed campaign sweep.

Not a paper artefact: this measures the campaign executor's fan-out, the
layer every scaling PR builds on.  Four independent seeds of the truncated
``small`` window are swept twice into throwaway stores — once serially, once
over a 4-process pool — and the speedup is printed for comparison across
machines.  The assertion is deliberately loose (pool start-up costs dominate
on small windows and single-core CI runners can be slower in parallel); the
benchmark's job is to report the number, not to gate on it.
"""

from __future__ import annotations

import tempfile
import time

from repro.campaigns import CampaignExecutor, CampaignSpec, RunStore

SPEC = dict(
    scenario="small",
    seeds=4,
    overrides={"end_block": 9_780_000},
    experiments=("table1", "fig4"),
)


def sweep(workers: int) -> tuple[float, int]:
    """Run the campaign into a fresh store; return (seconds, runs executed)."""
    with tempfile.TemporaryDirectory() as root:
        executor = CampaignExecutor(CampaignSpec(**SPEC), RunStore(root), workers=workers)
        started = time.perf_counter()
        result = executor.execute()
        return time.perf_counter() - started, len(result.executed)


def test_campaign_throughput(benchmark):
    serial_seconds, serial_runs = sweep(workers=1)
    parallel_seconds, parallel_runs = benchmark.pedantic(
        sweep, kwargs={"workers": 4}, rounds=1, iterations=1
    )
    assert serial_runs == parallel_runs == 4
    print(
        f"\ncampaign sweep, 4 seeds: serial {serial_seconds:.2f}s, "
        f"4 workers {parallel_seconds:.2f}s, "
        f"speedup {serial_seconds / parallel_seconds:.2f}x"
    )
