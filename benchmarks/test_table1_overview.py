"""Benchmark E-T1 — regenerate Table 1 (liquidations, liquidators, average profit)."""

from repro.experiments import table1_overview


def test_table1_overview(benchmark, records):
    report = benchmark(table1_overview.compute, records)
    print("\n" + table1_overview.render(report))
    assert report.total_liquidations == len(records)
    assert report.total_liquidators >= 1
    assert report.total_profit_usd > 0
    # The paper finds the average MakerDAO liquidator profit to be the
    # largest of the four platforms (Table 1: 115.84K vs 10-43K USD).
    by_platform = {row.platform: row for row in report.rows}
    if "MakerDAO" in by_platform and "Aave V1" in by_platform and by_platform["Aave V1"].liquidators:
        assert (
            by_platform["MakerDAO"].average_profit_per_liquidator_usd
            > by_platform["Aave V1"].average_profit_per_liquidator_usd
        )
