"""Benchmark (ablation) — close factor vs over-liquidation (Section 4.4.1)."""

from repro.experiments import close_factor_ablation


def test_close_factor_ablation(benchmark):
    data = benchmark(close_factor_ablation.compute)
    print("\n" + close_factor_ablation.render(data))
    by_cf = {point.close_factor: point for point in data.points}
    # A 50 % close factor permits repaying far more than health restoration
    # needs, and the excess borrower loss grows with the close factor.
    assert by_cf[0.5].repay_allowed_usd > 1.5 * by_cf[0.5].repay_needed_usd
    losses = [point.excess_loss_usd for point in sorted(data.points, key=lambda p: p.close_factor)]
    assert losses == sorted(losses)
