"""Chart the performance trajectory accumulated in ``BENCH_trajectory.json``.

``bench_trajectory.py`` grows one entry per ``(benchmark, commit)``; this
script turns that history into something a human can read at a glance:

* with matplotlib installed, one PNG per benchmark headline series
  (``--output DIR``, default ``bench_plots/``);
* without matplotlib (the default container has none), a Unicode sparkline
  per benchmark straight to stdout — no dependency needed to see whether a
  commit moved a headline number.

Usage::

    python benchmarks/plot_trajectory.py [--root PATH] [--output DIR] [--text]

``--text`` forces the sparkline view even when matplotlib is available.
"""

from __future__ import annotations

import argparse
import json
from datetime import datetime
from pathlib import Path

TRAJECTORY_NAME = "BENCH_trajectory.json"

#: Headline series per benchmark: ``(record key, label, higher_is_better)``.
HEADLINES = (
    ("speedup", "speedup (x)", True),
    ("overhead_fraction", "overhead (fraction)", False),
    ("blocks_per_second", "blocks/s", True),
    ("seconds", "seconds", False),
)

SPARK_CHARS = "▁▂▃▄▅▆▇█"


def repo_root() -> Path:
    return Path(__file__).resolve().parents[1]


def headline_of(record: dict) -> tuple[str, float, bool] | None:
    """``(label, value, higher_is_better)`` for one benchmark record."""
    for key, label, higher_is_better in HEADLINES:
        if key in record:
            return label, float(record[key]), higher_is_better
    return None


def load_series(root: Path) -> dict[str, dict]:
    """Per-benchmark headline series, chronological.

    Returns ``{benchmark: {"label", "higher_is_better", "points"}}`` where
    ``points`` is a list of ``(date, short_sha, value)``.
    """
    path = root / TRAJECTORY_NAME
    if not path.exists():
        raise SystemExit(f"no {TRAJECTORY_NAME} under {root}; run bench_trajectory.py first")
    entries = json.loads(path.read_text())
    series: dict[str, dict] = {}
    for entry in entries:
        headline = headline_of(entry["record"])
        if headline is None:
            continue
        label, value, higher_is_better = headline
        bucket = series.setdefault(
            entry["benchmark"],
            {"label": label, "higher_is_better": higher_is_better, "points": []},
        )
        bucket["points"].append(
            (datetime.fromisoformat(entry["date"]), entry["commit"][:10], value)
        )
    for bucket in series.values():
        bucket["points"].sort(key=lambda point: point[0])
    return series


def sparkline(values: list[float]) -> str:
    low, high = min(values), max(values)
    if high == low:
        return SPARK_CHARS[0] * len(values)
    scale = (len(SPARK_CHARS) - 1) / (high - low)
    return "".join(SPARK_CHARS[round((value - low) * scale)] for value in values)


def render_text(series: dict[str, dict]) -> str:
    """The dependency-free trajectory view: one sparkline per benchmark."""
    lines = []
    width = max(len(name) for name in series)
    for name in sorted(series):
        bucket = series[name]
        values = [value for _, _, value in bucket["points"]]
        first, last = values[0], values[-1]
        arrow = "→"
        if last != first:
            improved = (last > first) == bucket["higher_is_better"]
            arrow = "↑" if improved else "↓"
        lines.append(
            f"{name:<{width}}  {sparkline(values)}  "
            f"{first:.3g} → {last:.3g} {bucket['label']} {arrow} "
            f"({len(values)} commits)"
        )
    return "\n".join(lines) + "\n"


def render_png(series: dict[str, dict], output: Path) -> list[Path]:
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    output.mkdir(parents=True, exist_ok=True)
    written = []
    for name in sorted(series):
        bucket = series[name]
        dates = [date for date, _, _ in bucket["points"]]
        values = [value for _, _, value in bucket["points"]]
        figure, axes = plt.subplots(figsize=(8, 3))
        axes.plot(dates, values, marker="o")
        axes.set_title(f"{name} — {bucket['label']}")
        axes.grid(True, alpha=0.3)
        figure.autofmt_xdate()
        path = output / f"trajectory_{name}.png"
        figure.savefig(path, dpi=120, bbox_inches="tight")
        plt.close(figure)
        written.append(path)
    return written


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, default=repo_root(), help="repo root to scan")
    parser.add_argument(
        "--output", type=Path, default=None, help="PNG output dir (default: <root>/bench_plots)"
    )
    parser.add_argument(
        "--text", action="store_true", help="force the text sparkline view"
    )
    args = parser.parse_args()
    series = load_series(args.root)
    if not series:
        print("trajectory holds no chartable headline series")
        return 0

    use_text = args.text
    if not use_text:
        try:
            import matplotlib  # noqa: F401
        except ImportError:
            use_text = True
    if use_text:
        print(render_text(series), end="")
        return 0
    for path in render_png(series, args.output or args.root / "bench_plots"):
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
