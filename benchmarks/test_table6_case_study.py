"""Benchmark E-T5/T6 — regenerate the optimal-strategy case study (Tables 5 and 6)."""

import pytest

from repro.experiments import case_study


def test_table6_case_study(benchmark):
    data = benchmark(case_study.compute)
    print("\n" + case_study.render(data))
    # Table 5: the position's aggregates match the paper.
    assert data.after.total_collateral_usd == pytest.approx(136.73e6, rel=1e-3)
    assert data.after.health_factor < 1.0 < data.before.health_factor
    # Table 6: optimal > up-to-close-factor > original, with the optimal
    # strategy adding ≈ 53.96K USD over the original liquidation.
    profits = {execution.name: execution.profit_usd for execution in data.executions}
    assert profits["optimal"] > profits["up-to-close-factor"] > profits["original"]
    assert data.optimal_extra_profit_usd == pytest.approx(53_960.0, rel=0.05)
