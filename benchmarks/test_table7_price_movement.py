"""Benchmark E-T7 — regenerate Table 7 (post-liquidation price movements)."""

from repro.experiments import table7_price_movement


def test_table7_price_movement(benchmark, scenario_result, records):
    report = benchmark(table7_price_movement.compute, scenario_result, records)
    print("\n" + table7_price_movement.render(report))
    assert len(report.observations) > 0
    counts = report.counts()
    # At least three of the paper's seven movement patterns appear, and only
    # a minority of liquidations end the window below the liquidation price
    # (paper: 19.07 %).
    assert len(counts) >= 3
    assert 0.0 <= report.share_below_at_window_end <= 0.7
