"""Benchmark E-F9 — regenerate Figure 9 (monthly profit-volume ratio, DAI/ETH)."""

from repro.experiments import fig9_profit_volume


def test_fig9_profit_volume(benchmark, scenario_result, records):
    report = benchmark(fig9_profit_volume.compute, scenario_result, records)
    print("\n" + fig9_profit_volume.render(report))
    assert report.points
    assert report.median_ratios
    # Ratios are well defined (non-negative) and the ranking covers every
    # platform with DAI/ETH activity.  Section 5.1's qualitative finding —
    # dYdX, with no close factor, sits at the liquidator-friendly end — is
    # reported by the rendered ranking above.
    assert all(ratio >= 0.0 for ratio in report.median_ratios.values())
    assert set(report.ranking) == set(report.median_ratios)
