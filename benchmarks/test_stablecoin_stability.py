"""Benchmark E-S452 — regenerate Section 4.5.2 (stablecoin stability)."""

from repro.experiments import stablecoin


def test_stablecoin_stability(benchmark, scenario_result):
    report = benchmark(stablecoin.compute, scenario_result)
    print("\n" + stablecoin.render(report))
    # The paper: pairwise differences stay within 5 % for 99.97 % of blocks.
    assert report.within_threshold_share > 0.95
    assert report.max_difference < 0.2
    assert report.is_strategy_stable
