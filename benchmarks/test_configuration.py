"""Benchmark E-APXC — regenerate the Appendix C configuration analysis."""

from repro.experiments import configuration_sweep


def test_configuration_sweep(benchmark):
    data = benchmark(configuration_sweep.compute)
    print("\n" + configuration_sweep.render(data))
    # Every production market of the studied protocols satisfies Appendix C's
    # prerequisite 1 - LT(1+LS) > 0.
    assert all(data.production_configs.values())
    assert 0.0 < data.reasonable_share < 1.0
