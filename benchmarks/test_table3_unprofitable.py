"""Benchmark E-T3 — regenerate Table 3 (unprofitable liquidation opportunities)."""

from repro.experiments import table3_unprofitable


def test_table3_unprofitable(benchmark, scenario_result):
    table = benchmark(table3_unprofitable.compute, scenario_result)
    print("\n" + table3_unprofitable.render(table))
    assert set(table) == {"Aave V2", "Compound", "dYdX"}
    for cells in table.values():
        # A higher transaction fee can only add unprofitable opportunities.
        assert cells[10.0].unprofitable_count <= cells[100.0].unprofitable_count
        for cell in cells.values():
            assert 0.0 <= cell.unprofitable_share <= 1.0
