"""Benchmark — observer-bus overhead: instrumented vs bare runs.

The streaming observer API is only viable if watching a run costs almost
nothing: the engine's emission sites are gated on ``bus.active``, and the
chain-log drain plus event construction must stay in the noise next to the
simulation itself.  This benchmark times the same truncated seed-pinned
scenario twice per round:

* ``bare``      — no probes attached (the bus short-circuits: no events are
  even constructed);
* ``observed``  — a no-op probe attached, forcing the full hot path: event
  construction, the chain-log → typed-event drain, and bus dispatch.

Both runs build identical worlds (ids reset per run), so the difference is
exactly the bus.  With ``BENCH_RECORD=1`` the result is written to
``BENCH_watch.json`` at the repo root (a seed record is committed; CI
regenerates and uploads it as an artifact).  The <5 % overhead ceiling is
asserted only under ``BENCH_ENFORCE=1`` (the dedicated CI benchmark job):
shared tier-1 runners are too noisy to gate the matrix on a timing.
"""

from __future__ import annotations

import json
import os
import platform
import time
import warnings
from pathlib import Path

import numpy as np

from conftest import write_bench_record

from repro import scenarios
from repro.chain.types import reset_id_counters

#: Block strides of the timed window (≈ half the `small` scenario).
STRIDES = 60
#: Best-of-N timing with per-round order alternation: enough rounds that a
#: scheduler hiccup cannot push a ~100 ms run past the 5 % ceiling, and
#: alternating bare/observed order so clock-frequency drift during the
#: benchmark biases neither side.
ROUNDS = 6
SEED = 11
#: Maximum tolerated slowdown of an observed run over a bare run.
OVERHEAD_CEILING = 0.05

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_watch.json"


class NoOpProbe:
    """Keeps the bus active so every emission site pays full freight."""

    events_seen = 0

    def on_event(self, event) -> None:
        self.events_seen += 1

    def finalize(self) -> None:
        pass


def timed_run(observed: bool) -> tuple[float, int]:
    reset_id_counters()
    builder = scenarios.get("small").builder(seed=SEED)
    config = builder.config
    end_block = min(config.end_block, config.start_block + STRIDES * config.blocks_per_step)
    builder.config = config.with_overrides(end_block=end_block)
    engine = builder.build()
    probe = NoOpProbe()
    if observed:
        engine.attach_probe(probe)
    start = time.perf_counter()
    engine.run()
    return time.perf_counter() - start, probe.events_seen


def test_observer_bus_overhead():
    # Warm-up run to take imports, JIT-ish numpy paths and allocator noise
    # out of the first measurement.
    timed_run(False)

    bare_s = float("inf")
    observed_s = float("inf")
    events_seen = 0
    for round_index in range(ROUNDS):
        order = (False, True) if round_index % 2 == 0 else (True, False)
        for observed in order:
            elapsed, events = timed_run(observed)
            if observed:
                observed_s = min(observed_s, elapsed)
                events_seen = max(events_seen, events)
            else:
                bare_s = min(bare_s, elapsed)

    assert events_seen > STRIDES  # the probe really saw the stream
    overhead = observed_s / bare_s - 1.0

    record = {
        "benchmark": "watch_overhead",
        "scenario": "small",
        "strides": STRIDES,
        "rounds": ROUNDS,
        "bare_seconds": bare_s,
        "observed_seconds": observed_s,
        "overhead_fraction": overhead,
        "events_streamed": events_seen,
        "python": platform.python_version(),
        "numpy": np.__version__,
    }
    if os.environ.get("BENCH_RECORD"):
        write_bench_record(BENCH_PATH, record)

    message = (
        f"observer bus adds {overhead * 100:.1f}% overhead "
        f"({observed_s * 1e3:.0f} ms observed vs {bare_s * 1e3:.0f} ms bare)"
    )
    if os.environ.get("BENCH_ENFORCE"):
        assert overhead < OVERHEAD_CEILING, message
    elif overhead >= OVERHEAD_CEILING:
        warnings.warn(message)
