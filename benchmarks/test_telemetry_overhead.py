"""Benchmark — telemetry overhead: traced vs bare runs, and disabled cost.

The telemetry subsystem is only viable if its two promises hold:

* **disabled is free** — every instrumentation site goes through
  ``repro.telemetry.runtime.span``, which is one module-global read and an
  ``is None`` test before returning a shared no-op singleton.  The micro
  section times exactly that call on a disabled runtime.
* **enabled is cheap** — with a tracer installed, every engine stride pays
  ~10 span enter/exits (one ``perf_counter_ns`` each way plus a record
  append).  The macro section times the same truncated seed-pinned scenario
  bare and with telemetry installed; the difference is exactly the spans.

Both runs build identical worlds (ids reset per run) and neither attaches
probes, so the observer bus stays off in both — its cost is bounded
separately by ``test_watch_overhead``.  For reference the record also times
a fully-instrumented run (telemetry **and** the :class:`TelemetryProbe`
bridging events into metrics), which stacks the bus cost on top.

With ``BENCH_RECORD=1`` the result is written to ``BENCH_telemetry.json``
at the repo root.  The <3 % overhead ceiling is asserted only under
``BENCH_ENFORCE=1`` (the dedicated CI benchmark job): shared tier-1 runners
are too noisy to gate the matrix on a timing.
"""

from __future__ import annotations

import os
import time
import warnings
from pathlib import Path

from conftest import write_bench_record

from repro import scenarios
from repro.chain.types import reset_id_counters
from repro.telemetry import Telemetry, TelemetryProbe, enabled
from repro.telemetry.runtime import span

#: Block strides of the timed window (≈ half the `small` scenario).
STRIDES = 60
#: Best-of-N timing with per-round order alternation (see test_watch_overhead).
ROUNDS = 6
SEED = 11
#: Maximum tolerated slowdown of a telemetry-enabled run over a bare run.
OVERHEAD_CEILING = 0.03
#: Maximum tolerated cost of one disabled span() call (generous: the real
#: cost is a dict read and an identity test, tens of nanoseconds).
DISABLED_SPAN_CEILING_NS = 5_000
#: Iterations for the disabled-span micro measurement.
MICRO_CALLS = 200_000

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_telemetry.json"


def timed_run(mode: str) -> tuple[float, int]:
    """One truncated run; returns ``(seconds, spans_recorded)``.

    ``mode``: ``bare`` (telemetry off), ``traced`` (tracer installed), or
    ``full`` (tracer plus the metrics-bridging probe, bus active).
    """
    reset_id_counters()
    builder = scenarios.get("small").builder(seed=SEED)
    config = builder.config
    end_block = min(config.end_block, config.start_block + STRIDES * config.blocks_per_step)
    builder.config = config.with_overrides(end_block=end_block)
    engine = builder.build()
    if mode == "bare":
        start = time.perf_counter()
        engine.run()
        return time.perf_counter() - start, 0
    telemetry = Telemetry(name="bench")
    if mode == "full":
        engine.attach_probe(TelemetryProbe(telemetry.registry))
    with enabled(telemetry):
        start = time.perf_counter()
        engine.run()
        elapsed = time.perf_counter() - start
    return elapsed, len(telemetry.tracer.records)


def disabled_span_cost_ns() -> float:
    """Mean cost of one ``span()`` call while telemetry is uninstalled."""
    start = time.perf_counter_ns()
    for _ in range(MICRO_CALLS):
        with span("engine.step"):
            pass
    return (time.perf_counter_ns() - start) / MICRO_CALLS


def test_telemetry_overhead():
    # Warm-up run to take imports and allocator noise out of the first round.
    timed_run("bare")

    best = {"bare": float("inf"), "traced": float("inf"), "full": float("inf")}
    spans_recorded = 0
    modes = ("bare", "traced", "full")
    for round_index in range(ROUNDS):
        # Rotate the order so clock-frequency drift biases no single mode.
        order = modes[round_index % 3 :] + modes[: round_index % 3]
        for mode in order:
            elapsed, spans_seen = timed_run(mode)
            best[mode] = min(best[mode], elapsed)
            if mode == "traced":
                spans_recorded = max(spans_recorded, spans_seen)

    assert spans_recorded > STRIDES * 5  # the tracer really saw the phases
    overhead = best["traced"] / best["bare"] - 1.0
    full_overhead = best["full"] / best["bare"] - 1.0
    noop_ns = disabled_span_cost_ns()

    record = {
        "benchmark": "telemetry_overhead",
        "scenario": "small",
        "strides": STRIDES,
        "rounds": ROUNDS,
        "bare_seconds": best["bare"],
        "traced_seconds": best["traced"],
        "full_seconds": best["full"],
        "overhead_fraction": overhead,
        "full_overhead_fraction": full_overhead,
        "spans_recorded": spans_recorded,
        "disabled_span_ns": noop_ns,
    }
    if os.environ.get("BENCH_RECORD"):
        write_bench_record(BENCH_PATH, record)

    message = (
        f"telemetry adds {overhead * 100:.1f}% overhead "
        f"({best['traced'] * 1e3:.0f} ms traced vs {best['bare'] * 1e3:.0f} ms bare; "
        f"full instrumentation {full_overhead * 100:.1f}%; "
        f"disabled span() costs {noop_ns:.0f} ns)"
    )
    if os.environ.get("BENCH_ENFORCE"):
        assert overhead < OVERHEAD_CEILING, message
        assert noop_ns < DISABLED_SPAN_CEILING_NS, message
    elif overhead >= OVERHEAD_CEILING:
        warnings.warn(message)
