"""Benchmark E-F4 — regenerate Figure 4 (accumulative liquidated collateral)."""

from repro.experiments import fig4_accumulative


def test_fig4_accumulative(benchmark, records):
    data = benchmark(fig4_accumulative.compute, records)
    print("\n" + fig4_accumulative.render(data))
    # Shape checks: every platform's cumulative series grows and the total is
    # in the hundreds of millions of USD, as in the paper (807.46M USD).
    assert data.total_liquidated_usd > 0
    for series in data.series.values():
        values = series.cumulative_collateral_usd
        assert all(later >= earlier for earlier, later in zip(values, values[1:]))
