"""Benchmark — concurrent-vs-serial throughput of the service supervisor.

Not a paper artefact: this measures what the ``repro serve`` supervisor adds
over one-at-a-time execution.  Four truncated ``small`` runs are executed
twice through the full service path — worker subprocess per run, JSONL pipe
transport, parent-side event folding and alerting — once with a single
worker slot and once with four, into throwaway stores.  The speedup is
printed for comparison across machines; no floor is asserted (interpreter
start-up dominates on tiny windows and single-core runners can be slower
concurrently).

With ``BENCH_RECORD=1`` the result is written to ``BENCH_service.json`` at
the repo root, feeding the cross-commit ``BENCH_trajectory.json`` the CI
benchmark job merges and uploads.
"""

from __future__ import annotations

import asyncio
import os
import platform
import tempfile
import time
from pathlib import Path

from conftest import write_bench_record

from repro import scenarios
from repro.service import ServiceConfig, ServiceSupervisor

SEEDS = 4
BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_service.json"


def truncated_end_block(strides: int = 20) -> int:
    config = scenarios.get("small").builder(None).config
    return min(config.end_block, config.start_block + strides * config.blocks_per_step)


def serve_sweep(workers: int) -> tuple[float, int]:
    """Run the sweep through the service into a fresh store; (seconds, runs)."""
    with tempfile.TemporaryDirectory() as root:
        supervisor = ServiceSupervisor(ServiceConfig(store_root=root, workers=workers))
        supervisor.submit(
            {
                "kind": "sweep",
                "scenario": "small",
                "seeds": SEEDS,
                "overrides": {"end_block": truncated_end_block()},
                "experiments": ["table1"],
            }
        )
        started = time.perf_counter()
        summary = asyncio.run(
            supervisor.serve(exit_when_idle=True, install_signals=False)
        )
        return time.perf_counter() - started, summary.completed_runs


def test_service_throughput():
    serial_seconds, serial_runs = serve_sweep(workers=1)
    concurrent_seconds, concurrent_runs = serve_sweep(workers=4)
    assert serial_runs == concurrent_runs == SEEDS
    speedup = serial_seconds / concurrent_seconds

    if os.environ.get("BENCH_RECORD"):
        record = {
            "benchmark": "service_throughput",
            "seeds": SEEDS,
            "workers": 4,
            "serial_seconds": serial_seconds,
            "concurrent_seconds": concurrent_seconds,
            "speedup": speedup,
            "python": platform.python_version(),
        }
        write_bench_record(BENCH_PATH, record)

    print(
        f"\nservice sweep, {SEEDS} runs: 1 worker {serial_seconds:.2f}s, "
        f"4 workers {concurrent_seconds:.2f}s, "
        f"speedup {speedup:.2f}x"
    )
