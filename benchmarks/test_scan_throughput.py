"""Benchmark — opportunity-scan throughput: columnar book vs scalar sweep.

This measures the step the simulation pays on *every* block stride: deciding
which positions are liquidatable (HF < 1) before the expensive per-candidate
quote step.  A 5k-position Aave-style pool is scanned both ways:

* ``scalar`` — the legacy sweep: per-position USD-value dictionaries;
* ``vectorized`` — ``PositionBook.scan`` with dirty-row tracking plus the
  scalar confirmation of flagged rows (exactly the engine's default path).

Between iterations a realistic fraction of positions is mutated so the
vectorized timing includes steady-state dirty-row syncing, not just a cached
matrix product.

With ``BENCH_RECORD=1`` the result is written to ``BENCH_scan.json`` at the
repo root (a seed record is committed; CI regenerates and uploads it as an
artifact) — by default nothing is written, so plain test runs leave the
working tree clean.  The 3× floor is asserted only under ``BENCH_ENFORCE=1``
(set in the dedicated CI benchmark job): shared tier-1 runners are too noisy
to gate the whole matrix on a timing, as ``test_campaign_throughput``
already learned.  Observed speedups are far above the floor (~7× on a dev
container).
"""

from __future__ import annotations

import json
import os
import platform
import time
import warnings
from pathlib import Path

import numpy as np

from conftest import write_bench_record

from repro.chain.chain import Blockchain
from repro.chain.types import make_address
from repro.protocols.aave import AAVE_MARKETS, AaveProtocol
from repro.tokens.registry import TokenRegistry

N_POSITIONS = 5_000
#: Fraction of positions mutated between scans (steady-state dirty load).
CHURN_FRACTION = 0.02
ROUNDS = 5
SPEEDUP_FLOOR = 3.0

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_scan.json"


class _FrozenOracle:
    """Constant-price oracle: the scan cost is what is being measured."""

    def __init__(self, prices: dict[str, float]) -> None:
        self._prices = prices

    def price(self, symbol: str) -> float:
        return self._prices.get(symbol.upper(), 1.0)


def build_world(n_positions: int = N_POSITIONS, seed: int = 20_210_421):
    rng = np.random.default_rng(seed)
    chain = Blockchain()
    registry = TokenRegistry()
    symbols = list(AAVE_MARKETS)
    prices = {symbol: float(price) for symbol, price in zip(symbols, rng.uniform(0.5, 2_500.0, len(symbols)))}
    protocol = AaveProtocol(chain, _FrozenOracle(prices), registry)
    thresholds = protocol.liquidation_thresholds()
    for i in range(n_positions):
        position = protocol.position_of(make_address(f"bench-user-{i}"))
        for symbol in rng.choice(symbols, size=rng.integers(1, 4), replace=False):
            position.add_collateral(symbol, float(rng.uniform(1.0, 50.0)))
        capacity = position.borrowing_capacity(prices, thresholds)
        debt_symbol = symbols[int(rng.integers(0, len(symbols)))]
        # Target HF in [0.95, 1.75]: ~6 % of the book is liquidatable, like a
        # post-crash step of the study window.
        target_hf = float(rng.uniform(0.95, 1.75))
        position.add_debt(debt_symbol, capacity / target_hf / prices[debt_symbol])
    return protocol, rng


def scalar_scan(protocol) -> list:
    prices = protocol.prices()
    thresholds = protocol.liquidation_thresholds()
    return [
        position
        for position in protocol.positions_with_debt()
        if position.is_liquidatable(prices, thresholds)
    ]


def churn(protocol, rng) -> None:
    """Touch a fraction of positions, as agent activity does every stride."""
    rows = rng.integers(0, len(protocol.positions), size=int(len(protocol.positions) * CHURN_FRACTION))
    positions = list(protocol.positions.values())
    for row in rows:
        position = positions[int(row)]
        symbol = next(iter(position.collateral), None)
        if symbol is not None:
            position.add_collateral(symbol, 0.0)


def time_scans(scan, protocol, rng, rounds: int = ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        churn(protocol, rng)
        start = time.perf_counter()
        scan(protocol)
        best = min(best, time.perf_counter() - start)
    return best


def test_columnar_scan_speedup():
    protocol, rng = build_world()
    protocol.liquidatable_candidates()  # initial full sync, outside the timing

    scalar_found = scalar_scan(protocol)
    vector_found = protocol.liquidatable_candidates()
    assert vector_found == scalar_found  # identical objects, identical order
    assert len(scalar_found) > 100  # the workload actually has candidates

    scalar_s = time_scans(scalar_scan, protocol, rng)
    vector_s = time_scans(lambda p: p.liquidatable_candidates(), protocol, rng)
    speedup = scalar_s / vector_s

    record = {
        "benchmark": "scan_throughput",
        "n_positions": N_POSITIONS,
        "n_assets": len(protocol.book.assets),
        "liquidatable": len(scalar_found),
        "churn_fraction": CHURN_FRACTION,
        "rounds": ROUNDS,
        "scalar_seconds": scalar_s,
        "vectorized_seconds": vector_s,
        "speedup": speedup,
        "python": platform.python_version(),
        "numpy": np.__version__,
    }
    if os.environ.get("BENCH_RECORD"):
        write_bench_record(BENCH_PATH, record)

    message = (
        f"columnar scan only {speedup:.1f}x faster than scalar "
        f"({vector_s * 1e3:.2f} ms vs {scalar_s * 1e3:.2f} ms)"
    )
    if os.environ.get("BENCH_ENFORCE"):
        assert speedup >= SPEEDUP_FLOOR, message
    elif speedup < SPEEDUP_FLOOR:
        warnings.warn(message)
