"""Benchmark E-T2 — regenerate Table 2 (Type I/II bad debts)."""

from repro.experiments import table2_bad_debt


def test_table2_bad_debt(benchmark, scenario_result):
    table = benchmark(table2_bad_debt.compute, scenario_result)
    print("\n" + table2_bad_debt.render(table))
    assert set(table) == {"Aave V2", "Compound", "dYdX"}
    for entry in table.values():
        # A higher assumed closing fee can only add Type II bad debts.
        assert entry.type_ii_by_fee[10.0].type_ii_count <= entry.type_ii_by_fee[100.0].type_ii_count
    # dYdX's insurance fund writes off under-collateralized positions, so its
    # Type I column stays (close to) empty — as in the paper.
    assert table["dYdX"].type_i_count <= table["Compound"].type_i_count + table["Aave V2"].type_i_count
