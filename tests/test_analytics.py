"""Tests for the measurement pipeline, run against the shared small scenario."""

import pytest

from repro.analytics import (
    accumulative_collateral_series,
    auction_report,
    bad_debt_table,
    classify_path,
    extract_liquidations,
    filter_market,
    flash_loan_report,
    gas_report,
    liquidation_fee_statistics,
    monthly_liquidation_counts,
    monthly_profit_by_platform,
    monthly_table,
    month_of_timestamp,
    price_movement_report,
    profit_report,
    profit_volume_report,
    records_by_platform,
    sensitivity_figure,
    stablecoin_stability,
    total_liquidated_collateral_usd,
    unprofitable_table,
    usd,
)
from repro.analytics.price_movement import PriceMovement


class TestHelpers:
    def test_month_formatting(self):
        assert month_of_timestamp(1_584_100_000) == "2020-03"

    def test_usd_formatting(self):
        assert usd(1_250_000.0) == "1.25M USD"
        assert usd(2_500.0) == "2.50K USD"
        assert usd(3.2) == "3.20 USD"
        assert usd(2_000_000_000.0) == "2.00B USD"


class TestRecords:
    def test_records_extracted_and_sorted(self, small_records):
        assert len(small_records) > 20
        blocks = [record.block_number for record in small_records]
        assert blocks == sorted(blocks)

    def test_fixed_spread_records_use_event_payload(self, small_records):
        fixed = [record for record in small_records if record.mechanism == "fixed-spread"]
        assert fixed
        for record in fixed[:20]:
            assert record.collateral_usd == pytest.approx(record.repaid_usd + record.profit_usd, rel=1e-6)

    def test_auction_records_only_for_winning_deals(self, small_result, small_records):
        auction_records = [record for record in small_records if record.mechanism == "auction"]
        winning_deals = [
            event for event in small_result.chain.events.by_name("Deal") if event.data.get("winner")
        ]
        assert len(auction_records) == len(winning_deals)

    def test_filter_market_restricts_symbols(self, small_records):
        market = filter_market(small_records, "DAI", "ETH")
        assert all(record.debt_symbol == "DAI" and record.collateral_symbol == "ETH" for record in market)

    def test_records_by_platform_partition(self, small_records):
        grouped = records_by_platform(small_records)
        assert sum(len(records) for records in grouped.values()) == len(small_records)


class TestProfitAndMonthly:
    def test_profit_report_totals_consistent(self, small_records):
        report = profit_report(small_records)
        assert report.total_liquidations == len(small_records)
        assert report.total_profit_usd == pytest.approx(sum(r.profit_usd for r in small_records), rel=1e-9)
        assert report.total_liquidators == len({r.liquidator for r in small_records})

    def test_platform_rows_sum_to_total(self, small_records):
        report = profit_report(small_records)
        assert sum(row.liquidations for row in report.rows) == report.total_liquidations

    def test_accumulative_series_monotone(self, small_records):
        series = accumulative_collateral_series(small_records)
        for platform_series in series.values():
            values = platform_series.cumulative_collateral_usd
            assert all(later >= earlier for earlier, later in zip(values, values[1:]))
        assert sum(s.final_value_usd for s in series.values()) == pytest.approx(
            total_liquidated_collateral_usd(small_records)
        )

    def test_monthly_profit_sums_to_total(self, small_records):
        monthly = monthly_profit_by_platform(small_records)
        total = sum(value for months in monthly.values() for value in months.values())
        assert total == pytest.approx(sum(record.profit_usd for record in small_records), rel=1e-9)

    def test_monthly_counts_and_table(self, small_records):
        counts = monthly_liquidation_counts(small_records, "DAI", "ETH")
        rows = monthly_table(counts)
        dai_eth_total = len(filter_market(small_records, "DAI", "ETH"))
        assert sum(sum(v for k, v in row.items() if k != "month") for row in rows) == dai_eth_total


class TestGasAndAuctions:
    def test_gas_report_points_match_successful_liquidation_receipts(self, small_result):
        report = gas_report(small_result)
        stats = liquidation_fee_statistics(small_result)
        assert len(report.points) == int(stats["count"])
        assert 0.0 <= report.share_above_average <= 1.0

    def test_majority_of_liquidations_pay_above_average_gas(self, small_result):
        report = gas_report(small_result)
        assert report.share_above_average > 0.5  # the paper reports 73.97 %

    def test_auction_report_statistics(self, small_result):
        report = auction_report(small_result)
        assert report.settled_auctions > 0
        assert report.tend_terminations + report.dent_terminations == report.settled_auctions
        assert report.mean_bids_per_auction >= 1.0
        assert report.mean_bidders_per_auction >= 1.0
        assert report.mean_duration_hours > 0.0
        assert len(report.config_changes) >= 2  # initial configuration + post-incident change


class TestSnapshotsAndRisk:
    def test_bad_debt_table_contains_fixed_spread_platforms(self, small_result):
        table = bad_debt_table(small_result)
        assert set(table) <= {"Aave V2", "Compound", "dYdX"}
        for entry in table.values():
            assert entry.type_i_count >= 0
            assert entry.type_ii_by_fee[10.0].type_ii_count <= entry.type_ii_by_fee[100.0].type_ii_count

    def test_unprofitable_table_monotone_in_fee(self, small_result):
        table = unprofitable_table(small_result)
        for cells in table.values():
            assert cells[10.0].unprofitable_count <= cells[100.0].unprofitable_count

    def test_flash_loan_report_matches_event_count(self, small_result):
        report = flash_loan_report(small_result)
        liquidation_flash_events = [
            event
            for event in small_result.chain.events.by_name("FlashLoan")
            if str(event.data.get("purpose", "")).startswith("liquidation")
        ]
        assert report.total_flash_loans == len(liquidation_flash_events)

    def test_sensitivity_panels_cover_platforms_and_eth_dominates(self, small_result):
        figure = sensitivity_figure(small_result)
        assert set(figure) == {"Aave V2", "Compound", "dYdX", "MakerDAO"}
        compound_panel = figure["Compound"]
        assert compound_panel.most_sensitive_symbol == "ETH"
        assert compound_panel.liquidatable_at("ETH", 0.43) >= 0.0

    def test_stablecoin_stability_measurement(self, small_result):
        report = stablecoin_stability(small_result)
        assert 0.9 <= report.within_threshold_share <= 1.0
        assert report.max_difference < 0.2


class TestPriceMovementAndComparison:
    def test_classify_path_patterns(self):
        import numpy as np

        assert classify_path(np.array([1.0, 1.0, 1.0]))[0] is PriceMovement.HORIZONTAL
        assert classify_path(np.array([1.01, 1.02, 1.05]))[0] is PriceMovement.RISE
        assert classify_path(np.array([0.99, 0.95]))[0] is PriceMovement.FALL
        assert classify_path(np.array([1.02, 0.97]))[0] is PriceMovement.RISE_FALL
        assert classify_path(np.array([0.97, 1.02]))[0] is PriceMovement.FALL_RISE
        assert classify_path(np.array([1.02, 0.97, 1.02, 0.96]))[0] is PriceMovement.RISE_FLUCTUATION
        assert classify_path(np.array([0.98, 1.02, 0.97, 1.01]))[0] is PriceMovement.FALL_FLUCTUATION

    def test_classify_path_magnitudes(self):
        import numpy as np

        _, max_rise, max_fall = classify_path(np.array([1.10, 0.92]))
        assert max_rise == pytest.approx(0.10)
        assert max_fall == pytest.approx(0.08)

    def test_price_movement_report_covers_records(self, small_result, small_records):
        report = price_movement_report(small_result, small_records)
        assert len(report.observations) > 0
        assert sum(report.counts().values()) == len(report.observations)
        assert 0.0 <= report.share_below_at_window_end <= 1.0

    def test_profit_volume_report_structure(self, small_result, small_records):
        report = profit_volume_report(small_result, small_records)
        assert set(report.median_ratios) <= {p.platform for p in report.points}
        for point in report.points:
            assert point.ratio >= 0.0 or point.profit_usd < 0.0
