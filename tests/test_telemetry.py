"""Tests for the telemetry subsystem: spans, metrics, runtime, and the
proof obligation that instrumentation never changes a simulation.

The bit-identity matrix mirrors ``test_scan_equivalence``: every registered
scenario replays with telemetry fully enabled (tracer installed, spans
recording, the :class:`TelemetryProbe` bridging events into metrics) and
must produce the same events, liquidation records and archive snapshots as
a bare run at the same seed.  Telemetry reads clocks and state but never
mutates the world or consumes randomness, so anything else is a bug.
"""

from __future__ import annotations

import io
import json
import urllib.request

import pytest

from repro import scenarios
from repro.analytics.records import extract_liquidations
from repro.chain.types import reset_id_counters
from repro.serialize import to_jsonable
from repro.telemetry import (
    MetricsRegistry,
    MetricsServer,
    Telemetry,
    TelemetryProbe,
    Tracer,
    active,
    aggregate_spans,
    enabled,
    install,
    render_phase_report,
    span,
    uninstall,
)
from repro.telemetry.runtime import _NOOP_SPAN

#: Number of block strides each truncated bit-identity run covers.
STRIDES = 30

SEED = 23


def run_scenario(name: str, telemetered: bool):
    """One truncated scenario run; returns ``(result, telemetry_or_None)``."""
    reset_id_counters()
    builder = scenarios.get(name).builder(seed=SEED)
    config = builder.config
    end_block = min(config.end_block, config.start_block + STRIDES * config.blocks_per_step)
    builder.config = config.with_overrides(end_block=end_block)
    engine = builder.build()
    if not telemetered:
        return engine.run(), None
    telemetry = Telemetry(name=name)
    engine.attach_probe(TelemetryProbe(telemetry.registry))
    with enabled(telemetry):
        result = engine.run()
    return result, telemetry


def event_fingerprint(result):
    return [
        (event.name, event.emitter.value, event.block_number, event.log_index, event.data)
        for event in result.chain.events
    ]


class TestBitIdentity:
    @pytest.mark.parametrize("name", scenarios.names())
    def test_telemetry_on_and_off_replay_identically(self, name):
        bare, _ = run_scenario(name, telemetered=False)
        traced, telemetry = run_scenario(name, telemetered=True)

        assert event_fingerprint(traced) == event_fingerprint(bare)
        assert to_jsonable(extract_liquidations(traced)) == to_jsonable(
            extract_liquidations(bare)
        )
        assert traced.final_block == bare.final_block
        assert traced.chain.snapshot_blocks == bare.chain.snapshot_blocks
        for block in bare.chain.snapshot_blocks:
            assert to_jsonable(traced.chain.snapshot_at(block)) == to_jsonable(
                bare.chain.snapshot_at(block)
            )

        # The telemetered run must actually have telemetered: an empty tracer
        # would make this whole matrix vacuous.
        assert telemetry.tracer.records
        names = {record.name for record in telemetry.tracer.records}
        assert "engine.step" in names
        assert "chain.pack" in names
        snapshot = telemetry.registry.snapshot()
        assert any(series.startswith("repro_events_total") for series in snapshot)
        assert snapshot.get("repro_block_number", 0) > 0

    def test_runtime_left_clean(self):
        # The matrix above ran under enabled(); nothing may leak.
        assert active() is None


class TestSpans:
    def test_nesting_depth_parents_and_self_time(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
        assert [record.name for record in tracer.records] == ["inner", "inner", "outer"]
        inner_a, inner_b, outer = tracer.records
        assert outer.depth == 0 and inner_a.depth == 1 and inner_b.depth == 1
        assert inner_a.parent_id == outer.span_id
        assert inner_b.parent_id == outer.span_id
        assert outer.parent_id is None
        assert outer.child_ns == inner_a.duration_ns + inner_b.duration_ns
        assert outer.self_ns == outer.duration_ns - outer.child_ns
        assert tracer.depth == 0

    def test_out_of_order_exit_raises(self):
        tracer = Tracer()
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(RuntimeError, match="out of order"):
            outer.__exit__(None, None, None)

    def test_aggregate_spans(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("engine.step"):
                with tracer.span("engine.scan"):
                    pass
        aggregates = aggregate_spans(tracer.records)
        assert aggregates["engine.step"]["count"] == 3
        assert aggregates["engine.scan"]["count"] == 3
        assert aggregates["engine.step"]["total_seconds"] >= aggregates["engine.step"][
            "self_seconds"
        ]

    def test_chrome_trace_shape(self, tmp_path):
        tracer = Tracer()
        with tracer.span("engine.step", {"stride": 1}):
            with tracer.span("chain.pack"):
                pass
        trace = tracer.chrome_trace()
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        assert len(events) == 2
        assert all(event["ph"] == "X" for event in events)
        # Events sort by start timestamp: the outer span opened first.
        assert [event["name"] for event in events] == ["engine.step", "chain.pack"]
        assert events[0]["cat"] == "engine" and events[1]["cat"] == "chain"
        assert events[0]["args"] == {"stride": 1}
        path = tmp_path / "trace.json"
        tracer.write_chrome_trace(path)
        assert json.loads(path.read_text())["traceEvents"] == json.loads(
            json.dumps(events)
        )

    def test_render_phase_report(self):
        tracer = Tracer()
        with tracer.span("engine.step"):
            pass
        report = render_phase_report(tracer.records)
        assert "engine.step" in report
        assert "% self" in report
        assert render_phase_report([]) == "no spans recorded\n"


class TestRuntime:
    def test_span_is_noop_singleton_when_disabled(self):
        assert active() is None
        first = span("engine.step")
        second = span("engine.step")
        assert first is second is _NOOP_SPAN
        with first:  # usable as a context manager, records nothing
            pass

    def test_install_uninstall_and_enabled(self):
        telemetry = Telemetry(name="test")
        assert install(telemetry) is telemetry
        try:
            assert active() is telemetry
            with span("engine.step"):
                pass
            assert telemetry.tracer.records[-1].name == "engine.step"
        finally:
            uninstall()
        assert active() is None

        with enabled() as fresh:
            assert active() is fresh
            inner = Telemetry(name="inner")
            with enabled(inner):
                assert active() is inner
            # enabled() restores whatever was installed before it.
            assert active() is fresh
        assert active() is None

    def test_summary_shape(self):
        telemetry = Telemetry(name="test")
        with telemetry.tracer.span("engine.step"):
            pass
        telemetry.counter("repro_events_total", "Events").inc(2)
        summary = telemetry.summary()
        assert summary["spans"]["engine.step"]["count"] == 1
        assert summary["metrics"]["repro_events_total"] == 2.0


class TestMetrics:
    def test_counter_semantics(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_events_total", "Events", ("kind",))
        counter.labels(kind="BlockMined").inc()
        counter.labels(kind="BlockMined").inc(2)
        assert counter.labels(kind="BlockMined").value == 3.0
        with pytest.raises(ValueError, match="only increase"):
            counter.labels(kind="BlockMined").inc(-1)
        with pytest.raises(ValueError, match="requires"):
            counter.labels(wrong="x")
        # Same name must come back as the same family; kind conflicts raise.
        assert registry.counter("repro_events_total", "Events", ("kind",)) is counter
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("repro_events_total")

    def test_gauge_and_histogram(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_block_number")
        gauge.set(10)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 9.0
        histogram = registry.histogram("repro_step_seconds", buckets=(0.5, 1.0))
        histogram.observe(0.25)
        histogram.observe(0.75)
        histogram.observe(2.0)
        assert histogram.count == 3
        assert histogram.sum == 3.0

    def test_exposition_golden(self):
        registry = MetricsRegistry()
        events = registry.counter("repro_events_total", "Events seen", ("kind",))
        events.labels(kind="BlockMined").inc(3)
        registry.gauge("repro_block_number", "Current block").set(9_700_500)
        histogram = registry.histogram(
            "repro_step_seconds", "Step wall clock", buckets=(0.5, 1.0)
        )
        histogram.observe(0.25)
        histogram.observe(0.75)
        expected = (
            "# HELP repro_block_number Current block\n"
            "# TYPE repro_block_number gauge\n"
            "repro_block_number 9700500\n"
            "# HELP repro_events_total Events seen\n"
            "# TYPE repro_events_total counter\n"
            'repro_events_total{kind="BlockMined"} 3\n'
            "# HELP repro_step_seconds Step wall clock\n"
            "# TYPE repro_step_seconds histogram\n"
            'repro_step_seconds_bucket{le="0.5"} 1\n'
            'repro_step_seconds_bucket{le="1"} 2\n'
            'repro_step_seconds_bucket{le="+Inf"} 2\n'
            "repro_step_seconds_sum 1\n"
            "repro_step_seconds_count 2\n"
        )
        assert registry.exposition() == expected

    def test_label_escaping(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_events_total", "", ("kind",))
        counter.labels(kind='he said "hi"\nbye\\').inc()
        exposition = registry.exposition()
        assert 'kind="he said \\"hi\\"\\nbye\\\\"' in exposition

    def test_label_escaping_golden(self):
        """Every escapable character, pinned as the exact exposition text."""
        registry = MetricsRegistry()
        counter = registry.counter("repro_jobs_total", "Jobs", ("campaign",))
        counter.labels(campaign='back\\slash "quoted"\nnewline').inc(2)
        expected = (
            "# HELP repro_jobs_total Jobs\n"
            "# TYPE repro_jobs_total counter\n"
            'repro_jobs_total{campaign="back\\\\slash \\"quoted\\"\\nnewline"} 2\n'
        )
        assert registry.exposition() == expected

    def test_snapshot_flat_view(self):
        registry = MetricsRegistry()
        registry.counter("repro_events_total", "", ("kind",)).labels(kind="X").inc(4)
        registry.histogram("repro_step_seconds", buckets=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot['repro_events_total{kind="X"}'] == 4.0
        assert snapshot["repro_step_seconds_sum"] == 0.5
        assert snapshot["repro_step_seconds_count"] == 1.0


class TestMetricsServer:
    def test_serves_exposition_health_and_404(self):
        registry = MetricsRegistry()
        registry.counter("repro_events_total", "Events").inc(5)
        with MetricsServer(registry, port=0) as server:
            base = f"http://127.0.0.1:{server.port}"
            with urllib.request.urlopen(f"{base}/metrics") as response:
                assert response.headers["Content-Type"] == (
                    "text/plain; version=0.0.4; charset=utf-8"
                )
                assert "repro_events_total 5" in response.read().decode()
            with urllib.request.urlopen(f"{base}/health") as response:
                assert response.headers["Content-Type"] == "application/json; charset=utf-8"
                assert json.loads(response.read()) == {"status": "ok"}
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{base}/nope")
            assert excinfo.value.code == 404
            # A JSON body naming the missing path, not an HTML error page.
            assert excinfo.value.headers["Content-Type"] == "application/json; charset=utf-8"
            assert json.loads(excinfo.value.read()) == {"error": "not found", "path": "/nope"}


class _Interrupter:
    """A probe simulating Ctrl-C after a fixed number of events."""

    def __init__(self, after: int) -> None:
        self.seen = 0
        self.after = after

    def on_event(self, event) -> None:
        self.seen += 1
        if self.seen >= self.after:
            raise KeyboardInterrupt

    def finalize(self) -> None:
        pass


class TestWatch:
    def _tiny_builder(self):
        builder = scenarios.get("small").builder(seed=3)
        config = builder.config
        builder.config = config.with_overrides(
            end_block=config.start_block + 25 * config.blocks_per_step
        )
        return builder

    def test_interrupt_finalizes_probes_and_flushes_jsonl(self):
        from repro.observers.watch import watch_run

        builder = self._tiny_builder()
        builder.with_probes(lambda engine: _Interrupter(after=200))
        stream = io.StringIO()
        summary = watch_run(builder, jsonl=stream, emit=lambda line: None)
        assert summary.interrupted
        lines = stream.getvalue().splitlines()
        assert lines, "the sink must have flushed what it saw before the interrupt"
        for line in lines:
            json.loads(line)  # every line intact: nothing truncated mid-write

    def test_metrics_port_serves_and_reports(self):
        from repro.observers.watch import watch_run

        announced: list[str] = []
        summary = watch_run(
            self._tiny_builder(), emit=announced.append, metrics_port=0
        )
        assert not summary.interrupted
        assert summary.metrics_port and summary.metrics_port > 0
        assert "repro_events_total" in summary.metrics_exposition
        assert any("/metrics" in line for line in announced)


class TestCampaignTelemetry:
    TINY = {"end_block": 9_760_000}

    def _spec(self, **kwargs):
        from repro.campaigns import CampaignSpec

        defaults = dict(
            scenario="small", seeds=1, overrides=self.TINY, experiments=("table1",)
        )
        defaults.update(kwargs)
        return CampaignSpec(**defaults)

    def test_manifest_round_trips_telemetry(self, tmp_path):
        from repro.campaigns import CampaignExecutor, RunStore

        store = RunStore(tmp_path)
        result = CampaignExecutor(self._spec(), store).execute()
        assert not result.failed
        manifest = store.read_manifest("small", result.executed[0])
        digest = manifest["telemetry"]
        for key in (
            "worker",
            "task_index",
            "idle_seconds",
            "elapsed_seconds",
            "build_seconds",
            "run_seconds",
            "reports_seconds",
            "persist_seconds",
            "pickle_seconds",
            "pickle_bytes",
            "valuation_cache",
            "spans",
        ):
            assert key in digest, key
        assert digest["task_index"] == 1
        assert "engine.step" in digest["spans"]
        cache = digest["valuation_cache"]
        assert cache["builds"] + cache["hits"] > 0
        # The per-worker roll-up on the campaign result agrees with the digest.
        assert result.workers[digest["worker"]]["tasks"] == 1

    def test_telemetry_off_leaves_manifest_without_digest(self, tmp_path):
        from repro.campaigns import CampaignExecutor, RunStore

        store = RunStore(tmp_path)
        result = CampaignExecutor(self._spec(), store, telemetry=False).execute()
        assert not result.failed
        manifest = store.read_manifest("small", result.executed[0])
        assert "telemetry" not in manifest
        assert result.workers == {}

    def test_experiment_files_identical_with_telemetry_on_and_off(self, tmp_path):
        from repro.campaigns import CampaignExecutor, RunStore

        stores = {}
        for label, collect in (("on", True), ("off", False)):
            store = RunStore(tmp_path / label)
            CampaignExecutor(self._spec(), store, telemetry=collect).execute()
            stores[label] = store
        for run_id in stores["on"].run_ids("small"):
            path_on = stores["on"].experiment_path("small", run_id, "table1")
            path_off = stores["off"].experiment_path("small", run_id, "table1")
            assert path_on.read_bytes() == path_off.read_bytes()
