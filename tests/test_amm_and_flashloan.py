"""Unit tests for the AMM pools, router and flash-loan substrate."""

import pytest

from repro.amm.pool import ConstantProductPool, SwapError
from repro.amm.router import AmmRouter
from repro.chain.chain import Blockchain
from repro.chain.transaction import TransactionReverted
from repro.chain.types import make_address
from repro.flashloan.pool import FlashLoanError, FlashLoanPool, FlashLoanProvider
from repro.tokens.token import Token

LP = make_address("lp")
TRADER = make_address("trader")


@pytest.fixture()
def eth_dai_pool():
    eth = Token(symbol="ETH")
    dai = Token(symbol="DAI")
    pool = ConstantProductPool(token_a=eth, token_b=dai, fee=0.003)
    eth.mint(LP, 100.0)
    dai.mint(LP, 200_000.0)
    pool.add_liquidity(LP, 100.0, 200_000.0)
    return pool


class TestConstantProductPool:
    def test_spot_price_is_reserve_ratio(self, eth_dai_pool):
        assert eth_dai_pool.spot_price("ETH") == pytest.approx(2_000.0)
        assert eth_dai_pool.spot_price("DAI") == pytest.approx(1.0 / 2_000.0)

    def test_swap_output_below_spot_due_to_slippage_and_fee(self, eth_dai_pool):
        out = eth_dai_pool.get_amount_out("ETH", 1.0)
        assert out < 2_000.0
        assert out > 1_900.0

    def test_swap_preserves_or_grows_invariant(self, eth_dai_pool):
        eth_dai_pool.token_a.mint(TRADER, 1.0)
        before = eth_dai_pool.invariant
        eth_dai_pool.swap(TRADER, "ETH", 1.0)
        assert eth_dai_pool.invariant >= before * (1 - 1e-9)

    def test_swap_moves_price(self, eth_dai_pool):
        eth_dai_pool.token_a.mint(TRADER, 10.0)
        eth_dai_pool.swap(TRADER, "ETH", 10.0)
        assert eth_dai_pool.spot_price("ETH") < 2_000.0

    def test_price_impact_grows_with_size(self, eth_dai_pool):
        assert eth_dai_pool.price_impact("ETH", 10.0) > eth_dai_pool.price_impact("ETH", 0.1)

    def test_unknown_token_rejected(self, eth_dai_pool):
        with pytest.raises(SwapError):
            eth_dai_pool.get_amount_out("USDC", 1.0)

    def test_identical_tokens_rejected(self):
        eth = Token(symbol="ETH")
        with pytest.raises(ValueError):
            ConstantProductPool(token_a=eth, token_b=eth)

    def test_zero_amount_swap_rejected(self, eth_dai_pool):
        with pytest.raises(SwapError):
            eth_dai_pool.get_amount_out("ETH", 0.0)


class TestRouter:
    def test_lookup_and_quote(self, eth_dai_pool):
        router = AmmRouter()
        router.register(eth_dai_pool)
        assert router.has_pool("ETH", "DAI")
        assert router.quote("ETH", "DAI", 1.0) == pytest.approx(eth_dai_pool.get_amount_out("ETH", 1.0))

    def test_onchain_price(self, eth_dai_pool):
        router = AmmRouter()
        router.register(eth_dai_pool)
        assert router.onchain_price("ETH", "DAI") == pytest.approx(2_000.0)

    def test_missing_pool_raises(self):
        router = AmmRouter()
        with pytest.raises(SwapError):
            router.pool_for("ETH", "USDC")


class TestFlashLoans:
    @pytest.fixture()
    def funded_pool(self):
        dai = Token(symbol="DAI")
        pool = FlashLoanPool(platform="dYdX", token=dai, fee_rate=0.0, chain=Blockchain())
        dai.mint(LP, 1_000_000.0)
        pool.fund(LP, 1_000_000.0)
        return pool

    def test_flash_loan_executes_callback_and_repays(self, funded_pool):
        borrower = make_address("borrower")
        seen = {}

        def callback(amount, fee):
            seen["amount"] = amount
            seen["fee"] = fee

        funded_pool.flash_loan(borrower, 10_000.0, callback)
        assert seen["amount"] == pytest.approx(10_000.0)
        assert funded_pool.liquidity == pytest.approx(1_000_000.0)

    def test_unrepayable_loan_reverts_and_restores_liquidity(self, funded_pool):
        borrower = make_address("spender")

        def callback(amount, fee):
            # Burn the borrowed funds so repayment is impossible.
            funded_pool.token.burn(borrower, amount)

        with pytest.raises(TransactionReverted):
            funded_pool.flash_loan(borrower, 10_000.0, callback)
        assert funded_pool.liquidity == pytest.approx(990_000.0)  # burnt funds are gone from the borrower side
        assert funded_pool.token.balance_of(borrower) == pytest.approx(0.0)

    def test_fee_charged_on_aave_style_pool(self):
        dai = Token(symbol="DAI")
        pool = FlashLoanPool(platform="Aave V2", token=dai, fee_rate=0.0009)
        dai.mint(LP, 100_000.0)
        pool.fund(LP, 100_000.0)
        borrower = make_address("payer")
        dai.mint(borrower, 100.0)  # to cover the fee
        fee = pool.flash_loan(borrower, 10_000.0, lambda amount, fee: None)
        assert fee == pytest.approx(9.0)
        assert pool.liquidity == pytest.approx(100_009.0)

    def test_loan_larger_than_liquidity_rejected(self, funded_pool):
        with pytest.raises(FlashLoanError):
            funded_pool.flash_loan(make_address("big"), 2_000_000.0, lambda a, f: None)

    def test_flash_loan_emits_event(self, funded_pool):
        borrower = make_address("emitter")
        funded_pool.flash_loan(borrower, 5_000.0, lambda a, f: None, purpose="liquidation:Compound")
        events = funded_pool.chain.events.by_name("FlashLoan")
        assert len(events) == 1
        assert events[0].data["purpose"] == "liquidation:Compound"

    def test_provider_prefers_cheapest_pool(self):
        dai = Token(symbol="DAI")
        dydx = FlashLoanPool(platform="dYdX", token=dai, fee_rate=0.0)
        aave = FlashLoanPool(platform="Aave V2", token=dai, fee_rate=0.0009)
        dai.mint(LP, 200.0)
        dydx.fund(LP, 100.0)
        aave.fund(LP, 100.0)
        provider = FlashLoanProvider()
        provider.register(dydx)
        provider.register(aave)
        assert provider.cheapest_pool("DAI") is dydx
        assert provider.pool("Aave V2", "DAI") is aave

    def test_provider_unknown_pool_raises(self):
        provider = FlashLoanProvider()
        with pytest.raises(FlashLoanError):
            provider.pool("dYdX", "DAI")
