"""The streaming observer API: equivalence, bit-identity and mechanics.

The acceptance contract of the observer bus is threefold:

1. *passivity* — seed-pinned runs with probes attached are bit-identical to
   bare runs (same chain events, blocks, liquidations);
2. *stream/post-hoc equivalence* — for every registered scenario, the
   records a :class:`LiquidationRecorder` streams during the run equal
   ``extract_liquidations(result)`` field-for-field;
3. *liveness* — ``repro watch`` narrates a run and exits cleanly at the end
   block.

Scenario windows are truncated the same way ``repro run --end-block`` does
so the full registry matrix stays test-suite friendly.
"""

from __future__ import annotations

import json

import pytest

from repro import scenarios
from repro.analytics.records import extract_liquidations
from repro.chain.types import reset_id_counters
from repro.cli import main as cli_main
from repro.observers import (
    BlockMined,
    HealthFactorWatcher,
    JsonlSink,
    LiquidationRecorder,
    LiquidationSettled,
    MetricsAccumulator,
    ObserverBus,
    StepStarted,
)
from repro.observers.events import RunCompleted, RunStarted, SimEvent
from repro.observers.probes import run_metrics

#: Number of block strides each truncated run covers.
STRIDES = 45

SEED = 17


def truncated_builder(name: str, seed: int = SEED, strides: int = STRIDES):
    builder = scenarios.get(name).builder(seed=seed)
    config = builder.config
    end_block = min(config.end_block, config.start_block + strides * config.blocks_per_step)
    builder.config = config.with_overrides(end_block=end_block)
    return builder


def run_probed(name: str, *, strides: int = STRIDES):
    """One truncated run with the standard probe set attached."""
    reset_id_counters()
    builder = truncated_builder(name, strides=strides)
    builder.with_probes(
        lambda engine: LiquidationRecorder(),
        lambda engine: MetricsAccumulator(),
        lambda engine: HealthFactorWatcher(engine.protocols, hf_below=1.1),
    )
    engine = builder.build()
    return engine, engine.run()


def event_fingerprint(result):
    return [
        (event.name, event.emitter.value, event.block_number, event.log_index, event.data)
        for event in result.chain.events
    ]


# --------------------------------------------------------------------- #
# Stream / post-hoc equivalence
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("name", scenarios.names())
def test_streamed_records_equal_posthoc_crawl(name):
    engine, result = run_probed(name)
    recorder = engine.bus.find(LiquidationRecorder)
    streamed = recorder.records
    crawled = extract_liquidations(result)
    assert streamed == crawled  # field-for-field: frozen dataclass equality
    # result.records prefers the probe and must agree with both.
    assert result.records == crawled


def test_result_records_fall_back_to_crawl_without_probe():
    reset_id_counters()
    result = truncated_builder("small").run()
    assert result.engine.bus.active is False
    assert result.records == extract_liquidations(result)


# --------------------------------------------------------------------- #
# Bit-identity: probes must not perturb the world
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("name", ["small", "march-2020-only"])
def test_probed_runs_are_bit_identical_to_bare_runs(name):
    reset_id_counters()
    bare = truncated_builder(name).run()
    engine, probed = run_probed(name)
    assert event_fingerprint(probed) == event_fingerprint(bare)
    assert probed.final_block == bare.final_block
    blocks_bare = [(b.number, len(b.receipts)) for b in bare.chain.blocks]
    blocks_probed = [(b.number, len(b.receipts)) for b in probed.chain.blocks]
    assert blocks_probed == blocks_bare
    assert probed.chain.snapshot_blocks == bare.chain.snapshot_blocks


# --------------------------------------------------------------------- #
# Metrics: streamed aggregates vs the post-hoc shim
# --------------------------------------------------------------------- #
def test_streamed_metrics_match_posthoc_shim():
    engine, result = run_probed("march-2020-only")
    streamed = result.metrics
    posthoc = run_metrics(result)
    # price_updates is the one field the post-hoc shim cannot scope to the
    # run (it also counts scenario-construction posts).
    for key in ("steps", "blocks", "final_block", "incidents_fired", "snapshots", "auctions", "liquidations"):
        assert streamed[key] == posthoc[key], key
    assert streamed["liquidations"]["count"] == len(result.records)
    assert streamed["price_updates"] > 0
    assert posthoc["price_updates"] >= streamed["price_updates"]


# --------------------------------------------------------------------- #
# Bus and event-stream mechanics
# --------------------------------------------------------------------- #
class CollectingProbe:
    def __init__(self):
        self.events: list[SimEvent] = []
        self.finalized = 0

    def on_event(self, event):
        self.events.append(event)

    def finalize(self):
        self.finalized += 1


def test_step_event_ordering_and_finalize():
    reset_id_counters()
    engine = truncated_builder("small", strides=6).build()
    probe = engine.attach_probe(CollectingProbe())
    engine.run()
    kinds = [event.kind for event in probe.events]
    assert kinds[0] == "RunStarted"
    assert kinds[-1] == "RunCompleted"
    assert probe.finalized == 1
    # Every step opens with StepStarted and closes with BlockMined, and the
    # block/step indices line up.
    steps = [event for event in probe.events if isinstance(event, StepStarted)]
    mined = [event for event in probe.events if isinstance(event, BlockMined)]
    assert len(steps) == len(mined) == 7  # 6 strides fit; +1 partial window stride
    for started, block in zip(steps, mined):
        assert started.step_index == block.step_index
        assert started.block_number == block.block_number
    # Within each step, StepStarted precedes its BlockMined.
    assert kinds.index("StepStarted") < kinds.index("BlockMined")


def test_probe_attached_mid_run_catches_up_on_liquidations():
    # The streaming cursor lags while the bus is inactive; the first active
    # drain translates the backlog, so a late probe still sees everything.
    reset_id_counters()
    engine = truncated_builder("small").build()
    engine.run(n_steps=30)
    recorder = engine.attach_probe(LiquidationRecorder())
    result = engine.run()
    assert recorder.records == extract_liquidations(result)
    # It streamed the full history, but it was attached mid-run — so it is
    # not trusted as the backing store of result.records…
    assert not engine.probe_is_complete(recorder)
    # …which falls back to the crawl and still agrees.
    assert result.records == recorder.records


def test_partial_recorder_never_backs_result_records():
    # A probe active from step 0 advances the streaming cursor every stride;
    # a recorder attached later misses the early liquidation logs and must
    # NOT be used as the source of result.records.
    reset_id_counters()
    engine = truncated_builder("march-2020-only").build()
    engine.attach_probe(CollectingProbe())  # keeps the bus (and cursor) hot
    engine.run(n_steps=30)
    late_recorder = engine.attach_probe(LiquidationRecorder())
    result = engine.run()
    crawled = extract_liquidations(result)
    assert result.records == crawled
    # The late recorder only saw the tail of the run.
    assert len(late_recorder.records) <= len(crawled)


def test_detach_and_find():
    bus = ObserverBus()
    assert not bus.active
    probe = CollectingProbe()
    bus.attach(probe)
    assert bus.active
    assert bus.find(CollectingProbe) is probe
    assert bus.find(LiquidationRecorder) is None
    bus.detach(probe)
    assert not bus.active
    bus.detach(probe)  # idempotent


def test_jsonl_sink_streams_valid_json(tmp_path):
    path = tmp_path / "events.jsonl"
    reset_id_counters()
    builder = truncated_builder("small", strides=8)
    builder.with_probes(lambda engine: JsonlSink(path))
    builder.run()
    lines = path.read_text().splitlines()
    payloads = [json.loads(line) for line in lines]
    kinds = {payload["event"] for payload in payloads}
    assert payloads[0]["event"] == "RunStarted"
    assert payloads[-1]["event"] == "RunCompleted"
    assert {"StepStarted", "BlockMined", "PriceUpdated"} <= kinds
    assert all("block_number" in payload for payload in payloads)


def test_jsonl_sink_appends_across_runs(tmp_path):
    # finalize() closes a path-backed sink; a second run() of the same
    # engine must append to the stream, not truncate the first segment.
    path = tmp_path / "two-runs.jsonl"
    reset_id_counters()
    engine = truncated_builder("small", strides=12).build()
    engine.attach_probe(JsonlSink(path))
    engine.run(n_steps=6)
    first_segment = path.read_text().splitlines()
    engine.run()
    lines = path.read_text().splitlines()
    assert len(lines) > len(first_segment)
    assert lines[: len(first_segment)] == first_segment
    payloads = [json.loads(line) for line in lines]
    assert sum(1 for p in payloads if p["event"] == "RunCompleted") == 2


def test_jsonl_sink_kind_filter(tmp_path):
    path = tmp_path / "filtered.jsonl"
    reset_id_counters()
    builder = truncated_builder("small", strides=8)
    builder.with_probes(lambda engine: JsonlSink(path, kinds={"BlockMined"}))
    builder.run()
    payloads = [json.loads(line) for line in path.read_text().splitlines()]
    assert payloads
    assert {payload["event"] for payload in payloads} == {"BlockMined"}


def test_health_factor_watcher_alerts_and_recovers():
    engine, result = run_probed("march-2020-only")
    watcher = engine.bus.find(HealthFactorWatcher)
    assert watcher.alerts, "a crash window must produce at-risk positions"
    for alert in watcher.alerts:
        assert alert.health_factor < 1.1
        assert alert.platform in {p.name for p in engine.protocols}
    # Entering alerts are unique until the position recovers: no immediate
    # duplicates of the same (platform, owner) in consecutive scans.
    seen_pairs = [(alert.platform, alert.owner, alert.step_index) for alert in watcher.alerts]
    assert len(seen_pairs) == len(set(seen_pairs))


def test_liquidation_settled_payload_carries_record_fields():
    engine, result = run_probed("march-2020-only")
    recorder = engine.bus.find(LiquidationRecorder)
    if not recorder.records:  # pragma: no cover - scenario-dependent guard
        pytest.skip("no liquidations in the truncated window")
    event = LiquidationSettled(step_index=3, block_number=9_700_000, record=recorder.records[0])
    payload = event.payload()
    assert payload["event"] == "LiquidationSettled"
    assert payload["platform"] == recorder.records[0].platform
    assert payload["profit_usd"] == recorder.records[0].profit_usd


# --------------------------------------------------------------------- #
# End-of-run snapshot dedup (satellite fix)
# --------------------------------------------------------------------- #
def test_rerun_does_not_duplicate_final_snapshot():
    reset_id_counters()
    engine = truncated_builder("small", strides=8).build()
    engine.run()
    snapshots = list(engine.chain.snapshot_blocks)
    assert snapshots[-1] == engine.chain.current_block
    # A follow-up run() that advances nothing must not re-capture the
    # already-snapshotted pending block.
    providers_called = []
    engine.chain.register_snapshot_provider("spy", lambda: providers_called.append(1))
    engine.run(n_steps=0)
    assert providers_called == []
    assert list(engine.chain.snapshot_blocks) == snapshots


# --------------------------------------------------------------------- #
# Batched quote step (satellite)
# --------------------------------------------------------------------- #
def test_quote_opportunities_matches_per_candidate_quotes():
    reset_id_counters()
    engine = truncated_builder("march-2020-only").build()
    engine.run(n_steps=STRIDES)
    compared = 0
    for protocol in engine.fixed_spread_protocols():
        candidates = protocol.liquidatable_candidates()
        batched = protocol.quote_opportunities(candidates)
        singles = [
            (position, protocol.quote_best_opportunity(position.owner))
            for position in candidates
        ]
        singles = [(position, quote) for position, quote in singles if quote is not None]
        assert batched == singles
        compared += len(batched)
    # Also exercise the empty-batch fast path.
    for protocol in engine.fixed_spread_protocols():
        assert protocol.quote_opportunities([]) == []


# --------------------------------------------------------------------- #
# `repro watch` smoke
# --------------------------------------------------------------------- #
def test_watch_cli_smoke(tmp_path, capsys):
    jsonl = tmp_path / "stream.jsonl"
    exit_code = cli_main(
        [
            "watch",
            "march-2020-only",
            "--seed",
            "3",
            "--end-block",
            "9740000",
            "--hf-below",
            "1.1",
            "--jsonl",
            str(jsonl),
        ]
    )
    assert exit_code == 0
    captured = capsys.readouterr()
    assert "watch finished at block" in captured.err
    payloads = [json.loads(line) for line in jsonl.read_text().splitlines()]
    assert payloads[0]["event"] == "RunStarted"
    assert payloads[-1]["event"] == "RunCompleted"


def test_watch_cli_jsonl_to_stdout_stays_pure(capsys):
    # With the JSON stream on stdout the narration must move to stderr, so
    # `repro watch --jsonl - | jq .` consumes valid JSONL.
    exit_code = cli_main(
        ["watch", "small", "--seed", "3", "--end-block", "9716000", "--jsonl", "-"]
    )
    assert exit_code == 0
    captured = capsys.readouterr()
    payloads = [json.loads(line) for line in captured.out.splitlines() if line]
    assert payloads[0]["event"] == "RunStarted"
    assert payloads[-1]["event"] == "RunCompleted"


def test_watch_cli_unknown_scenario(capsys):
    assert cli_main(["watch", "no-such-scenario"]) == 2
    assert "unknown scenario" in capsys.readouterr().err


# --------------------------------------------------------------------- #
# Accrual-driven rescans
# --------------------------------------------------------------------- #
def test_interest_accrual_triggers_watcher_rescan():
    # Accrual scales debts without a price move; the watcher must rescan the
    # accruing protocols even on a stride with no PriceUpdated events.
    from repro.observers.events import BlockMined as BlockMinedEvent
    from repro.observers.events import InterestAccrued
    from repro.protocols.aave import make_aave_v2
    from repro.chain.chain import Blockchain
    from repro.chain.types import make_address
    from repro.tokens.registry import TokenRegistry

    class FixedOracle:
        def price(self, symbol):
            return {"ETH": 2_000.0, "DAI": 1.0}.get(symbol.upper(), 1.0)

    chain = Blockchain()
    registry = TokenRegistry()
    protocol = make_aave_v2(chain, FixedOracle(), registry)
    owner = make_address("accrual-victim")
    position = protocol.position_of(owner)
    position.add_collateral("ETH", 1.0)
    position.add_debt("DAI", 1_500.0)  # HF = 2000*0.8/1500 ≈ 1.067

    watcher = HealthFactorWatcher([protocol], hf_below=1.05)
    mined = BlockMinedEvent(0, chain.current_block, 0, 0, 1)
    watcher.on_event(mined)
    assert watcher.alerts == []  # nothing dirty yet → no scan, no alert

    # Interest pushes the debt past the threshold; no price moved.
    position.scale_debts({"DAI": 1.03})  # HF ≈ 1.035
    watcher.on_event(InterestAccrued(1, chain.current_block, protocols=(protocol.name,)))
    watcher.on_event(BlockMinedEvent(1, chain.current_block, 0, 0, 1))
    assert [(a.platform, a.owner) for a in watcher.alerts] == [(protocol.name, owner.value)]


def test_interest_accrued_events_appear_in_stream():
    reset_id_counters()
    engine = truncated_builder("small", strides=25).build()
    probe = engine.attach_probe(CollectingProbe())
    engine.run()
    from repro.observers.events import InterestAccrued

    accruals = [event for event in probe.events if isinstance(event, InterestAccrued)]
    # interest_accrual_every_steps=20 → steps 0 and 20 accrue in 26 strides.
    assert len(accruals) == 2
    assert all(event.protocols for event in accruals)
