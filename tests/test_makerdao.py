"""Unit tests for the MakerDAO CDP engine and its auction liquidations."""

import pytest

from repro.chain.transaction import TransactionReverted
from repro.chain.types import make_address
from repro.core.auction import AuctionConfig, AuctionPhase
from repro.protocols.base import ProtocolError
from repro.protocols.makerdao import make_makerdao


@pytest.fixture()
def makerdao(chain, oracle, registry):
    protocol = make_makerdao(chain, oracle, registry)
    protocol.reconfigure_auctions(AuctionConfig(auction_length_blocks=100, bid_duration_blocks=30))
    return protocol


@pytest.fixture()
def vault_owner(makerdao, registry):
    owner = make_address("vault-owner")
    registry.get("ETH").mint(owner, 10.0)
    makerdao.deposit(owner, "ETH", 10.0)  # 20,000 USD at LT 1/1.5
    makerdao.borrow(owner, "DAI", 12_000.0)
    return owner


@pytest.fixture()
def keeper(registry):
    keeper = make_address("keeper")
    registry.get("DAI").mint(keeper, 100_000.0)
    return keeper


class TestCdp:
    def test_borrow_mints_dai(self, makerdao, vault_owner, registry):
        assert registry.get("DAI").balance_of(vault_owner) == pytest.approx(12_000.0)
        assert makerdao.position_of(vault_owner).debt["DAI"] == pytest.approx(12_000.0)

    def test_only_dai_can_be_minted(self, makerdao, vault_owner):
        with pytest.raises(ProtocolError):
            makerdao.borrow(vault_owner, "USDC", 100.0)

    def test_dai_cannot_be_used_as_collateral(self, makerdao, registry):
        user = make_address("dai-depositor")
        registry.get("DAI").mint(user, 100.0)
        with pytest.raises(ProtocolError):
            makerdao.deposit(user, "DAI", 100.0)

    def test_minting_beyond_capacity_rejected(self, makerdao, vault_owner):
        with pytest.raises(ProtocolError):
            makerdao.borrow(vault_owner, "DAI", 5_000.0)

    def test_repay_burns_dai(self, makerdao, vault_owner, registry):
        supply_before = registry.get("DAI").total_supply
        makerdao.repay(vault_owner, "DAI", 2_000.0)
        assert registry.get("DAI").total_supply == pytest.approx(supply_before - 2_000.0)

    def test_stability_fee_accrues(self, makerdao, vault_owner, chain):
        for _ in range(100):
            chain.mine_block()
        makerdao.accrue_interest()
        assert makerdao.position_of(vault_owner).debt["DAI"] > 12_000.0

    def test_mechanism_is_auction(self, makerdao):
        assert makerdao.liquidation_mechanism() == "auction"


class TestAuctionLiquidation:
    def _make_unsafe(self, oracle):
        oracle.post_price("ETH", 1_500.0)  # capacity 10*1500/1.5 = 10,000 < 12,000 debt

    def test_bite_requires_unsafe_vault(self, makerdao, vault_owner, keeper):
        with pytest.raises(TransactionReverted):
            makerdao.bite(keeper, vault_owner)

    def test_bite_escrows_collateral_and_emits_event(self, makerdao, vault_owner, keeper, oracle, chain):
        self._make_unsafe(oracle)
        auction = makerdao.bite(keeper, vault_owner)
        assert auction.collateral_lot == pytest.approx(10.0)
        assert "ETH" not in makerdao.position_of(vault_owner).collateral
        assert len(chain.events.by_name("Bite")) == 1

    def test_double_bite_reverts(self, makerdao, vault_owner, keeper, oracle):
        self._make_unsafe(oracle)
        makerdao.bite(keeper, vault_owner)
        with pytest.raises(TransactionReverted):
            makerdao.bite(keeper, vault_owner)

    def test_tend_dent_deal_flow(self, makerdao, vault_owner, keeper, oracle, registry, chain):
        self._make_unsafe(oracle)
        auction = makerdao.bite(keeper, vault_owner)
        makerdao.tend(keeper, auction.auction_id, auction.debt_target)
        assert auction.phase is AuctionPhase.DENT
        makerdao.dent(keeper, auction.auction_id, 9.0)
        for _ in range(40):
            chain.mine_block()
        settlement = makerdao.deal(keeper, auction.auction_id)
        assert settlement.winner == keeper
        assert settlement.debt_repaid == pytest.approx(auction.debt_target)
        assert settlement.collateral_won == pytest.approx(9.0)
        # The leftover collateral goes back to the vault.
        assert makerdao.position_of(vault_owner).collateral["ETH"] == pytest.approx(1.0)
        assert registry.get("ETH").balance_of(keeper) == pytest.approx(9.0)
        assert not makerdao.position_of(vault_owner).has_debt

    def test_deal_before_expiry_reverts(self, makerdao, vault_owner, keeper, oracle):
        self._make_unsafe(oracle)
        auction = makerdao.bite(keeper, vault_owner)
        makerdao.tend(keeper, auction.auction_id, 5_000.0)
        with pytest.raises(TransactionReverted):
            makerdao.deal(keeper, auction.auction_id)

    def test_unbid_auction_returns_collateral(self, makerdao, vault_owner, keeper, oracle, chain):
        self._make_unsafe(oracle)
        auction = makerdao.bite(keeper, vault_owner)
        for _ in range(150):
            chain.mine_block()
        settlement = makerdao.deal(keeper, auction.auction_id)
        assert settlement.winner is None
        assert makerdao.position_of(vault_owner).collateral["ETH"] == pytest.approx(10.0)

    def test_tend_phase_only_winner_repays_partial_debt(self, makerdao, vault_owner, keeper, oracle, chain, registry):
        self._make_unsafe(oracle)
        auction = makerdao.bite(keeper, vault_owner)
        makerdao.tend(keeper, auction.auction_id, 6_000.0)
        for _ in range(40):
            chain.mine_block()
        settlement = makerdao.deal(keeper, auction.auction_id)
        assert settlement.collateral_won == pytest.approx(10.0)
        assert settlement.debt_repaid == pytest.approx(6_000.0)
        # The unpaid remainder of the debt stays with the vault owner.
        assert makerdao.position_of(vault_owner).debt["DAI"] == pytest.approx(6_000.0)

    def test_reconfigure_emits_event(self, makerdao, chain):
        before = len(chain.events.by_name("AuctionParamsChanged"))
        makerdao.reconfigure_auctions(AuctionConfig(auction_length_blocks=500, bid_duration_blocks=200))
        assert len(chain.events.by_name("AuctionParamsChanged")) == before + 1
        assert makerdao.auction_config.auction_length_blocks == 500
